"""Ablation benchmark: query-efficient search for the max-1-norm pixel.

Section III remarks that the smooth MNIST 1-norm map should allow the
attacker to find the most sensitive pixel with fewer than N power queries,
while the rapidly varying CIFAR map makes that hard.  This benchmark compares
random probing, greedy hill-climbing and coarse-to-fine refinement under a
fixed query budget on both datasets.
"""

import numpy as np

from repro.crossbar.accelerator import CrossbarAccelerator
from repro.datasets import load_cifar_like, load_mnist_like
from repro.experiments.reporting import format_table
from repro.nn.gradients import weight_column_norms
from repro.nn.trainer import train_single_layer
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber
from repro.sidechannel.search import (
    coarse_to_fine_search,
    greedy_neighbourhood_search,
    random_subset_search,
)

BUDGET = 120
N_TRIALS = 5


def _relative_value_found(search_result, true_norms):
    """Value at the found pixel relative to the true maximum (1.0 = perfect)."""
    return float(true_norms[search_result.best_index] / true_norms.max())


def run_probing_ablation(seed=0):
    rows = []
    datasets = {
        "mnist-like": load_mnist_like(n_train=1500, n_test=200, random_state=seed),
        "cifar-like": load_cifar_like(n_train=1000, n_test=200, random_state=seed),
    }
    for name, dataset in datasets.items():
        network, _ = train_single_layer(dataset, output="softmax", epochs=20, random_state=seed)
        accelerator = CrossbarAccelerator(network, random_state=seed)
        true_norms = weight_column_norms(network.weights)
        if len(dataset.image_shape) == 3:
            height, width = dataset.image_shape[0], dataset.image_shape[1] * dataset.image_shape[2]
        else:
            height, width = dataset.image_shape

        scores = {"random": [], "greedy": [], "coarse-to-fine": []}
        for trial in range(N_TRIALS):
            prober = ColumnNormProber(
                PowerMeasurement(accelerator, random_state=trial), dataset.n_features
            )
            scores["random"].append(
                _relative_value_found(
                    random_subset_search(prober, budget=BUDGET, random_state=trial), true_norms
                )
            )
            scores["greedy"].append(
                _relative_value_found(
                    greedy_neighbourhood_search(
                        prober, (height, width), budget=BUDGET, random_state=trial
                    ),
                    true_norms,
                )
            )
            scores["coarse-to-fine"].append(
                _relative_value_found(
                    coarse_to_fine_search(prober, (height, width), coarse_stride=6),
                    true_norms,
                )
            )
        rows.append(
            [
                name,
                float(np.mean(scores["random"])),
                float(np.mean(scores["greedy"])),
                float(np.mean(scores["coarse-to-fine"])),
            ]
        )
    return rows


def test_probing_search_ablation(single_round, benchmark):
    """Search quality (found 1-norm / max 1-norm) under a fixed probe budget."""
    rows = single_round(run_probing_ablation)
    print()
    print(
        format_table(
            ["dataset", "random", "greedy", "coarse-to-fine"],
            rows,
            title=f"Max-1-norm search with a budget of {BUDGET} power queries",
        )
    )
    for row in rows:
        benchmark.extra_info[f"{row[0]}/greedy"] = round(row[2], 3)
        benchmark.extra_info[f"{row[0]}/random"] = round(row[1], 3)

    # Structured search must beat random probing on the smooth MNIST map.
    mnist_random, mnist_greedy, mnist_ctf = rows[0][1:]
    assert max(mnist_greedy, mnist_ctf) >= mnist_random - 0.02
