"""Ablation benchmark: query-efficient search for the max-1-norm pixel.

Section III remarks that the smooth MNIST 1-norm map should allow the
attacker to find the most sensitive pixel with fewer than N power queries,
while the rapidly varying CIFAR map makes that hard.  This benchmark compares
random probing, greedy hill-climbing and coarse-to-fine refinement under a
fixed query budget on both datasets.

The probing pipeline runs on the batched prober (every probe round — basis
vectors plus baseline — is one batched power query); the benchmark also
times the identical search workload through the per-column reference prober
(``batched=False``, one scalar query per probe vector) and records both wall
times into ``BENCH_engine.json``.  The reference mode is an ablation of
batch submission, not the seed implementation (which already batched probe
vectors).
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.crossbar.accelerator import CrossbarAccelerator
from repro.datasets import load_cifar_like, load_mnist_like
from repro.experiments.reporting import format_table
from repro.nn.gradients import weight_column_norms
from repro.nn.trainer import train_single_layer
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber
from repro.sidechannel.search import (
    coarse_to_fine_search,
    greedy_neighbourhood_search,
    random_subset_search,
)

BUDGET = 120
N_TRIALS = 5


def _relative_value_found(search_result, true_norms):
    """Value at the found pixel relative to the true maximum (1.0 = perfect)."""
    return float(true_norms[search_result.best_index] / true_norms.max())


def run_probing_ablation(seed=0, *, batched=True):
    rows = []
    datasets = {
        "mnist-like": load_mnist_like(n_train=1500, n_test=200, random_state=seed),
        "cifar-like": load_cifar_like(n_train=1000, n_test=200, random_state=seed),
    }
    for name, dataset in datasets.items():
        network, _ = train_single_layer(dataset, output="softmax", epochs=20, random_state=seed)
        accelerator = CrossbarAccelerator(network, random_state=seed)
        true_norms = weight_column_norms(network.weights)
        if len(dataset.image_shape) == 3:
            height, width = dataset.image_shape[0], dataset.image_shape[1] * dataset.image_shape[2]
        else:
            height, width = dataset.image_shape

        scores = {"random": [], "greedy": [], "coarse-to-fine": []}
        for trial in range(N_TRIALS):
            prober = ColumnNormProber(
                PowerMeasurement(accelerator, random_state=trial),
                dataset.n_features,
                batched=batched,
            )
            scores["random"].append(
                _relative_value_found(
                    random_subset_search(prober, budget=BUDGET, random_state=trial), true_norms
                )
            )
            scores["greedy"].append(
                _relative_value_found(
                    greedy_neighbourhood_search(
                        prober, (height, width), budget=BUDGET, random_state=trial
                    ),
                    true_norms,
                )
            )
            scores["coarse-to-fine"].append(
                _relative_value_found(
                    coarse_to_fine_search(prober, (height, width), coarse_stride=6),
                    true_norms,
                )
            )
        rows.append(
            [
                name,
                float(np.mean(scores["random"])),
                float(np.mean(scores["greedy"])),
                float(np.mean(scores["coarse-to-fine"])),
            ]
        )
    return rows


def _probe_workload(accelerator, n_features, image_shape, *, batched):
    """The ablation's probing/search workload on one trained accelerator."""
    for trial in range(N_TRIALS):
        prober = ColumnNormProber(
            PowerMeasurement(accelerator, random_state=trial),
            n_features,
            batched=batched,
        )
        random_subset_search(prober, budget=BUDGET, random_state=trial)
        greedy_neighbourhood_search(prober, image_shape, budget=BUDGET, random_state=trial)
        coarse_to_fine_search(prober, image_shape, coarse_stride=6)


def _time_probe_workload(accelerator, n_features, image_shape, *, repeats=3):
    """Probing wall times: per-column reference mode vs batched prober."""
    timings = {}
    for label, batched in (("per_column_s", False), ("batched_s", True)):
        _probe_workload(accelerator, n_features, image_shape, batched=batched)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _probe_workload(accelerator, n_features, image_shape, batched=batched)
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    timings["speedup"] = timings["per_column_s"] / timings["batched_s"]
    return timings


def test_probing_search_ablation(single_round, benchmark):
    """Search quality (found 1-norm / max 1-norm) under a fixed probe budget."""
    rows = single_round(run_probing_ablation)

    # Timing of the probing workload itself (training excluded): the same
    # searches against the same trained victim, per-column reference mode vs
    # the batched prober.
    dataset = load_mnist_like(n_train=1500, n_test=200, random_state=0)
    network, _ = train_single_layer(dataset, output="softmax", epochs=20, random_state=0)
    accelerator = CrossbarAccelerator(network, random_state=0)
    timings = _time_probe_workload(accelerator, dataset.n_features, (28, 28))
    bench_engine.record_timings("bench_probing", timings)
    benchmark.extra_info["batched_vs_per_column_speedup"] = round(
        timings["speedup"], 2
    )
    print()
    print(
        format_table(
            ["dataset", "random", "greedy", "coarse-to-fine"],
            rows,
            title=f"Max-1-norm search with a budget of {BUDGET} power queries",
        )
    )
    for row in rows:
        benchmark.extra_info[f"{row[0]}/greedy"] = round(row[2], 3)
        benchmark.extra_info[f"{row[0]}/random"] = round(row[1], 3)

    # Structured search must beat random probing on the smooth MNIST map.
    mnist_random, mnist_greedy, mnist_ctf = rows[0][1:]
    assert max(mnist_greedy, mnist_ctf) >= mnist_random - 0.02
