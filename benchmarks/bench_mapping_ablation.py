"""Ablation benchmark: min-power vs balanced conductance mapping.

The power side channel exists *because* of the minimum-power mapping the paper
assumes (Section II-B).  This benchmark quantifies the leak under both
mappings: how well the probed column sums correlate with the true weight
column 1-norms, and how much a power-guided single-pixel attack gains over the
random baseline in each case.
"""

import numpy as np

from repro.attacks.evaluation import accuracy_under_attack
from repro.attacks.single_pixel import SinglePixelAttack, SinglePixelStrategy
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.crossbar.mapping import ConductanceMapping
from repro.datasets import load_mnist_like
from repro.experiments.reporting import format_table
from repro.nn.gradients import weight_column_norms
from repro.nn.trainer import train_single_layer
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber

STRENGTH = 8.0


def run_mapping_ablation(seed=0):
    dataset = load_mnist_like(n_train=2000, n_test=400, random_state=seed)
    network, _ = train_single_layer(dataset, output="softmax", epochs=25, random_state=seed)
    true_norms = weight_column_norms(network.weights)

    rows = []
    for scheme in ("min_power", "balanced"):
        accelerator = CrossbarAccelerator(
            network, mapping=ConductanceMapping(scheme=scheme), random_state=seed
        )
        prober = ColumnNormProber(PowerMeasurement(accelerator), dataset.n_features)
        leaked = prober.probe_all().column_sums
        if leaked.std() == 0:
            leak_correlation = 0.0
        else:
            leak_correlation = float(np.corrcoef(leaked, true_norms)[0, 1])

        power_attack = SinglePixelAttack(
            SinglePixelStrategy.POWER_ADD, column_norms=leaked, random_state=seed
        )
        random_attack = SinglePixelAttack(SinglePixelStrategy.RANDOM_PIXEL, random_state=seed)
        power_acc = accuracy_under_attack(
            network, power_attack, dataset.test_inputs, dataset.test_targets, STRENGTH
        )
        random_acc = accuracy_under_attack(
            network, random_attack, dataset.test_inputs, dataset.test_targets, STRENGTH
        )
        rows.append([scheme, leak_correlation, random_acc, power_acc, random_acc - power_acc])
    return rows


def test_mapping_ablation(single_round, benchmark):
    """Leak strength and attack advantage under min-power vs balanced mappings."""
    rows = single_round(run_mapping_ablation)
    print()
    print(
        format_table(
            ["mapping", "leak corr", "acc (random px)", "acc (power px)", "advantage"],
            rows,
            title=f"Conductance-mapping ablation (single-pixel attack, strength {STRENGTH})",
        )
    )
    for row in rows:
        benchmark.extra_info[f"{row[0]}/leak_correlation"] = round(row[1], 3)
        benchmark.extra_info[f"{row[0]}/attack_advantage"] = round(row[4], 3)

    min_power, balanced = rows[0], rows[1]
    # The min-power mapping leaks the 1-norms almost perfectly...
    assert min_power[1] > 0.99
    # ...while the balanced mapping hides them.
    assert abs(balanced[1]) < 0.3
    # The attack advantage over random should therefore be larger under min-power.
    assert min_power[4] > balanced[4] - 0.02
