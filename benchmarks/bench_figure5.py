"""Benchmarks regenerating Figure 5 (surrogate black-box attacks with power).

The MNIST rows (ROW 1 and ROW 2) are run at the full ``bench`` scale; the
CIFAR rows (ROW 3 and ROW 4) use a reduced query sweep because each surrogate
has 3072 inputs and the paper's finding there is a null result (little or no
benefit from power information).

Ported to the batched engine: every oracle interaction is one batched
``Oracle.query`` per query set (single fused traversal for power-exposed
hardware targets), and the independent seeds of each row execute on a
:class:`~repro.experiments.runner.ParallelRunner` process pool.  Wall times
are recorded into ``BENCH_engine.json`` for before/after comparison.
"""

import sys
import time
from pathlib import Path

from repro.experiments.config import resolve_scale
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.runner import ParallelRunner

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

RUNNER = ParallelRunner(mode="process")


def _record(benchmark, result):
    for (dataset, mode), row in result.rows.items():
        for lam in row.power_loss_weights:
            curve = row.mean_adversarial_curve(lam)
            benchmark.extra_info[f"{dataset}/{mode}/lambda={lam:g}/final_adv_acc"] = round(
                float(curve[-1]), 3
            )


def test_figure5_mnist_rows(single_round, benchmark):
    """Figure 5 rows 1-2: MNIST with label-only and raw-output oracles."""
    start = time.perf_counter()
    result = single_round(
        run_figure5,
        "bench",
        rows=(("mnist-like", "label"), ("mnist-like", "raw")),
        runner=RUNNER,
    )
    bench_engine.record_timings(
        "bench_figure5_mnist",
        {"elapsed_s": time.perf_counter() - start, "runner_mode": RUNNER.mode},
    )
    print()
    print(format_figure5(result))
    _record(benchmark, result)

    # Paper-shape checks: more queries -> better surrogate; the attack hurts
    # the oracle; with the label-only oracle at the largest bench query budget
    # the power term must not make the attack worse.
    for row in result.rows.values():
        baseline_surrogate = row.mean_surrogate_curve(0.0)
        assert baseline_surrogate[-1] > baseline_surrogate[0]
        assert min(row.mean_adversarial_curve(0.0)) < row.oracle_clean_accuracy
    label_row = result.row("mnist-like", "label")
    best_lambda = max(label_row.power_loss_weights)
    assert (
        label_row.mean_adversarial_curve(best_lambda)[-1]
        <= label_row.mean_adversarial_curve(0.0)[-1] + 0.05
    )


def test_figure5_cifar_rows(single_round, benchmark):
    """Figure 5 rows 3-4: CIFAR with label-only and raw-output oracles (reduced sweep)."""
    scale = resolve_scale("bench").with_overrides(
        n_train=1500,
        n_test=300,
        n_runs=2,
        query_counts=(50, 200, 1000),
        power_loss_weights=(0.0, 0.01),
        surrogate_epochs=200,
    )
    start = time.perf_counter()
    result = single_round(
        run_figure5,
        scale,
        rows=(("cifar-like", "label"), ("cifar-like", "raw")),
        runner=RUNNER,
    )
    bench_engine.record_timings(
        "bench_figure5_cifar",
        {"elapsed_s": time.perf_counter() - start, "runner_mode": RUNNER.mode},
    )
    print()
    print(format_figure5(result))
    _record(benchmark, result)

    for row in result.rows.values():
        # The attack still transfers to the CIFAR oracle...
        assert min(row.mean_adversarial_curve(0.0)) < row.oracle_clean_accuracy
