"""Benchmark regenerating Figure 4 (power-guided single-pixel attacks)."""

from repro.experiments.figure4 import format_figure4, run_figure4


def test_figure4(single_round, benchmark):
    """Figure 4: test accuracy vs attack strength for the five strategies."""
    result = single_round(run_figure4, "bench")
    print()
    print(format_figure4(result))

    for (dataset, activation), curves in result.curves.items():
        for label, curve in curves.items():
            benchmark.extra_info[f"{dataset}/{activation}/{label}/final"] = round(
                float(curve[-1]), 3
            )

    # Paper-shape checks on the MNIST panels at the strongest attack:
    # the white-box worst case is the lowest accuracy, power-guided attacks
    # beat the random-pixel baseline.
    for activation in ("linear", "softmax"):
        curves = result.curves[("mnist-like", activation)]
        final = {label: curve[-1] for label, curve in curves.items()}
        assert final["Worst"] <= min(final["+"], final["-"], final["RD"]) + 1e-9
        assert final["+"] < final["RP"]
        assert final["RD"] < final["RP"]
