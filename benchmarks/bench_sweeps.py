"""Benchmark the scenario-sweep subsystem: curve sanity, serial vs pool.

Runs the ``sweep-adc-bits`` experiment at ``smoke`` scale once serially and
once on a ``ParallelRunner(mode="process")`` pool, asserts the results are
bit-identical, checks the leakage curve is monotonicity-sane (leakage must
not degrade as the attacker's acquisition ADC gains bits, and the most
faithful setting must leak strictly more than the most degraded one), and
records curve + wall times into ``BENCH_engine.json`` under ``bench_sweeps``
so ``scripts/check_bench_regression.py`` can gate on them across PRs.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.experiments import ParallelRunner, get_experiment

SWEEP_NAME = "sweep-adc-bits"

#: Per-step slack for the monotonicity check: quantisation is deterministic
#: but the two smoke seeds leave a little spread at the coarse end.
MONOTONE_TOLERANCE = 0.05

#: The most faithful setting must beat the most degraded one by this much.
MIN_CURVE_RISE = 0.01


def _run(runner=None):
    return get_experiment(SWEEP_NAME).run("smoke", runner=runner, base_seed=0)


def _results_identical(a, b) -> bool:
    """Strict bit-identity over every per-job metric payload."""
    if len(a.sweep) != len(b.sweep):
        return False
    for run_a, run_b in zip(a.sweep, b.sweep):
        if run_a.name != run_b.name or run_a.metrics != run_b.metrics:
            return False
    return True


def monotone_ok(leakage_curve, *, tolerance=MONOTONE_TOLERANCE, min_rise=MIN_CURVE_RISE) -> bool:
    """True when the curve rises with fidelity (modulo per-step tolerance)."""
    curve = np.asarray(leakage_curve, dtype=float)
    if curve.size < 2 or not np.all(np.isfinite(curve)):
        return False
    steps_ok = bool(np.all(np.diff(curve) >= -tolerance))
    return steps_ok and bool(curve[-1] - curve[0] >= min_rise)


def test_sweep_curve_and_parallel_identity(single_round, benchmark):
    """Smoke-scale knob sweep: sane leakage curve, serial vs process identical."""
    start = time.perf_counter()
    serial = single_round(_run)
    serial_s = time.perf_counter() - start

    runner = ParallelRunner(mode="process")
    start = time.perf_counter()
    parallel = _run(runner)
    parallel_s = time.perf_counter() - start

    identical = _results_identical(serial, parallel)
    entry = serial.summary["curves"][0]
    curve_ok = monotone_ok(entry["leakage_mean"])
    bench_engine.record_timings(
        "bench_sweeps",
        {
            "sweep": SWEEP_NAME,
            "knob": serial.summary["knob"],
            "values": entry["values"],
            "leakage_curve": entry["leakage_mean"],
            "advantage_curve": entry["advantage_mean"],
            "monotone_ok": curve_ok,
            "n_jobs": len(serial.sweep),
            "serial_s": serial_s,
            "process_s": parallel_s,
            "results_identical": identical,
        },
    )
    benchmark.extra_info["n_jobs"] = len(serial.sweep)
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["process_s"] = round(parallel_s, 2)
    benchmark.extra_info["leakage_curve"] = [
        round(v, 3) for v in entry["leakage_mean"]
    ]

    assert identical, "process-pool results diverged from the serial path"
    assert curve_ok, (
        f"leakage curve is not monotonicity-sane: {entry['leakage_mean']} "
        f"over {entry['values']}"
    )
