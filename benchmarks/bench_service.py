"""Service benchmark: coalescing amortisation vs one-request-per-call.

Measures what the async coalescing query service buys on the attack hot
path: ``N_REQUESTS`` single-row power-exposed oracle queries are issued

* **directly** — one ``Oracle.query`` call per request (the
  one-request-per-call baseline every pre-service attack pays), and
* **through the service** — at several offered concurrency levels, with
  ``c`` client coroutines each submitting its share of requests
  back-to-back, so every tick coalesces ~``c`` requests into one fused
  traversal.

The acceptance criterion is a >= 2x throughput gain at offered concurrency
>= 8.  Results are merged into ``BENCH_engine.json`` under
``bench_service`` and gated by ``scripts/check_bench_regression.py``.
A correctness guard asserts serviced responses are bit-identical to direct
seeded queries before anything is timed.
"""

import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.attacks.oracle import Oracle
from repro.service import QueryService, ServiceConfig

N_REQUESTS = 512
CONCURRENCY_LEVELS = (1, 8, 32, 64)
SERVICE_CONFIG = ServiceConfig(max_batch=64, max_wait_ms=2.0)

#: Acceptance criterion: throughput gain at offered concurrency >= 8.
MIN_SPEEDUP = 2.0


def build_oracle(*, n_inputs=256, n_outputs=10, seed=0, backend=None, dtype="float64"):
    accelerator = bench_engine.build_accelerator(
        n_inputs, n_outputs, seed=seed, backend=backend, dtype=dtype
    )
    return Oracle(accelerator, expose_power=True, random_state=seed)


def make_requests(n_inputs, *, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(N_REQUESTS, 1, n_inputs))


def run_direct(oracle, requests):
    """One-request-per-call baseline: a blocking query per row."""
    start = time.perf_counter()
    responses = [oracle.query(request) for request in requests]
    elapsed = time.perf_counter() - start
    return responses, elapsed


async def _clients(service, requests, concurrency):
    """``concurrency`` clients, each submitting its share back-to-back."""

    async def client(chunk):
        return [await service.submit(request) for request in chunk]

    shares = [requests[i::concurrency] for i in range(concurrency)]
    results = await asyncio.gather(*(client(share) for share in shares))
    # restitch interleaved shares back into request order
    responses = [None] * len(requests)
    for offset, share_responses in enumerate(results):
        for k, response in enumerate(share_responses):
            responses[offset + k * concurrency] = response
    return responses


def run_service(oracle, requests, concurrency):
    async def run():
        async with QueryService(oracle, SERVICE_CONFIG) as service:
            start = time.perf_counter()
            responses = await _clients(service, list(requests), concurrency)
            elapsed = time.perf_counter() - start
            return responses, elapsed, service.stats.to_dict()

    return asyncio.run(run())


def check_equivalence(*, n_inputs=32, n_rows=24, seed=0, backend=None, dtype="float64"):
    """Serviced responses must be bit-identical to direct seeded queries.

    The bit-identity contract holds *within* any single backend (all seeded
    noise is generated host-side from the request seeds), so the check runs
    under whatever backend the benchmark is driving.
    """
    requests = make_requests(n_inputs, seed=seed)[:n_rows]
    serviced_oracle = build_oracle(
        n_inputs=n_inputs, seed=seed, backend=backend, dtype=dtype
    )

    async def run():
        async with QueryService(serviced_oracle, SERVICE_CONFIG) as service:
            responses = await asyncio.gather(
                *(service.submit(request) for request in requests)
            )
            seeds = [service.seeds_for(i, 1) for i in range(len(requests))]
            return responses, seeds

    responses, seeds = asyncio.run(run())
    direct_oracle = build_oracle(
        n_inputs=n_inputs, seed=seed, backend=backend, dtype=dtype
    )
    for request, response, request_seeds in zip(requests, responses, seeds):
        reference = direct_oracle.query(request, seeds=request_seeds)
        np.testing.assert_array_equal(response.outputs, reference.outputs)
        np.testing.assert_array_equal(response.power, reference.power)
    return True


def run_service_benchmark(
    *, n_inputs=256, n_outputs=10, seed=0, backend=None, dtype="float64"
):
    """Full benchmark; returns the structure stored in BENCH_engine.json."""
    responses_identical = check_equivalence(seed=seed, backend=backend, dtype=dtype)

    requests = make_requests(n_inputs, seed=seed)
    direct_oracle = build_oracle(
        n_inputs=n_inputs, n_outputs=n_outputs, seed=seed, backend=backend, dtype=dtype
    )
    _, direct_s = run_direct(direct_oracle, requests)
    direct_qps = N_REQUESTS / direct_s

    rows = []
    for concurrency in CONCURRENCY_LEVELS:
        oracle = build_oracle(
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            seed=seed,
            backend=backend,
            dtype=dtype,
        )
        responses, elapsed, stats = run_service(oracle, requests, concurrency)
        assert all(response is not None for response in responses)
        rows.append(
            {
                "concurrency": int(concurrency),
                "service_s": elapsed,
                "service_qps": N_REQUESTS / elapsed,
                "speedup_vs_direct": direct_s / elapsed,
                "coalescing_factor": stats["coalescing_factor"],
                "mean_tick_rows": stats["mean_tick_rows"],
                "n_ticks": stats["n_ticks"],
            }
        )
    return {
        "config": {
            "n_inputs": int(n_inputs),
            "n_outputs": int(n_outputs),
            "n_requests": int(N_REQUESTS),
            "max_batch": SERVICE_CONFIG.max_batch,
            "max_wait_ms": SERVICE_CONFIG.max_wait_ms,
            "seed": int(seed),
            "backend": str(backend) if backend else "numpy",
            "dtype": str(dtype),
        },
        "responses_identical": bool(responses_identical),
        "direct_s": direct_s,
        "direct_qps": direct_qps,
        "concurrency": rows,
    }


def test_service_throughput(single_round, benchmark):
    """Coalescing amortisation vs one-request-per-call (records JSON)."""
    results = single_round(run_service_benchmark)
    bench_engine.record_timings("bench_service", results)

    for row in results["concurrency"]:
        benchmark.extra_info[f"c={row['concurrency']}/speedup"] = round(
            row["speedup_vs_direct"], 2
        )
        benchmark.extra_info[f"c={row['concurrency']}/coalescing"] = round(
            row["coalescing_factor"], 1
        )

    assert results["responses_identical"]
    # Acceptance criterion: >= 2x throughput at offered concurrency >= 8.
    eligible = [
        row["speedup_vs_direct"]
        for row in results["concurrency"]
        if row["concurrency"] >= 8
    ]
    assert max(eligible) >= MIN_SPEEDUP, (
        f"coalescing speedup {max(eligible):.2f} at concurrency >= 8 is below "
        f"the required {MIN_SPEEDUP}x"
    )


def main(argv=None):  # pragma: no cover - console entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "torch", "cupy", "auto"),
        help="compute backend driving the oracle hardware (default: numpy)",
    )
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=("float32", "float64"),
        help="kernel dtype (default: float64)",
    )
    args = parser.parse_args(argv)
    results = run_service_benchmark(backend=args.backend, dtype=args.dtype)
    bench_engine.record_timings("bench_service", results)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nresults merged into {bench_engine.RESULTS_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
