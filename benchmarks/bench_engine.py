"""Engine benchmark: fused single-pass vs legacy two-pass query throughput.

Measures the structural speedup of the fused simulation engine on the attack
hot path:

* **Oracle queries with power exposed** — the fused engine traverses every
  tile once per batch (:meth:`CrossbarAccelerator.forward_with_power`); the
  legacy engine ran an independent forward pass plus a two-op-per-tile power
  trace (re-implemented here verbatim as the baseline).
* **Batch-size scaling** — throughput of the fused path as the query batch
  grows, quantifying how far the per-call overhead is amortised.
* **Basis-vector probing** — one batched probe round (all basis vectors plus
  the baseline in a single query) vs the per-column reference mode
  (``batched=False``: one scalar query per probe vector, modelling an
  attacker without batch submission).  Note the seed prober already batched
  the probe vectors themselves — this PR only folded the separate baseline
  query into the same call — so this comparison quantifies the value of
  batch submission as such, not a seed-vs-now delta.
* **Compute backends** — one entry per backend available on this machine
  (numpy always; torch/cupy when installed): the fused engine routed through
  the :mod:`repro.backend` kernels vs :func:`reference_query`, a verbatim
  re-implementation of the pre-backend host-numpy hot path.  The numpy
  backend must show no regression versus those historical kernels
  (``--min-backend-ratio`` in ``check_bench_regression.py``); absent
  optional backends are recorded as skipped, never failed.

Results are written to ``BENCH_engine.json`` at the repository root; other
benchmarks (``bench_probing``, ``bench_figure5``) merge their before/after
timings into the same file via :func:`record_timings`, and
``scripts/check_bench_regression.py`` fails CI when the fused path regresses
below the legacy baseline.
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.backend import BACKEND_NAMES, available_backends
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.attacks.oracle import Oracle
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber

#: Default output path, shared by every engine-related benchmark.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

DEFAULT_BATCH_SIZES = (1, 16, 128, 512)


# --------------------------------------------------------------- construction


def build_accelerator(
    n_inputs=256, n_outputs=10, *, seed=0, backend=None, dtype="float64"
):
    """An ideal single-layer crossbar accelerator with random weights."""
    network = Sequential(
        [Dense(n_inputs, n_outputs, activation="softmax", random_state=seed)]
    )
    return CrossbarAccelerator(
        network, random_state=seed, backend=backend, dtype=dtype
    )


# ------------------------------------------------------------- legacy engine


def legacy_power_trace(accelerator, inputs, *, cached=False):
    """The seed engine's power trace: two array ops per tile (current+forward).

    The seed engine had no effective-state cache — every array operation
    recomputed ``(G+ - G-) * attenuation`` from scratch — so the faithful
    baseline invalidates the cache before each operation.  ``cached=True``
    keeps the cache, isolating the pass-fusion win from the caching win.
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    per_tile_currents = []
    activations = inputs
    for tile in accelerator.tiles:
        if not cached:
            tile.array.invalidate_state_cache()
        per_tile_currents.append(np.atleast_1d(tile.total_current(activations)))
        if not cached:
            tile.array.invalidate_state_cache()
        activations = np.atleast_2d(tile.forward(activations))
    total = np.sum(per_tile_currents, axis=0)
    return accelerator.power_model.report(total, per_tile_currents)


def legacy_query(accelerator, inputs, *, cached=False):
    """The seed ``Oracle.query(expose_power=True)``: forward + power passes."""
    if not cached:
        for tile in accelerator.tiles:
            tile.array.invalidate_state_cache()
    outputs = np.atleast_2d(accelerator.forward(inputs))
    report = legacy_power_trace(accelerator, inputs, cached=cached)
    return outputs, np.atleast_1d(report.total_current)


def fused_query(accelerator, inputs):
    """The fused engine: outputs and power from one traversal."""
    outputs, report = accelerator.forward_with_power(inputs)
    return np.atleast_2d(outputs), np.atleast_1d(report.total_current)


def _reference_matvec_with_current(array, voltages):
    """Verbatim pre-backend ``CrossbarArray.matvec_with_current`` (unseeded).

    Same validation, same cached-state read, same operation counting, same
    host BLAS products, same measurement-noise hook — only the backend
    indirection is absent, so timing this against the live method isolates
    exactly what the port added.
    """
    batch, single = array._validate_batch(voltages)
    state = array._realize_state()
    array._n_operations += 1
    outputs = batch @ state.effective.T
    totals = batch @ state.column_sums
    noise = array.nonidealities.current_measurement_noise
    if noise > 0:
        totals = totals * (
            1.0 + array._rng.normal(0.0, noise, size=totals.shape)
        )
    if single:
        return outputs[0], float(totals[0])
    return outputs, totals


def reference_query(accelerator, inputs):
    """The pre-backend fused engine, re-implemented verbatim on host numpy.

    Replicates the full ``forward_with_power`` stack as it existed before
    the pluggable-backend port — the accelerator batch handling, the
    per-tile fused traversal (via :func:`_reference_matvec_with_current`),
    the shard-current bookkeeping, and the power report — so timing it
    against :func:`fused_query` measures the cost of routing the same
    arithmetic through an :class:`~repro.backend.ArrayBackend` (and, for
    optional backends, the benefit of running it elsewhere).  Only
    single-array (unsharded) tiles are supported, matching the benchmark
    accelerator.
    """
    activations, single = accelerator._as_batch(inputs)
    per_tile_currents = []
    layer_currents = []
    for tile in accelerator.tiles:
        voltages = tile._line_voltages(activations)
        currents, totals = _reference_matvec_with_current(tile.array, voltages)
        activations = tile.activation.forward(tile._to_logical(currents))
        shard_currents = np.atleast_1d(totals)[:, np.newaxis]
        per_tile_currents.extend(
            shard_currents[:, k] for k in range(shard_currents.shape[1])
        )
        layer_currents.append(shard_currents[:, 0])
    total = np.sum(layer_currents, axis=0)
    report = accelerator.power_model.report(
        total, per_tile_currents, labels=accelerator.tile_labels
    )
    return np.atleast_2d(activations), np.atleast_1d(report.total_current)


# ------------------------------------------------------------------- timing


def _best_time(fn, *args, repeats=5):
    """Best-of-``repeats`` wall time of ``fn(*args)`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _best_loop_time(fn, *args, repeats=5, inner=1):
    """Best-of-``repeats`` *per-call* time, averaging ``inner`` calls per shot.

    The fused-vs-legacy comparisons measure multi-x structural speedups, so
    single-shot best-of timing is fine; the per-backend rows gate ratios
    within a few percent of 1.0, where scheduler jitter on one ~50us call
    swamps the signal.  Looping amortises the jitter below the gate width.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn(*args)
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def run_query_benchmark(
    accelerator, *, batch_sizes=DEFAULT_BATCH_SIZES, repeats=5, seed=0
):
    """Fused vs legacy power-exposed query throughput per batch size."""
    rng = np.random.default_rng(seed)
    rows = []
    for batch_size in batch_sizes:
        inputs = rng.uniform(0.0, 1.0, size=(batch_size, accelerator.n_inputs))
        # Correctness guard: both engines must agree before we time them.
        fused_out, fused_power = fused_query(accelerator, inputs)
        legacy_out, legacy_power = legacy_query(accelerator, inputs)
        np.testing.assert_allclose(fused_out, legacy_out, atol=1e-12)
        np.testing.assert_allclose(fused_power, legacy_power, atol=1e-12)

        fused_s = _best_time(fused_query, accelerator, inputs, repeats=repeats)
        legacy_s = _best_time(legacy_query, accelerator, inputs, repeats=repeats)
        cached_legacy_s = _best_time(
            lambda: legacy_query(accelerator, inputs, cached=True), repeats=repeats
        )
        rows.append(
            {
                "batch_size": int(batch_size),
                "fused_s": fused_s,
                "legacy_s": legacy_s,
                "legacy_cached_s": cached_legacy_s,
                "speedup": legacy_s / fused_s,
                "speedup_vs_cached_two_pass": cached_legacy_s / fused_s,
                "fused_queries_per_s": batch_size / fused_s,
                "legacy_queries_per_s": batch_size / legacy_s,
            }
        )
    return rows


def run_probing_benchmark(accelerator, *, repeats=5, seed=0):
    """Batched probe round (one query) vs the per-column reference mode."""

    def probe(batched):
        prober = ColumnNormProber(
            PowerMeasurement(accelerator, random_state=seed),
            accelerator.n_inputs,
            measure_baseline=True,
            batched=batched,
        )
        return prober.probe_all()

    batched_result = probe(True)
    looped_result = probe(False)
    np.testing.assert_allclose(
        batched_result.column_sums, looped_result.column_sums, atol=1e-12
    )
    batched_s = _best_time(probe, True, repeats=repeats)
    looped_s = _best_time(probe, False, repeats=repeats)
    return {
        "n_inputs": int(accelerator.n_inputs),
        "batched_s": batched_s,
        "per_column_s": looped_s,
        "speedup": looped_s / batched_s,
        "queries_used": int(batched_result.queries_used),
    }


def run_backend_benchmark(
    *,
    n_inputs=256,
    n_outputs=10,
    batch_sizes=DEFAULT_BATCH_SIZES,
    repeats=5,
    seed=0,
    backends=None,
    dtype="float64",
):
    """One fused-vs-reference timing entry per available compute backend.

    ``backends=None`` benchmarks everything importable on this machine
    (numpy always); names absent from that probe are listed under
    ``"skipped"`` so a machine without torch/cupy records a complete,
    gate-passing result.  The numpy/float64 entry additionally *asserts*
    bitwise equality between the backend-routed fused query and the
    pre-backend host kernels — the port's no-regression contract.
    """
    names = tuple(backends) if backends else available_backends()
    entries = []
    for name in names:
        accelerator = build_accelerator(
            n_inputs, n_outputs, seed=seed, backend=name, dtype=dtype
        )
        rng = np.random.default_rng(seed)
        rows = []
        for batch_size in batch_sizes:
            inputs = rng.uniform(0.0, 1.0, size=(batch_size, n_inputs))
            fused_out, fused_power = fused_query(accelerator, inputs)
            ref_out, ref_power = reference_query(accelerator, inputs)
            if name == "numpy" and dtype == "float64":
                np.testing.assert_array_equal(fused_out, ref_out)
                np.testing.assert_array_equal(fused_power, ref_power)
            else:
                tol = 1e-4 if dtype == "float32" else 1e-9
                np.testing.assert_allclose(fused_out, ref_out, rtol=tol, atol=tol)
                np.testing.assert_allclose(
                    fused_power, ref_power, rtol=tol, atol=tol
                )
            # Interleave the two paths' timing windows (looping inside each,
            # alternating which goes first) so transient load and CPU
            # frequency ramps hit both alike: the gated quantity is a ratio
            # within a few percent of 1.0, far below what back-to-back
            # single-shot windows can resolve.
            inner = max(4, 512 // int(batch_size))
            _best_loop_time(fused_query, accelerator, inputs, repeats=1, inner=inner)
            _best_loop_time(
                reference_query, accelerator, inputs, repeats=1, inner=inner
            )
            fused_s = reference_s = float("inf")
            for repeat in range(repeats):
                pair = [
                    ("fused", fused_query),
                    ("reference", reference_query),
                ]
                if repeat % 2:
                    pair.reverse()
                for kind, fn in pair:
                    elapsed = _best_loop_time(
                        fn, accelerator, inputs, repeats=1, inner=inner
                    )
                    if kind == "fused":
                        fused_s = min(fused_s, elapsed)
                    else:
                        reference_s = min(reference_s, elapsed)
            rows.append(
                {
                    "batch_size": int(batch_size),
                    "fused_s": fused_s,
                    "reference_s": reference_s,
                    "speedup_vs_reference": reference_s / fused_s,
                    "fused_queries_per_s": batch_size / fused_s,
                }
            )
        entries.append(
            {
                "backend": str(name),
                "device": accelerator.backend.device,
                "dtype": str(dtype),
                "rows": rows,
                "peak_speedup_vs_reference": max(
                    row["speedup_vs_reference"] for row in rows
                ),
            }
        )
    recorded = {entry["backend"] for entry in entries}
    return {
        "entries": entries,
        "skipped": [n for n in BACKEND_NAMES if n not in recorded],
    }


def run_engine_benchmark(
    *,
    n_inputs=256,
    n_outputs=10,
    batch_sizes=DEFAULT_BATCH_SIZES,
    repeats=5,
    seed=0,
    backends=None,
    backend_dtype="float64",
):
    """Full engine benchmark; returns the structure stored in BENCH_engine.json."""
    accelerator = build_accelerator(n_inputs, n_outputs, seed=seed)
    accelerator.reset_operation_counters()
    oracle = Oracle(accelerator, expose_power=True, random_state=seed)
    probe_batch = np.eye(accelerator.n_inputs)[: min(8, accelerator.n_inputs)]
    oracle.query(probe_batch)
    ops_per_query_batch = accelerator.n_array_operations
    return {
        "config": {
            "n_inputs": int(n_inputs),
            "n_outputs": int(n_outputs),
            "repeats": int(repeats),
            "seed": int(seed),
        },
        "array_ops_per_power_query_batch": int(ops_per_query_batch),
        "oracle_query": run_query_benchmark(
            accelerator, batch_sizes=batch_sizes, repeats=repeats, seed=seed
        ),
        "probing": run_probing_benchmark(accelerator, repeats=repeats, seed=seed),
        "backends": run_backend_benchmark(
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            batch_sizes=batch_sizes,
            repeats=repeats,
            seed=seed,
            backends=backends,
            dtype=backend_dtype,
        ),
    }


# ------------------------------------------------------------------ results


def load_results(path=RESULTS_PATH):
    """Existing BENCH_engine.json contents (empty dict when absent)."""
    path = Path(path)
    if path.exists():
        return json.loads(path.read_text())
    return {}


def record_timings(section, payload, *, path=RESULTS_PATH):
    """Merge ``payload`` under ``section`` into BENCH_engine.json."""
    path = Path(path)
    results = load_results(path)
    results[section] = payload
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


# ---------------------------------------------------------------- benchmark


def test_engine_throughput(single_round, benchmark):
    """Fused-vs-legacy query throughput and batch scaling (records JSON)."""
    results = single_round(run_engine_benchmark)
    record_timings("engine", results)

    for row in results["oracle_query"]:
        benchmark.extra_info[f"batch={row['batch_size']}/speedup"] = round(
            row["speedup"], 2
        )
    benchmark.extra_info["probing/speedup"] = round(results["probing"]["speedup"], 2)
    for entry in results["backends"]["entries"]:
        benchmark.extra_info[f"backend={entry['backend']}/peak_vs_reference"] = round(
            entry["peak_speedup_vs_reference"], 2
        )

    # A power-exposed oracle query must traverse each tile exactly once.
    assert results["array_ops_per_power_query_batch"] == 1
    # Acceptance criterion: >= 2x throughput on power-exposed queries against
    # an ideal crossbar versus the legacy two-pass engine.
    speedups = [row["speedup"] for row in results["oracle_query"]]
    assert max(speedups) >= 2.0
    # The batched probe round must not be slower than the per-column loop.
    assert results["probing"]["speedup"] >= 1.0


def main(argv=None):  # pragma: no cover - console entry point
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        action="append",
        choices=("numpy", "torch", "cupy"),
        help="backend(s) for the per-backend section (repeatable; "
        "default: every backend available on this machine)",
    )
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=("float32", "float64"),
        help="kernel dtype for the per-backend section (default: float64)",
    )
    args = parser.parse_args(argv)
    results = run_engine_benchmark(
        backends=args.backend, backend_dtype=args.dtype
    )
    record_timings("engine", results)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nresults merged into {RESULTS_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
