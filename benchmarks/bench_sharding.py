"""Benchmark multi-tile sharded execution against the single-tile placement.

For each shipped shard geometry the same logical layer runs once as a single
crossbar tile and once as a :class:`~repro.crossbar.tile.ShardedTileGroup`,
through the fused ``forward_with_power`` path.  Total arithmetic is identical
(the shards partition the weight matrix), so the recorded
``sharded_s / single_s`` ratio is pure sharding overhead — shard dispatch,
partial-sum reduction, per-shard current stacking.  The acceptance gate
(enforced by ``scripts/check_bench_regression.py``) is that sharded forward
stays within 1.2x of the single-tile per-element throughput.

A second section times the *process-parallel* shard path: the same sharded
group driven by ``ParallelRunner("process")``, whose workers execute the
picklable :class:`~repro.crossbar.shard.ShardProgram` kernels.  Process
dispatch has real serialization overhead, so the gate
(``--min-shard-speedup``) is a single-core floor like the netservice and
executor gates — the parallel path must retain at least that fraction of
serial throughput, and perfect scaling shows up as speedup > 1.

Results merge into ``BENCH_engine.json`` under ``bench_sharding``.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.crossbar import CrossbarAccelerator, ShardingSpec
from repro.experiments.runner import ParallelRunner
from repro.nn.layers import Dense
from repro.nn.network import Sequential

#: Geometries benchmarked (name -> spec); mirrors the scenario presets.
GEOMETRIES = {
    "rows-2": ShardingSpec.rows(2),
    "columns-4": ShardingSpec.columns(4),
    "grid-2x2": ShardingSpec.grid(2, 2),
}

#: Gate: sharded forward must stay within this factor of single-tile time.
MAX_SHARDED_RATIO = 1.2

#: Gate: process-parallel shard execution must retain at least this fraction
#: of serial throughput (speedup = serial_s / process_s).  An overhead
#: floor, not a scaling requirement (same philosophy as the executor gate's
#: 0.15 floor): every forward call pays pool spawn plus pickling the input
#: slices to the workers, and serial BLAS already uses all cores, so the
#: pool only wins once per-shard arithmetic dwarfs IPC.  The gate is a
#: canary that the dispatch overhead stays bounded, and the recorded
#: ``outputs_identical`` flag is the real acceptance: process execution is
#: bit-identical to serial.
MIN_SHARD_SPEEDUP = 0.05


def build_network(n_inputs=2048, n_outputs=512, *, seed=0):
    """A single dense layer large enough for BLAS to dominate the timings."""
    return Sequential(
        [Dense(n_inputs, n_outputs, activation="softmax", random_state=seed)]
    )


def _interleaved_best(fn_a, fn_b, *args, repeats=7):
    """Best-of wall times of two callables, measured alternately.

    Alternating the measurements exposes both engines to the same load/clock
    drift, so their *ratio* is far more stable than timing one after the
    other (the quantity the regression gate checks is the ratio).
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a(*args)
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b(*args)
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def run_sharding_benchmark(
    *, n_inputs=2048, n_outputs=512, batch_size=256, repeats=9, rounds=3, seed=0
):
    """Time fused forward_with_power per geometry vs the single-tile baseline.

    The gated quantity is the *ratio* of sharded to single-tile wall time.
    Scheduler noise only ever inflates one side of a round, so each geometry
    is measured in ``rounds`` independent interleaved best-of-``repeats``
    rounds and the smallest ratio is recorded — it converges to the true
    overhead from above.
    """
    network = build_network(n_inputs, n_outputs, seed=seed)
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0.0, 1.0, size=(batch_size, n_inputs))

    single = CrossbarAccelerator(network, random_state=seed)
    single_out, single_report = single.forward_with_power(inputs)

    rows = []
    for name, spec in GEOMETRIES.items():
        sharded = CrossbarAccelerator(network, sharding=spec, random_state=seed)
        out, report = sharded.forward_with_power(inputs)
        # Correctness guard before timing: ideal-device sharded execution
        # must match the single tile (bit-identical in exact arithmetic,
        # float-reduction precision otherwise).
        np.testing.assert_allclose(out, single_out, atol=1e-10)
        np.testing.assert_allclose(
            report.total_current, single_report.total_current, rtol=1e-10
        )
        assert report.per_tile_current.shape == (batch_size, spec.n_shards)

        best = None
        for _ in range(rounds):
            single_s, sharded_s = _interleaved_best(
                single.forward_with_power,
                sharded.forward_with_power,
                inputs,
                repeats=repeats,
            )
            if best is None or sharded_s / single_s < best[1] / best[0]:
                best = (single_s, sharded_s)
        single_s, sharded_s = best
        rows.append(
            {
                "geometry": name,
                "row_shards": spec.row_shards,
                "col_shards": spec.col_shards,
                "n_shards": spec.n_shards,
                "reduction": spec.reduction,
                "single_s": single_s,
                "sharded_s": sharded_s,
                "ratio": sharded_s / single_s,
                "elements_per_s_single": batch_size * n_inputs * n_outputs / single_s,
                "elements_per_s_sharded": batch_size * n_inputs * n_outputs / sharded_s,
            }
        )
    return {
        "config": {
            "n_inputs": int(n_inputs),
            "n_outputs": int(n_outputs),
            "batch_size": int(batch_size),
            "repeats": int(repeats),
            "rounds": int(rounds),
            "seed": int(seed),
        },
        "max_ratio_gate": MAX_SHARDED_RATIO,
        "geometries": rows,
    }


def run_process_parallel_benchmark(
    *,
    n_inputs=2048,
    n_outputs=512,
    batch_size=512,
    repeats=5,
    rounds=3,
    seed=0,
    geometry=("rows-4", ShardingSpec.rows(4)),
):
    """Time serial vs process-parallel execution of the same sharded group.

    Both accelerators hold identical programmed state (same seed), and the
    ideal-device forward path is a pure function of the shard programs, so
    the process pool's outputs must be bit-identical to serial — asserted
    here and recorded as ``outputs_identical`` for the regression gate.
    """
    name, spec = geometry
    network = build_network(n_inputs, n_outputs, seed=seed)
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0.0, 1.0, size=(batch_size, n_inputs))

    serial = CrossbarAccelerator(network, sharding=spec, random_state=seed)
    runner = ParallelRunner(mode="process", max_workers=spec.n_shards)
    parallel = CrossbarAccelerator(
        network, sharding=spec, shard_runner=runner, random_state=seed
    )

    serial_out, serial_report = serial.forward_with_power(inputs)
    parallel_out, parallel_report = parallel.forward_with_power(inputs)
    outputs_identical = bool(
        np.array_equal(serial_out, parallel_out)
        and np.array_equal(
            serial_report.total_current, parallel_report.total_current
        )
    )
    assert outputs_identical, "process-parallel shard outputs diverged from serial"

    best = None
    for _ in range(rounds):
        serial_s, process_s = _interleaved_best(
            serial.forward_with_power,
            parallel.forward_with_power,
            inputs,
            repeats=repeats,
        )
        if best is None or serial_s / process_s > best[0] / best[1]:
            best = (serial_s, process_s)
    serial_s, process_s = best
    return {
        "config": {
            "n_inputs": int(n_inputs),
            "n_outputs": int(n_outputs),
            "batch_size": int(batch_size),
            "repeats": int(repeats),
            "rounds": int(rounds),
            "seed": int(seed),
        },
        "geometry": name,
        "n_shards": spec.n_shards,
        "workers": spec.n_shards,
        "serial_s": serial_s,
        "process_s": process_s,
        "speedup": serial_s / process_s,
        "outputs_identical": outputs_identical,
        "min_speedup_gate": MIN_SHARD_SPEEDUP,
    }


def test_sharded_forward_throughput(single_round, benchmark):
    """Sharded fused forward within the gate of single-tile throughput.

    ``BENCH_TOLERANCE`` (fractional, e.g. ``0.15``) relaxes the in-run gate
    on noisy shared runners; the recorded JSON still carries the raw ratios
    for ``scripts/check_bench_regression.py`` to gate with its own
    ``--tolerance``.
    """
    results = single_round(run_sharding_benchmark)
    results["process_parallel"] = run_process_parallel_benchmark()
    bench_engine.record_timings("bench_sharding", results)
    for row in results["geometries"]:
        benchmark.extra_info[f"{row['geometry']}/ratio"] = round(row["ratio"], 3)
    parallel = results["process_parallel"]
    benchmark.extra_info["process_parallel/speedup"] = round(parallel["speedup"], 3)
    worst = max(row["ratio"] for row in results["geometries"])
    tolerance = float(os.environ.get("BENCH_TOLERANCE", "0"))
    gate = MAX_SHARDED_RATIO * (1.0 + tolerance)
    assert worst <= gate, (
        f"sharded forward is {worst:.2f}x the single-tile time (gate {gate:.2f}x)"
    )
    speedup_gate = MIN_SHARD_SPEEDUP * (1.0 - tolerance)
    assert parallel["speedup"] >= speedup_gate, (
        f"process-parallel shard forward retains only {parallel['speedup']:.2f}x "
        f"of serial throughput (floor {speedup_gate:.2f}x)"
    )


def main():  # pragma: no cover - console entry point
    results = run_sharding_benchmark()
    results["process_parallel"] = run_process_parallel_benchmark()
    bench_engine.record_timings("bench_sharding", results)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nresults merged into {bench_engine.RESULTS_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
