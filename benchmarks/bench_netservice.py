"""Netservice benchmark: shared networked accelerator vs per-request connections.

Measures what the networked multi-tenant front-end buys over the naive
deployment (a fresh connection per query, no cross-client coalescing):

* **one-request-per-connection baseline** — every query pays TCP connect +
  hello + a solo fused traversal, the cost model of attackers that do not
  share a service;
* **offered load** — ``w`` client *processes* (forked; threads when fork is
  unavailable), each holding one persistent :class:`NetClient` and pushing
  its share of single-row queries back-to-back, so the server coalesces
  ~``w`` tenants' rows into each fused traversal.

The acceptance criterion is a >= MIN_NET_SPEEDUP throughput gain at offered
load >= 8 workers.  The threshold is deliberately conservative: on a
single-core machine the offered load cannot overlap round trips, so the
entire gain must come from CPU actually saved per query (skipped connection
setup plus fused traversals amortised across coalesced rows) minus the
kernel's context-switch tax for juggling the worker processes.  On multicore
hosts the same workload additionally overlaps client round trips and the
measured speedup is far higher.  Results are merged into
``BENCH_engine.json`` under ``bench_netservice`` and gated by
``scripts/check_bench_regression.py`` (``--min-net-speedup``).  A
correctness guard asserts wire responses are bit-identical to direct seeded
queries before anything is timed.
"""

import json
import multiprocessing
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.attacks.oracle import Oracle
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.netservice import NetClient, NetServiceConfig, serve_in_thread
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.service import ServiceConfig
from repro.utils.rng import derive_request_seeds

N_REQUESTS = 256
WORKER_LEVELS = (1, 8, 16)
NET_CONFIG = NetServiceConfig(service=ServiceConfig(max_batch=64, max_wait_ms=2.0))

#: Victim model size.  A multi-layer network (rather than bench_engine's
#: single Dense layer) so a fused traversal does real work: coalescing can
#: only beat one-request-per-connection when there is per-query compute to
#: amortise across the batch, which is exactly the regime the service targets.
HIDDEN_WIDTH = 1024
N_HIDDEN_LAYERS = 2

#: Acceptance criterion: throughput gain at offered load >= 8 workers.
#: Conservative single-core floor (see module docstring); typical measured
#: values on this class of machine are 1.5-1.8x.
MIN_NET_SPEEDUP = 1.3


def build_oracle(*, n_inputs=256, n_outputs=10, seed=0, backend=None, dtype="float64"):
    layers = [Dense(n_inputs, HIDDEN_WIDTH, activation="relu", random_state=seed)]
    for index in range(N_HIDDEN_LAYERS - 1):
        layers.append(
            Dense(
                HIDDEN_WIDTH,
                HIDDEN_WIDTH,
                activation="relu",
                random_state=seed + 1 + index,
            )
        )
    layers.append(
        Dense(
            HIDDEN_WIDTH,
            n_outputs,
            activation="softmax",
            random_state=seed + N_HIDDEN_LAYERS,
        )
    )
    accelerator = CrossbarAccelerator(
        Sequential(layers), random_state=seed, backend=backend, dtype=dtype
    )
    return Oracle(accelerator, expose_power=True, random_state=seed)


def make_requests(n_inputs, *, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(N_REQUESTS, 1, n_inputs))


def check_equivalence(address, requests, *, n_inputs, seed, backend, dtype):
    """Wire responses must be bit-identical to direct seeded queries."""
    with NetClient(address, tenant="equivalence") as client:
        responses = [client.query(request) for request in requests[:16]]
    direct = build_oracle(n_inputs=n_inputs, seed=seed, backend=backend, dtype=dtype)
    for request, response in zip(requests, responses):
        seeds = derive_request_seeds(
            response.metadata["base_seed"],
            response.metadata["request_id"],
            len(request),
        )
        reference = direct.query(request, seeds=seeds)
        np.testing.assert_array_equal(response.outputs, reference.outputs)
        np.testing.assert_array_equal(response.power, reference.power)
    return True


def run_one_per_connection(address, requests):
    """The naive deployment: a fresh connection (and hello) per query."""
    start = time.perf_counter()
    for request in requests:
        with NetClient(address, tenant="solo") as client:
            client.query(request)
    return time.perf_counter() - start


def _worker_main(address, share, tenant, barrier):
    with NetClient(address, tenant=tenant) as client:
        client.ping()  # connect + hello outside the timed window
        barrier.wait()
        for request in share:
            client.query(request)


def run_offered_load(address, requests, workers):
    """``workers`` processes, each a persistent client pushing its share.

    Every worker connects and then parks on a barrier, so the timed window
    covers queries only — not process forking or connection setup.  Falls
    back to threads when process forking is unavailable; either way every
    client lives outside the server's event loop, so the coalescing
    measured is genuine cross-connection batching.
    """
    shares = [requests[i::workers] for i in range(workers)]
    jobs = []
    mode = "process"
    try:
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(workers + 1)
        for index, share in enumerate(shares):
            jobs.append(
                context.Process(
                    target=_worker_main, args=(address, share, f"w{index}", barrier)
                )
            )
    except ValueError:  # platform without fork: measure with threads instead
        mode = "thread"
        barrier = threading.Barrier(workers + 1)
        for index, share in enumerate(shares):
            jobs.append(
                threading.Thread(
                    target=_worker_main, args=(address, share, f"w{index}", barrier)
                )
            )
    for job in jobs:
        job.start()
    barrier.wait()  # every worker is connected and ready
    start = time.perf_counter()
    for job in jobs:
        job.join()
    elapsed = time.perf_counter() - start
    if mode == "process" and any(job.exitcode != 0 for job in jobs):
        raise RuntimeError("an offered-load worker process failed")
    return elapsed, mode


def run_netservice_benchmark(
    *, n_inputs=256, n_outputs=10, seed=0, backend=None, dtype="float64"
):
    """Full benchmark; returns the structure stored in BENCH_engine.json."""
    requests = make_requests(n_inputs, seed=seed)
    oracle = build_oracle(
        n_inputs=n_inputs, n_outputs=n_outputs, seed=seed, backend=backend, dtype=dtype
    )
    with serve_in_thread(oracle, NET_CONFIG) as handle:
        address = handle.address
        responses_identical = check_equivalence(
            address, requests, n_inputs=n_inputs, seed=seed, backend=backend, dtype=dtype
        )
        one_per_connection_s = run_one_per_connection(address, requests)
        one_per_connection_qps = N_REQUESTS / one_per_connection_s

        rows = []
        for workers in WORKER_LEVELS:
            before = handle.service_stats()
            elapsed, mode = run_offered_load(address, requests, workers)
            after = handle.service_stats()
            # stats are cumulative over the server's lifetime: report this
            # run's delta, not a mix with the baseline's factor-1 ticks
            delta_requests = after["n_requests"] - before["n_requests"]
            delta_ticks = after["n_ticks"] - before["n_ticks"]
            rows.append(
                {
                    "workers": int(workers),
                    "workers_mode": mode,
                    "elapsed_s": elapsed,
                    "qps": N_REQUESTS / elapsed,
                    "speedup_vs_one_per_connection": one_per_connection_s / elapsed,
                    "coalescing_factor": (
                        delta_requests / delta_ticks if delta_ticks else 0.0
                    ),
                }
            )
    return {
        "config": {
            "n_inputs": int(n_inputs),
            "n_outputs": int(n_outputs),
            "hidden_width": int(HIDDEN_WIDTH),
            "n_hidden_layers": int(N_HIDDEN_LAYERS),
            "n_requests": int(N_REQUESTS),
            "max_batch": NET_CONFIG.service.max_batch,
            "max_wait_ms": NET_CONFIG.service.max_wait_ms,
            "seed": int(seed),
            "backend": str(backend) if backend else "numpy",
            "dtype": str(dtype),
        },
        "responses_identical": bool(responses_identical),
        "one_per_connection_s": one_per_connection_s,
        "one_per_connection_qps": one_per_connection_qps,
        "offered_load": rows,
    }


def test_netservice_throughput(single_round, benchmark):
    """Networked coalescing vs one-request-per-connection (records JSON)."""
    results = single_round(run_netservice_benchmark)
    bench_engine.record_timings("bench_netservice", results)

    for row in results["offered_load"]:
        benchmark.extra_info[f"w={row['workers']}/speedup"] = round(
            row["speedup_vs_one_per_connection"], 2
        )

    assert results["responses_identical"]
    # Acceptance criterion: best offered-load level >= 8 workers must beat
    # the one-request-per-connection baseline by MIN_NET_SPEEDUP.
    eligible = [
        row["speedup_vs_one_per_connection"]
        for row in results["offered_load"]
        if row["workers"] >= 8
    ]
    assert max(eligible) >= MIN_NET_SPEEDUP, (
        f"networked coalescing speedup {max(eligible):.2f} at >= 8 workers is "
        f"below the required {MIN_NET_SPEEDUP}x"
    )


def main(argv=None):  # pragma: no cover - console entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "torch", "cupy", "auto"),
        help="compute backend driving the oracle hardware (default: numpy)",
    )
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=("float32", "float64"),
        help="kernel dtype (default: float64)",
    )
    args = parser.parse_args(argv)
    results = run_netservice_benchmark(backend=args.backend, dtype=args.dtype)
    bench_engine.record_timings("bench_netservice", results)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nresults merged into {bench_engine.RESULTS_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
