"""Ablation benchmark: measurement noise on the power side channel.

The paper assumes noise-free current measurements.  This benchmark sweeps the
attacker's measurement noise and reports how the power-guided single-pixel
attack degrades towards the random baseline, quantifying how much instrument
quality the attack actually needs.
"""

import numpy as np

from repro.attacks.evaluation import accuracy_under_attack
from repro.attacks.single_pixel import SinglePixelAttack, SinglePixelStrategy
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.datasets import load_mnist_like
from repro.experiments.reporting import format_series
from repro.nn.trainer import train_single_layer
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber

NOISE_LEVELS = (0.0, 0.05, 0.2, 1.0, 5.0)
STRENGTH = 8.0
N_TRIALS = 3


def run_noise_ablation(seed=0):
    dataset = load_mnist_like(n_train=2000, n_test=400, random_state=seed)
    network, _ = train_single_layer(dataset, output="softmax", epochs=25, random_state=seed)
    accelerator = CrossbarAccelerator(network, random_state=seed)

    random_attack = SinglePixelAttack(SinglePixelStrategy.RANDOM_PIXEL, random_state=seed)
    random_baseline = accuracy_under_attack(
        network, random_attack, dataset.test_inputs, dataset.test_targets, STRENGTH
    )

    power_curve = []
    for noise in NOISE_LEVELS:
        accuracies = []
        for trial in range(N_TRIALS):
            prober = ColumnNormProber(
                PowerMeasurement(accelerator, noise_std=noise, random_state=100 * trial + seed),
                dataset.n_features,
            )
            leaked = prober.probe_all().column_sums
            attack = SinglePixelAttack(
                SinglePixelStrategy.POWER_ADD, column_norms=leaked, random_state=trial
            )
            accuracies.append(
                accuracy_under_attack(
                    network, attack, dataset.test_inputs, dataset.test_targets, STRENGTH
                )
            )
        power_curve.append(float(np.mean(accuracies)))
    return power_curve, random_baseline


def test_measurement_noise_ablation(single_round, benchmark):
    """Power-guided attack efficacy vs relative measurement noise."""
    power_curve, random_baseline = single_round(run_noise_ablation)
    print()
    print(
        format_series(
            "noise_std",
            list(NOISE_LEVELS),
            {
                "power-guided": power_curve,
                "random baseline": [random_baseline] * len(NOISE_LEVELS),
            },
            title=f"Measurement-noise ablation (single-pixel attack, strength {STRENGTH})",
        )
    )
    benchmark.extra_info["noise=0/accuracy"] = round(power_curve[0], 3)
    benchmark.extra_info["noise=max/accuracy"] = round(power_curve[-1], 3)
    benchmark.extra_info["random_baseline"] = round(random_baseline, 3)

    # Noise-free probing gives a clear advantage over the random baseline.
    assert power_curve[0] < random_baseline - 0.05
    # Heavy noise erodes (most of) the advantage: the attack moves towards the
    # baseline as the probe quality collapses.
    assert power_curve[-1] >= power_curve[0] - 0.05
