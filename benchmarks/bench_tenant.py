"""Tenant-placement benchmark: what tick isolation costs in throughput.

Measures the price of the cross-tenant isolation policies on the coalescing
hot path: ``N_REQUESTS`` single-row power-exposed oracle queries from two
interleaved tenants are pushed through a :class:`QueryService` at fixed
offered concurrency under

* **shared** placement — the status-quo coalescer (strangers share fused
  traversals and rails), and
* **partitioned** placement — per-tenant ticks on the shared rail (the
  first rung of the isolation ladder the ``cross-tenant-attack`` experiment
  evaluates).

Because the per-group ``max_batch`` budget lets same-tenant rows keep
coalescing into full ticks, partitioning two steady tenants costs grouping
bookkeeping — not batch amortisation — and the acceptance criterion is that
the partitioned wall time stays within ``MAX_TENANT_OVERHEAD`` of the
shared one.  Results are merged into ``BENCH_engine.json`` under
``bench_tenant`` and gated by ``scripts/check_bench_regression.py``
(``--max-tenant-overhead``).  Correctness guards assert that partitioned
ticks never mixed tenants and that partitioned responses are bit-identical
to direct seeded queries before anything is timed.
"""

import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.attacks.oracle import Oracle
from repro.service import QueryService, ServiceConfig

N_REQUESTS = 256
CONCURRENCY = 16
TENANTS = ("alice", "bob")
MAX_BATCH = 64
MAX_WAIT_MS = 2.0

#: Acceptance criterion: partitioned placement may cost at most this factor
#: of the shared-placement wall time on the two-tenant workload.
MAX_TENANT_OVERHEAD = 1.5


def build_oracle(*, n_inputs=256, n_outputs=10, seed=0, backend=None, dtype="float64"):
    accelerator = bench_engine.build_accelerator(
        n_inputs, n_outputs, seed=seed, backend=backend, dtype=dtype
    )
    return Oracle(accelerator, expose_power=True, random_state=seed)


def make_requests(n_inputs, *, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(N_REQUESTS, 1, n_inputs))


def service_config(placement):
    return ServiceConfig(
        max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS, placement=placement
    )


async def _clients(service, requests, concurrency):
    """``concurrency`` clients, alternating tenants, each pushing its share."""

    async def client(chunk, tenant):
        return [
            await service.submit_traced(request, tenant=tenant)
            for request in chunk
        ]

    shares = [requests[i::concurrency] for i in range(concurrency)]
    tenants = [TENANTS[i % len(TENANTS)] for i in range(concurrency)]
    return await asyncio.gather(
        *(client(share, tenant) for share, tenant in zip(shares, tenants))
    )


def run_placement(oracle, requests, placement):
    async def run():
        async with QueryService(oracle, service_config(placement)) as service:
            start = time.perf_counter()
            await _clients(service, list(requests), CONCURRENCY)
            elapsed = time.perf_counter() - start
            mixed = sum(
                1 for tick in service.tick_trace if len(tick.tenants) > 1
            )
            return elapsed, service.stats.to_dict(), mixed

    return asyncio.run(run())


def check_equivalence(*, n_inputs=32, n_rows=24, seed=0, backend=None, dtype="float64"):
    """Partitioned responses must be bit-identical to direct seeded queries."""
    requests = make_requests(n_inputs, seed=seed)[:n_rows]
    serviced_oracle = build_oracle(
        n_inputs=n_inputs, seed=seed, backend=backend, dtype=dtype
    )

    async def run():
        async with QueryService(
            serviced_oracle, service_config("partitioned")
        ) as service:
            results = await asyncio.gather(
                *(
                    service.submit_traced(request, tenant=TENANTS[i % len(TENANTS)])
                    for i, request in enumerate(requests)
                )
            )
            seeds = [
                service.seeds_for(request_id, 1) for request_id, _ in results
            ]
            return [response for _, response in results], seeds

    responses, seeds = asyncio.run(run())
    direct_oracle = build_oracle(
        n_inputs=n_inputs, seed=seed, backend=backend, dtype=dtype
    )
    for request, response, request_seeds in zip(requests, responses, seeds):
        reference = direct_oracle.query(request, seeds=request_seeds)
        np.testing.assert_array_equal(response.outputs, reference.outputs)
        np.testing.assert_array_equal(response.power, reference.power)
    return True


def run_tenant_benchmark(
    *, n_inputs=256, n_outputs=10, seed=0, backend=None, dtype="float64"
):
    """Full benchmark; returns the structure stored in BENCH_engine.json."""
    responses_identical = check_equivalence(seed=seed, backend=backend, dtype=dtype)
    requests = make_requests(n_inputs, seed=seed)

    rows = []
    elapsed_by_placement = {}
    for placement in ("shared", "partitioned"):
        oracle = build_oracle(
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            seed=seed,
            backend=backend,
            dtype=dtype,
        )
        elapsed, stats, mixed_ticks = run_placement(oracle, requests, placement)
        elapsed_by_placement[placement] = elapsed
        rows.append(
            {
                "placement": placement,
                "elapsed_s": elapsed,
                "qps": N_REQUESTS / elapsed,
                "coalescing_factor": stats["coalescing_factor"],
                "mean_tick_rows": stats["mean_tick_rows"],
                "n_ticks": stats["n_ticks"],
                "mixed_ticks": int(mixed_ticks),
            }
        )
    return {
        "config": {
            "n_inputs": int(n_inputs),
            "n_outputs": int(n_outputs),
            "n_requests": int(N_REQUESTS),
            "concurrency": int(CONCURRENCY),
            "n_tenants": len(TENANTS),
            "max_batch": int(MAX_BATCH),
            "max_wait_ms": float(MAX_WAIT_MS),
            "seed": int(seed),
            "backend": str(backend) if backend else "numpy",
            "dtype": str(dtype),
        },
        "responses_identical": bool(responses_identical),
        "placements": rows,
        "partitioned_overhead": (
            elapsed_by_placement["partitioned"] / elapsed_by_placement["shared"]
        ),
    }


def test_tenant_placement_throughput(single_round, benchmark):
    """Shared vs partitioned placement throughput (records JSON)."""
    results = single_round(run_tenant_benchmark)
    bench_engine.record_timings("bench_tenant", results)

    for row in results["placements"]:
        benchmark.extra_info[f"{row['placement']}/qps"] = round(row["qps"], 1)
        benchmark.extra_info[f"{row['placement']}/coalescing"] = round(
            row["coalescing_factor"], 1
        )
    benchmark.extra_info["partitioned_overhead"] = round(
        results["partitioned_overhead"], 2
    )

    assert results["responses_identical"]
    by_placement = {row["placement"]: row for row in results["placements"]}
    # isolation must actually isolate: no partitioned tick ever mixed tenants
    assert by_placement["partitioned"]["mixed_ticks"] == 0
    # ...and still coalesce: per-tenant groups keep amortising requests
    assert by_placement["partitioned"]["coalescing_factor"] > 1.0
    assert results["partitioned_overhead"] <= MAX_TENANT_OVERHEAD, (
        f"partitioned placement costs {results['partitioned_overhead']:.2f}x "
        f"the shared wall time (gate {MAX_TENANT_OVERHEAD}x)"
    )


def main(argv=None):  # pragma: no cover - console entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "torch", "cupy", "auto"),
        help="compute backend driving the oracle hardware (default: numpy)",
    )
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=("float32", "float64"),
        help="kernel dtype (default: float64)",
    )
    args = parser.parse_args(argv)
    results = run_tenant_benchmark(backend=args.backend, dtype=args.dtype)
    bench_engine.record_timings("bench_tenant", results)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nresults merged into {bench_engine.RESULTS_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
