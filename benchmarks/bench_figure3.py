"""Benchmark regenerating Figure 3 (sensitivity maps vs 1-norm maps)."""

from repro.experiments.figure3 import format_figure3, run_figure3


def test_figure3(single_round, benchmark):
    """Figure 3: mean-sensitivity and column-1-norm maps for the 4 configurations."""
    result = single_round(run_figure3, "bench")
    print()
    print(format_figure3(result))

    for (dataset, activation), summary in result.summaries.items():
        key = f"{dataset}/{activation}"
        benchmark.extra_info[f"{key}/map_correlation"] = round(
            float(summary["map_correlation"]), 3
        )
        benchmark.extra_info[f"{key}/norm_smoothness"] = round(
            float(summary["norm_smoothness"]), 3
        )

    # Visible correlation between the two maps in every panel pair.
    for summary in result.summaries.values():
        assert summary["map_correlation"] > 0.3
    # MNIST's 1-norm map is smoother than CIFAR's (Section III discussion).
    assert (
        result.summaries[("mnist-like", "softmax")]["norm_smoothness"]
        < result.summaries[("cifar-like", "softmax")]["norm_smoothness"]
    )
