"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures (or an ablation)
at the ``bench`` scale and prints the same rows/series the paper reports.  The
pipelines are deterministic and long-running relative to micro-benchmarks, so
every benchmark uses a single round.
"""

import pytest


@pytest.fixture()
def single_round(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
