"""Ablation benchmark: countermeasures against the power side channel.

Compares, on the MNIST-like softmax victim, how much each defence reduces the
leak (correlation of the probed currents with the true column 1-norms) and the
single-pixel attack advantage, and what it costs (accuracy, power overhead).
"""

from repro.crossbar import ConductanceMapping, CrossbarAccelerator
from repro.datasets import load_mnist_like
from repro.defenses import PowerNoiseDefense, evaluate_defense, rebalance_column_norms
from repro.experiments.reporting import format_table
from repro.nn.trainer import train_single_layer

STRENGTH = 8.0


def run_defense_ablation(seed=0):
    dataset = load_mnist_like(n_train=2000, n_test=400, random_state=seed)
    victim, _ = train_single_layer(dataset, output="softmax", epochs=25, random_state=seed)
    reports = []

    # 1. no defence: ideal crossbar, min-power mapping
    baseline_accelerator = CrossbarAccelerator(victim, random_state=seed)
    reports.append(
        evaluate_defense(
            "none (min-power mapping)",
            victim,
            baseline_accelerator,
            dataset.test_inputs,
            dataset.test_targets,
            attack_strength=STRENGTH,
            random_state=seed,
        )
    )

    # 2. hardware defence: balanced conductance mapping (2x static power)
    balanced = CrossbarAccelerator(
        victim, mapping=ConductanceMapping(scheme="balanced"), random_state=seed
    )
    reports.append(
        evaluate_defense(
            "balanced mapping",
            victim,
            balanced,
            dataset.test_inputs,
            dataset.test_targets,
            attack_strength=STRENGTH,
            power_overhead=2.0,
            random_state=seed,
        )
    )

    # 3. inference-time defence: randomised dummy current draw
    noisy = PowerNoiseDefense(
        baseline_accelerator, dummy_current_scale=2.0, jitter=0.3, random_state=seed
    )
    reports.append(
        evaluate_defense(
            "dummy-current injection",
            victim,
            noisy,
            dataset.test_inputs,
            dataset.test_targets,
            attack_strength=STRENGTH,
            power_overhead=noisy.overhead_factor,
            random_state=seed,
        )
    )

    # 4. training-time defence: rebalance the column 1-norms after training
    defended_victim = victim.clone_architecture(random_state=seed)
    defended_victim.weights = victim.weights.copy()
    rebalance_column_norms(defended_victim, blend=1.0)
    rebalanced_accelerator = CrossbarAccelerator(defended_victim, random_state=seed)
    reports.append(
        evaluate_defense(
            "column-norm rebalancing",
            defended_victim,
            rebalanced_accelerator,
            dataset.test_inputs,
            dataset.test_targets,
            attack_strength=STRENGTH,
            random_state=seed,
        )
    )
    return reports


def test_defense_ablation(single_round, benchmark):
    """Leak, attack advantage and cost for each countermeasure."""
    reports = single_round(run_defense_ablation)
    rows = [
        [r.name, r.clean_accuracy, r.leakage, r.attack_advantage, r.power_overhead]
        for r in reports
    ]
    print()
    print(
        format_table(
            ["defence", "clean acc", "leak corr", "attack advantage", "power overhead"],
            rows,
            title=f"Power side-channel countermeasures (single-pixel attack, strength {STRENGTH})",
        )
    )
    for report in reports:
        benchmark.extra_info[f"{report.name}/leakage"] = round(report.leakage, 3)
        benchmark.extra_info[f"{report.name}/advantage"] = round(report.attack_advantage, 3)

    baseline, balanced, noise, rebalanced = reports
    # The undefended crossbar leaks (almost) perfectly.
    assert baseline.leakage > 0.99
    # The hardware and measurement defences suppress the leak itself.
    for defended in (balanced, noise):
        assert abs(defended.leakage) < 0.5
    # Rebalancing still reveals which columns are used, but it removes most of
    # the attacker's advantage (what is leaked is no longer informative).
    assert rebalanced.attack_advantage < baseline.attack_advantage / 2
    # The functional accuracy of inference-time defences is untouched.
    assert noise.clean_accuracy == baseline.clean_accuracy
