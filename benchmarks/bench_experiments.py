"""Benchmark the unified experiment pipeline: registry sweep, serial vs pool.

Runs every registered experiment through :func:`run_experiments` at ``smoke``
scale on one paper scenario, once serially and once on a
``ParallelRunner(mode="process")`` pool, asserts the results are
bit-identical, and records both wall times (plus the identity check) into
``BENCH_engine.json`` under ``bench_experiments`` so
``scripts/check_bench_regression.py`` can gate on them across PRs.

The ``bench``-scale figure pipelines keep their own dedicated benchmarks
(``bench_table1`` .. ``bench_figure5``); this one times the *dispatch layer*
shared by all of them.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.experiments import ParallelRunner, list_experiments, run_experiments

SCENARIOS = ("paper/mnist-softmax",)


def _run_all(runner=None):
    return run_experiments(None, "smoke", runner=runner, scenarios=SCENARIOS, base_seed=0)


def _results_identical(a, b) -> bool:
    """Strict bit-identity: same experiments, same run counts, same payloads.

    Length and key-set mismatches count as divergence — a pool bug that drops
    a job or renames an output must fail the gate, not truncate out of the
    comparison.
    """
    if set(a) != set(b):
        return False
    for name in a:
        if len(a[name].sweep) != len(b[name].sweep):
            return False
        for run_a, run_b in zip(a[name].sweep, b[name].sweep):
            if run_a.metrics != run_b.metrics:
                return False
            if set(run_a.arrays) != set(run_b.arrays):
                return False
            for key in run_a.arrays:
                if not np.array_equal(run_a.arrays[key], run_b.arrays[key]):
                    return False
    return True


def test_experiments_registry_sweep(single_round, benchmark):
    """Full registry sweep at smoke scale: serial vs process pool, identical."""
    start = time.perf_counter()
    serial = single_round(_run_all)
    serial_s = time.perf_counter() - start

    runner = ParallelRunner(mode="process")
    start = time.perf_counter()
    parallel = _run_all(runner)
    parallel_s = time.perf_counter() - start

    identical = _results_identical(serial, parallel)
    total_jobs = sum(len(result.sweep) for result in serial.values())
    # Pool economics for the regression record: with chunked submission the
    # per-job overhead is (pool wall time minus the perfectly-parallel ideal)
    # spread over the jobs — the quantity the chunking fix drives down.
    n_workers = runner.resolve_workers(total_jobs)
    per_job_overhead_s = max(0.0, parallel_s - serial_s / n_workers) / max(
        1, total_jobs
    )
    bench_engine.record_timings(
        "bench_experiments",
        {
            "experiments": sorted(serial),
            "n_jobs": total_jobs,
            "serial_s": serial_s,
            "process_s": parallel_s,
            "n_workers": n_workers,
            "chunksize": runner.chunksize(total_jobs),
            "per_job_overhead_s": per_job_overhead_s,
            "results_identical": identical,
        },
    )
    benchmark.extra_info["n_jobs"] = total_jobs
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["process_s"] = round(parallel_s, 2)
    benchmark.extra_info["per_job_overhead_ms"] = round(per_job_overhead_s * 1e3, 2)

    assert set(serial) == set(list_experiments())
    assert identical, "process-pool results diverged from the serial path"
