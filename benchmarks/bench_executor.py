"""Benchmark the distributed work-queue executor: serial vs queue identity.

Runs the ``sweep-adc-bits`` experiment at ``smoke`` scale once on the
:class:`~repro.executor.SerialExecutor` reference and once on a
:class:`~repro.executor.QueueExecutor` with two local worker subprocesses,
asserts the results are bit-identical, and records wall times + coordinator
stats into ``BENCH_engine.json`` under ``bench_executor`` so
``scripts/check_bench_regression.py`` can gate on them across PRs
(``--min-executor-speedup``, default 0.15 — a single-core floor: the queue
pays worker interpreter spawn and framing overhead, which dominates a
smoke-scale grid, so on one core it trails serial; multicore hosts with
larger grids measure above 1).
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_engine

from repro.executor import QueueExecutor
from repro.experiments import get_experiment

EXPERIMENT_NAME = "sweep-adc-bits"
N_WORKERS = 2
CHUNK_SIZE = 2


def _run(executor=None):
    return get_experiment(EXPERIMENT_NAME).run(
        "smoke", executor=executor, base_seed=0
    )


def _results_identical(a, b) -> bool:
    """Strict bit-identity over metrics and arrays of every per-job result."""
    if len(a.sweep) != len(b.sweep):
        return False
    for run_a, run_b in zip(a.sweep, b.sweep):
        if run_a.name != run_b.name or run_a.metrics != run_b.metrics:
            return False
        if set(run_a.arrays) != set(run_b.arrays):
            return False
        for key in run_a.arrays:
            if not np.array_equal(run_a.arrays[key], run_b.arrays[key]):
                return False
    return True


def test_queue_executor_identity_and_overhead(single_round, benchmark):
    """Smoke-scale grid: queue with 2 workers bit-identical to serial."""
    start = time.perf_counter()
    serial = single_round(_run)
    serial_s = time.perf_counter() - start

    executor = QueueExecutor(
        n_workers=N_WORKERS, chunk_size=CHUNK_SIZE, spawn_timeout_s=600.0
    )
    start = time.perf_counter()
    queued = _run(executor)
    queue_s = time.perf_counter() - start

    identical = _results_identical(serial, queued)
    stats = executor.stats
    bench_engine.record_timings(
        "bench_executor",
        {
            "experiment": EXPERIMENT_NAME,
            "n_jobs": len(serial.sweep),
            "n_workers": N_WORKERS,
            "chunk_size": CHUNK_SIZE,
            "serial_s": serial_s,
            "queue_s": queue_s,
            "speedup": serial_s / queue_s if queue_s > 0 else 0.0,
            "results_identical": identical,
            "stats": stats,
        },
    )
    benchmark.extra_info["n_jobs"] = len(serial.sweep)
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["queue_s"] = round(queue_s, 2)
    benchmark.extra_info["chunks_executed"] = stats.get("chunks_executed")

    assert identical, "queue-executor results diverged from the serial path"
    assert stats.get("chunks_executed") == stats.get("chunks_total")
    assert stats.get("workers_spawned") == N_WORKERS
