"""Benchmark regenerating Table I (sensitivity / 1-norm correlations)."""

from repro.experiments.table1 import format_table1, run_table1


def test_table1(single_round, benchmark):
    """Table I: correlation between loss sensitivity and weight-column 1-norms."""
    result = single_round(run_table1, "bench")
    print()
    print(format_table1(result))

    for row in result.rows:
        key = f"{row['dataset']}/{row['activation']}"
        benchmark.extra_info[f"{key}/mean_corr_test"] = round(
            float(row["mean_correlation_test"]), 3
        )
        benchmark.extra_info[f"{key}/corr_of_mean_test"] = round(
            float(row["correlation_of_mean_test"]), 3
        )

    # The paper's qualitative claims must hold in the regenerated table.
    for row in result.rows:
        assert row["correlation_of_mean_test"] > row["mean_correlation_test"]
        assert row["correlation_of_mean_test"] > 0.5
