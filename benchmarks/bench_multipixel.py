"""Ablation benchmark: multi-pixel power-guided attacks (Section III remark).

The paper notes that attacking the top-N 1-norm pixels with guessed
perturbation directions becomes less effective as N grows (the probability of
guessing every direction right is (1/2)^N).  This benchmark regenerates that
comparison against the oracle-direction upper bound.
"""

import numpy as np

from repro.attacks.evaluation import accuracy_under_attack
from repro.attacks.multi_pixel import MultiPixelAttack
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.datasets import load_mnist_like
from repro.experiments.reporting import format_series
from repro.nn.trainer import train_single_layer
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber

PIXEL_COUNTS = (1, 2, 4, 8)
STRENGTH = 6.0


def run_multipixel_ablation(seed=0):
    dataset = load_mnist_like(n_train=2000, n_test=400, random_state=seed)
    network, _ = train_single_layer(dataset, output="softmax", epochs=25, random_state=seed)
    accelerator = CrossbarAccelerator(network, random_state=seed)
    prober = ColumnNormProber(PowerMeasurement(accelerator), dataset.n_features)
    norms = prober.probe_all().column_sums

    curves = {"random-direction": [], "oracle-direction": []}
    for n_pixels in PIXEL_COUNTS:
        random_dir = MultiPixelAttack(norms, n_pixels=n_pixels, direction="random", random_state=seed)
        oracle_dir = MultiPixelAttack(norms, n_pixels=n_pixels, direction="oracle", network=network)
        curves["random-direction"].append(
            accuracy_under_attack(network, random_dir, dataset.test_inputs, dataset.test_targets, STRENGTH)
        )
        curves["oracle-direction"].append(
            accuracy_under_attack(network, oracle_dir, dataset.test_inputs, dataset.test_targets, STRENGTH)
        )
    return curves


def test_multipixel_ablation(single_round, benchmark):
    """Attack efficacy vs number of attacked pixels, guessed vs oracle directions."""
    curves = single_round(run_multipixel_ablation)
    print()
    print(
        format_series(
            "n_pixels",
            list(PIXEL_COUNTS),
            curves,
            title=f"Multi-pixel power-guided attack (strength {STRENGTH}, MNIST-like)",
        )
    )
    for name, curve in curves.items():
        benchmark.extra_info[f"{name}/n=1"] = round(float(curve[0]), 3)
        benchmark.extra_info[f"{name}/n=8"] = round(float(curve[-1]), 3)

    random_curve = np.asarray(curves["random-direction"])
    oracle_curve = np.asarray(curves["oracle-direction"])
    # The oracle-direction attack only gets stronger with more pixels, while
    # the guess penalty keeps the random-direction attack well behind it.
    assert oracle_curve[-1] <= oracle_curve[0] + 1e-9
    gap_small, gap_large = random_curve[0] - oracle_curve[0], random_curve[-1] - oracle_curve[-1]
    assert gap_large >= gap_small - 0.02
