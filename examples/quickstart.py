"""Quickstart: train a victim, map it to an NVM crossbar, and leak its weights' 1-norms.

This walks through the paper's core observation:

1. train the paper's single-layer network on the MNIST-like dataset,
2. deploy it on a simulated NVM crossbar accelerator (ideal, min-power mapping),
3. probe the accelerator's power rail with basis-vector inputs,
4. show that the measured currents reveal the weight matrix's column 1-norms,
   which in turn predict where the model is most sensitive,
5. reproduce the paper's Table I through the registry entry point
   (``run_experiments``) — the same API that drives every experiment
   pipeline, serially or on a process pool.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import sensitivity_norm_correlations
from repro.crossbar import CrossbarAccelerator
from repro.datasets import load_mnist_like
from repro.experiments import get_experiment, run_experiments
from repro.nn.gradients import weight_column_norms
from repro.nn.trainer import train_single_layer
from repro.sidechannel import ColumnNormProber, PowerMeasurement


def main() -> None:
    print("1) Generating the MNIST-like dataset and training the victim ...")
    dataset = load_mnist_like(n_train=2000, n_test=500, random_state=0)
    network, trainer = train_single_layer(dataset, output="softmax", epochs=25, random_state=0)
    _, test_accuracy = trainer.evaluate(dataset.test_inputs, dataset.test_targets)
    print(f"   victim test accuracy: {test_accuracy:.3f}")

    print("2) Deploying the victim on a simulated NVM crossbar accelerator ...")
    accelerator = CrossbarAccelerator(network, random_state=0)
    fidelity = accelerator.fidelity(dataset.test_inputs[:100])
    print(f"   hardware-vs-software output difference (ideal crossbar): {fidelity:.2e}")

    print("3) Probing the power side channel (one query per input column) ...")
    measurement = PowerMeasurement(accelerator, noise_std=0.01, random_state=1)
    prober = ColumnNormProber(measurement, dataset.n_features)
    probe = prober.probe_all()
    print(f"   queries spent: {probe.queries_used}")

    print("4) What did the attacker learn?")
    true_norms = weight_column_norms(network.weights)
    leak_correlation = np.corrcoef(probe.column_sums, true_norms)[0, 1]
    print(f"   correlation between leaked currents and true column 1-norms: {leak_correlation:.4f}")

    summary = sensitivity_norm_correlations(
        network, dataset.test_inputs, dataset.test_targets, column_norms=probe.column_sums
    )
    print(
        "   correlation of the leaked 1-norms with the model's mean input "
        f"sensitivity: {summary.correlation_of_mean:.3f}"
    )
    print(
        "   => the power rail alone tells the attacker which pixels the "
        "network cares about most (the paper's Table I / Figure 3 result)."
    )

    print("5) Reproducing Table I through the unified experiment registry ...")
    results = run_experiments(
        ["table1"], "smoke", scenarios=["paper/mnist-softmax"], base_seed=0
    )
    print(get_experiment("table1").format_result(results["table1"]))
    print(
        "   (run any subset at any scale — python -m repro.experiments --help; "
        "pass ParallelRunner(mode='process') to use every core.)"
    )


if __name__ == "__main__":
    main()
