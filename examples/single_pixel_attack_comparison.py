"""Power-guided single-pixel attacks (the paper's Figure 4 scenario).

The attacker cannot see the network's outputs — only its power consumption.
Probing the crossbar reveals the weight-column 1-norms; perturbing the pixel
with the largest 1-norm degrades accuracy far more than a random pixel,
approaching the white-box single-pixel FGSM bound.

Run with:  python examples/single_pixel_attack_comparison.py
"""

from repro.attacks import SinglePixelAttack, SinglePixelStrategy, accuracy_under_attack
from repro.crossbar import CrossbarAccelerator
from repro.datasets import load_mnist_like
from repro.experiments.reporting import format_series
from repro.nn.trainer import train_single_layer
from repro.sidechannel import ColumnNormProber, PowerMeasurement

ATTACK_STRENGTHS = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)


def main() -> None:
    dataset = load_mnist_like(n_train=2000, n_test=500, random_state=0)
    network, trainer = train_single_layer(dataset, output="softmax", epochs=25, random_state=0)
    _, clean_accuracy = trainer.evaluate(dataset.test_inputs, dataset.test_targets)
    print(f"victim clean test accuracy: {clean_accuracy:.3f}")

    # The attacker recovers the column 1-norms through the power side channel.
    accelerator = CrossbarAccelerator(network, random_state=0)
    prober = ColumnNormProber(PowerMeasurement(accelerator), dataset.n_features)
    probe = prober.probe_all()
    print(f"power probing used {probe.queries_used} queries\n")

    curves = {}
    for strategy in SinglePixelStrategy:
        attack = SinglePixelAttack(
            strategy,
            column_norms=probe.column_sums,
            network=network,  # only used by the white-box 'Worst' reference
            queries_used=probe.queries_used if strategy.needs_power_information else 0,
            random_state=0,
        )
        curves[strategy.paper_label] = [
            accuracy_under_attack(
                network, attack, dataset.test_inputs, dataset.test_targets, strength
            )
            for strength in ATTACK_STRENGTHS
        ]

    print(
        format_series(
            "strength",
            list(ATTACK_STRENGTHS),
            curves,
            title="Test accuracy vs single-pixel attack strength (MNIST-like, softmax victim)",
        )
    )
    print(
        "\nRP = random pixel, +/-/RD = power-guided (add / subtract / random sign), "
        "Worst = white-box single-pixel FGSM."
    )


if __name__ == "__main__":
    main()
