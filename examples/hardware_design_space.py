"""Hardware design-space exploration: which crossbars leak, and how much?

The paper analyses an ideal crossbar with the minimum-power conductance
mapping.  This example uses the simulator's non-ideality models to ask the
hardware designer's follow-up questions:

* How does the leak change with a balanced (constant-power) mapping?
* How much measurement noise can the attacker tolerate?
* What do realistic ReRAM/PCM device models (write noise, quantization,
  stuck devices) do to the leaked signal?

Run with:  python examples/hardware_design_space.py
"""

import numpy as np

from repro.crossbar import (
    PCM_DEVICE,
    RERAM_DEVICE,
    ConductanceMapping,
    CrossbarAccelerator,
    NonidealityConfig,
)
from repro.datasets import load_mnist_like
from repro.experiments.reporting import format_table
from repro.nn.gradients import weight_column_norms
from repro.nn.trainer import train_single_layer
from repro.sidechannel import ColumnNormProber, PowerMeasurement


def leak_correlation(accelerator, n_features, true_norms, noise_std=0.0, seed=0):
    """Correlation between power-probed column sums and the true 1-norms."""
    prober = ColumnNormProber(
        PowerMeasurement(accelerator, noise_std=noise_std, random_state=seed), n_features
    )
    leaked = prober.probe_all().column_sums
    if leaked.std() == 0:
        return 0.0
    return float(np.corrcoef(leaked, true_norms)[0, 1])


def main() -> None:
    dataset = load_mnist_like(n_train=1500, n_test=300, random_state=0)
    network, _ = train_single_layer(dataset, output="softmax", epochs=25, random_state=0)
    true_norms = weight_column_norms(network.weights)

    configurations = {
        "ideal, min-power mapping": dict(),
        "ideal, balanced mapping": dict(mapping=ConductanceMapping(scheme="balanced")),
        "ReRAM device (write noise + 64 levels)": dict(
            mapping=ConductanceMapping(device=RERAM_DEVICE)
        ),
        "PCM device (write noise + 32 levels)": dict(
            mapping=ConductanceMapping(device=PCM_DEVICE)
        ),
        "ideal + 5% stuck-off devices": dict(
            nonidealities=NonidealityConfig(stuck_at_off_fraction=0.05)
        ),
        "ideal + IR drop (wire R)": dict(
            nonidealities=NonidealityConfig(wire_resistance=0.05)
        ),
    }

    rows = []
    for label, kwargs in configurations.items():
        accelerator = CrossbarAccelerator(network, random_state=0, **kwargs)
        clean = leak_correlation(accelerator, dataset.n_features, true_norms)
        noisy = leak_correlation(accelerator, dataset.n_features, true_norms, noise_std=0.1, seed=1)
        fidelity = accelerator.fidelity(dataset.test_inputs[:100])
        rows.append([label, clean, noisy, fidelity])

    print(
        format_table(
            ["hardware configuration", "leak corr (clean)", "leak corr (10% meas. noise)", "output error"],
            rows,
            title="How much does each crossbar configuration leak about the weight 1-norms?",
            float_precision=3,
        )
    )
    print(
        "\nThe min-power mapping leaks the column 1-norms almost perfectly; the "
        "balanced mapping is an effective (but power-hungry) countermeasure, and "
        "realistic device non-idealities only mildly blur the side channel."
    )


if __name__ == "__main__":
    main()
