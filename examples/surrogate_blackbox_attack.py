"""Surrogate-based black-box attack with the power loss (the paper's Figure 5 scenario).

The attacker queries the victim with a limited number of inputs, recording the
observable outputs and the crossbar's power consumption, then trains a linear
surrogate with the paper's combined loss  L = L_out + lambda * L_power  (Eq. 9)
and transfers FGSM adversarial examples crafted on the surrogate back to the
victim.  The script compares lambda = 0 (no power information) against a
power-augmented surrogate across several query budgets.

Run with:  python examples/surrogate_blackbox_attack.py
"""

from repro.attacks import Oracle, SurrogateAttack, SurrogateConfig
from repro.datasets import load_mnist_like
from repro.experiments.reporting import format_table
from repro.nn.trainer import train_single_layer

QUERY_COUNTS = (50, 200, 500, 1000)
POWER_LOSS_WEIGHTS = (0.0, 0.01)
OUTPUT_MODE = "label"  # the attacker only sees the predicted class


def main() -> None:
    dataset = load_mnist_like(n_train=3000, n_test=500, random_state=0)
    victim, trainer = train_single_layer(dataset, output="linear", epochs=30, random_state=0)
    _, clean_accuracy = trainer.evaluate(dataset.test_inputs, dataset.test_targets)
    print(f"victim clean test accuracy: {clean_accuracy:.3f}")
    print(f"attacker observes: {OUTPUT_MODE} outputs + total crossbar current\n")

    rows = []
    for n_queries in QUERY_COUNTS:
        row = [n_queries]
        for lam in POWER_LOSS_WEIGHTS:
            oracle = Oracle(victim, output_mode=OUTPUT_MODE, expose_power=lam > 0, random_state=0)
            attack = SurrogateAttack(
                oracle,
                config=SurrogateConfig(power_loss_weight=lam, epochs=300),
                attack_strength=0.1,
                random_state=1,
            )
            result = attack.run(
                dataset.query_pool(n_queries, random_state=2),
                dataset.test_inputs,
                dataset.test_targets,
            )
            row.extend(
                [result.surrogate_test_accuracy, result.oracle_adversarial_accuracy]
            )
        rows.append(row)

    headers = ["queries"]
    for lam in POWER_LOSS_WEIGHTS:
        headers += [f"surr acc (λ={lam:g})", f"oracle adv acc (λ={lam:g})"]
    print(
        format_table(
            headers,
            rows,
            title="Surrogate fidelity and attack transfer vs query budget "
            "(lower adversarial accuracy = stronger attack)",
        )
    )
    print(
        "\nWith only label feedback, adding the power-consistency loss "
        "improves the surrogate at moderate-to-large query budgets and makes "
        "the transferred FGSM attack more damaging — the paper's MNIST finding."
    )


if __name__ == "__main__":
    main()
