"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in fully offline environments where pip's build
isolation (which downloads setuptools/wheel) is unavailable::

    pip install -e . --no-build-isolation
    # or, equivalently
    python setup.py develop
"""

from setuptools import setup

setup()
