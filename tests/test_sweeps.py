"""Tests for the scenario-sweep subsystem: specs, expansion, curves, registry.

The property-style sections run over *every* registered scenario preset
(including the ``sharded-*`` ones) rather than hand-picked examples, so a
new preset is automatically covered by the round-trip and expansion
invariants.
"""

import json
import pickle

import numpy as np
import pytest

from repro.crossbar.mapping import ShardingSpec
from repro.experiments import (
    PAPER_SCENARIOS,
    SCENARIOS,
    SWEEP_PRESET_GRIDS,
    SWEEPS,
    ExperimentResult,
    ParallelRunner,
    ScenarioSpec,
    SweepExperiment,
    SweepSpec,
    apply_knob,
    get_experiment,
    get_scenario,
    get_sweep,
    list_experiments,
    resolve_knob,
    resolve_scale,
    run_experiments,
    swept_field,
)
from repro.experiments.scenario import list_scenarios

BUILTIN_SWEEPS = (
    "sweep-adc-bits",
    "sweep-read-noise",
    "sweep-power-noise-defense",
    "sweep-shard-geometry",
)


class TestKnobResolution:
    def test_aliases_resolve_to_scenario_fields(self):
        assert resolve_knob("adc.bits") == "probe_adc_bits"
        assert resolve_knob("device.read_noise") == "device_read_noise"
        assert (
            resolve_knob("rail.read_noise")
            == "nonidealities.current_measurement_noise"
        )
        assert resolve_knob("defense.power_noise_std") == "defense_strength"
        assert resolve_knob("sharding.geometry") == "sharding"

    def test_direct_field_paths_pass_through(self):
        assert resolve_knob("measurement_noise") == "measurement_noise"
        assert resolve_knob("nonidealities.wire_resistance") == (
            "nonidealities.wire_resistance"
        )

    def test_swept_field_is_the_top_level_target(self):
        assert swept_field("adc.bits") == "probe_adc_bits"
        assert swept_field("device.read_noise") == "device_read_noise"
        assert swept_field("rail.read_noise") == "nonidealities"
        assert swept_field("sharding") == "sharding"

    def test_unknown_knob_rejected_with_listing(self):
        with pytest.raises(ValueError, match="unknown knob"):
            resolve_knob("warp.factor")

    def test_too_deep_path_rejected(self):
        with pytest.raises(ValueError, match="nests too deep"):
            resolve_knob("nonidealities.current_measurement_noise.std")

    def test_apply_knob_nested_override(self):
        base = get_scenario("paper/mnist-softmax")
        noisy = apply_knob(base, "rail.read_noise", 0.25)
        assert noisy.nonidealities.current_measurement_noise == 0.25
        # nested override preserves the rest of the nonideality config
        assert noisy.nonidealities.wire_resistance == base.nonidealities.wire_resistance

    def test_device_read_noise_overrides_device_physics(self):
        from repro.nn.layers import Dense
        from repro.nn.network import Sequential

        base = get_scenario("paper/mnist-softmax")
        noisy = apply_knob(base, "device.read_noise", 0.2)
        assert noisy.device_read_noise == 0.2
        network = Sequential([Dense(6, 3, random_state=0)])
        accelerator = noisy.build_accelerator(network, random_state=0)
        assert accelerator.tiles[0].array.device.read_noise == 0.2
        # the untouched base still maps onto the ideal noise-free device
        ideal = base.build_accelerator(network, random_state=0)
        assert ideal.tiles[0].array.device.read_noise == 0.0

    def test_apply_knob_non_dataclass_container_rejected(self):
        base = get_scenario("paper/mnist-softmax")
        with pytest.raises(ValueError, match="not a config object"):
            apply_knob(base, "dataset.size", 100)

    def test_apply_knob_nested_unknown_leaf(self):
        base = get_scenario("paper/mnist-softmax")
        with pytest.raises(ValueError, match="has no field"):
            apply_knob(base, "nonidealities.flux_capacitance", 1.21)

    def test_apply_knob_none_container_rejected(self):
        base = get_scenario("paper/mnist-softmax")  # sharding is None
        with pytest.raises(ValueError, match="is None"):
            apply_knob(base, "sharding.row_shards", 2)

    def test_apply_knob_revalidates(self):
        base = get_scenario("paper/mnist-softmax")
        with pytest.raises(ValueError):
            apply_knob(base, "adc.bits", 0)
        with pytest.raises(ValueError):
            apply_knob(base, "measurement_noise", -1.0)


class TestScenarioRoundTrips:
    """Property: every registered preset survives override + serialisation."""

    @pytest.mark.parametrize("name", list_scenarios())
    def test_to_dict_from_dict_round_trip(self, name):
        spec = SCENARIOS[name]
        payload = json.loads(json.dumps(spec.to_dict()))  # via real JSON text
        assert ScenarioSpec.from_dict(payload) == spec

    @pytest.mark.parametrize("name", list_scenarios())
    def test_override_round_trip(self, name):
        spec = SCENARIOS[name]
        assert spec.with_overrides() == spec
        bumped = spec.with_overrides(measurement_noise=spec.measurement_noise + 0.01)
        assert bumped != spec
        assert bumped.with_overrides(measurement_noise=spec.measurement_noise) == spec

    @pytest.mark.parametrize("name", list_scenarios())
    def test_pickle_round_trip(self, name):
        spec = SCENARIOS[name]
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_probe_adc_bits_validated(self):
        assert ScenarioSpec(name="x", probe_adc_bits=4).probe_adc_bits == 4
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", probe_adc_bits=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", probe_adc_bits=2.5)

    def test_probe_adc_bits_breaks_paper_ideal(self):
        base = get_scenario("paper/mnist-softmax")
        assert base.is_paper_ideal
        assert not base.with_overrides(probe_adc_bits=8).is_paper_ideal


class TestSweepSpec:
    @pytest.mark.parametrize("name", list_scenarios())
    def test_expansion_changes_exactly_the_swept_field(self, name):
        """Property: derived specs differ from the base only in the swept
        field (and the derived name/description)."""
        base = SCENARIOS[name]
        sweep = SweepSpec(
            name=f"test-{name}",
            base=base,
            knob="measurement_noise",
            values=(0.0, 0.01, 0.05),
        )
        derived = sweep.expand()
        assert len(derived) == 3
        target = swept_field(sweep.knob)
        from dataclasses import fields

        for value, spec in zip(sweep.values, derived):
            assert getattr(spec, target) == value
            for spec_field in fields(ScenarioSpec):
                if spec_field.name in (target, "name", "description"):
                    continue
                assert getattr(spec, spec_field.name) == getattr(
                    base, spec_field.name
                ), f"{spec_field.name} leaked into the {name} expansion"

    def test_derived_names_encode_knob_and_value(self):
        sweep = get_sweep("sweep-adc-bits")
        names = [spec.name for spec in sweep.expand()]
        assert names == [
            f"paper/mnist-softmax@adc.bits={label}"
            for label in ("1", "2", "4", "8", "none")
        ]

    def test_sharding_values_coerced_from_tuples(self):
        sweep = get_sweep("sweep-shard-geometry")
        assert sweep.values[0] is None
        assert all(
            isinstance(value, ShardingSpec) for value in sweep.values[1:]
        )
        derived = sweep.expand()
        assert derived[0].sharding is None
        assert derived[-1].sharding == ShardingSpec(4, 4, "tree")

    def test_validation(self):
        base = get_scenario("paper/mnist-softmax")
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(name="", base=base, knob="adc.bits", values=(1,))
        with pytest.raises(TypeError, match="ScenarioSpec"):
            SweepSpec(name="x", base="paper/mnist-softmax", knob="adc.bits", values=(1,))
        with pytest.raises(ValueError, match="at least one"):
            SweepSpec(name="x", base=base, knob="adc.bits", values=())
        with pytest.raises(ValueError, match="unknown knob"):
            SweepSpec(name="x", base=base, knob="warp.factor", values=(1,))
        # every grid point is validated eagerly
        with pytest.raises(ValueError):
            SweepSpec(name="x", base=base, knob="adc.bits", values=(8, -1))

    @pytest.mark.parametrize("name", BUILTIN_SWEEPS)
    def test_serialisation_round_trip(self, name):
        sweep = get_sweep(name)
        payload = json.loads(json.dumps(sweep.to_dict()))
        assert SweepSpec.from_dict(payload) == sweep

    @pytest.mark.parametrize("name", BUILTIN_SWEEPS)
    def test_pickle_round_trip(self, name):
        sweep = get_sweep(name)
        assert pickle.loads(pickle.dumps(sweep)) == sweep

    def test_rebased_keeps_knob_and_grid(self):
        sweep = get_sweep("sweep-read-noise").rebased("noisy-device")
        assert sweep.base == SCENARIOS["noisy-device"]
        assert sweep.knob == "device.read_noise"
        assert sweep.values == get_sweep("sweep-read-noise").values

    def test_unknown_sweep(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            get_sweep("sweep-warp-factor")


class TestSweepRegistration:
    def test_builtin_sweeps_registered(self):
        names = list_experiments()
        for name in BUILTIN_SWEEPS:
            assert name in names

    def test_sweeps_match_config_grids(self):
        from repro.experiments.config import TENANT_SWEEP_GRIDS

        # loading the builtin registry also registers the tenant sweeps
        list_experiments()
        assert set(SWEEP_PRESET_GRIDS) == set(BUILTIN_SWEEPS)
        assert set(SWEEPS) == set(BUILTIN_SWEEPS) | set(TENANT_SWEEP_GRIDS)

    def test_cli_list_shows_sweeps(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_SWEEPS:
            assert name in out

    def test_build_jobs_shape_and_params(self):
        scale = resolve_scale("smoke")
        experiment = get_experiment("sweep-adc-bits")
        sweep = get_sweep("sweep-adc-bits")
        jobs = experiment.build_jobs(scale, (sweep.base,), base_seed=0)
        assert len(jobs) == len(sweep.values) * scale.n_runs
        assert jobs[0].param("knob") == "adc.bits"
        assert jobs[0].param("base") == "paper/mnist-softmax"
        assert [job.param("value_index") for job in jobs[:: scale.n_runs]] == [
            0, 1, 2, 3, 4,
        ]

    def test_explicit_paper_scenarios_rebase_onto_all_four(self):
        """Regression: explicitly selecting the paper configurations must not
        be mistaken for the 'sweep your own base' default."""
        scale = resolve_scale("smoke")
        experiment = get_experiment("sweep-adc-bits")
        jobs = experiment.build_jobs(scale, PAPER_SCENARIOS, base_seed=0)
        sweep = get_sweep("sweep-adc-bits")
        assert len(jobs) == len(PAPER_SCENARIOS) * len(sweep.values) * scale.n_runs
        assert {job.param("base") for job in jobs} == {
            spec.name for spec in PAPER_SCENARIOS
        }

    def test_registering_conflicting_grid_under_builtin_name_rejected(self):
        """Regression: two different sweeps must not silently share a name."""
        from repro.experiments import register

        conflicting = SweepSpec(
            name="sweep-adc-bits",
            base=get_scenario("paper/mnist-softmax"),
            knob="adc.bits",
            values=(2, 6),
        )
        with pytest.raises(ValueError, match="already registered"):
            register(SweepExperiment(conflicting))
        # re-registering an equal sweep stays a benign no-op (module re-import)
        existing = get_experiment("sweep-adc-bits")
        same = SweepExperiment(get_sweep("sweep-adc-bits"))
        assert register(same) is existing

    def test_explicit_scenarios_rebase_the_sweep(self):
        scale = resolve_scale("smoke")
        experiment = get_experiment("sweep-read-noise")
        jobs = experiment.build_jobs(
            scale, (SCENARIOS["quantized-adc"],), base_seed=0
        )
        sweep = get_sweep("sweep-read-noise")
        assert len(jobs) == len(sweep.values) * scale.n_runs
        assert all(job.param("base") == "quantized-adc" for job in jobs)
        assert all(job.scenario.adc_bits == 6 for job in jobs)

    def test_jobs_are_picklable(self):
        scale = resolve_scale("smoke")
        for name in BUILTIN_SWEEPS:
            jobs = get_experiment(name).build_jobs(scale, PAPER_SCENARIOS, base_seed=0)
            restored = pickle.loads(pickle.dumps(jobs))
            assert [job.label for job in restored] == [job.label for job in jobs]


@pytest.fixture(scope="module")
def sweep_scale():
    """A trimmed smoke scale so the execution matrix stays quick."""
    return resolve_scale("smoke").with_overrides(
        n_train=200, n_test=60, n_runs=2, train_epochs=5
    )


def _assert_results_identical(a, b):
    assert len(a.sweep) == len(b.sweep)
    for run_a, run_b in zip(a.sweep, b.sweep):
        assert run_a.name == run_b.name
        assert run_a.metrics == run_b.metrics


@pytest.mark.sweeps
class TestSweepExecution:
    @pytest.fixture(scope="class")
    def adc_result(self, sweep_scale):
        return get_experiment("sweep-adc-bits").run(sweep_scale, base_seed=0)

    def test_leakage_curve_is_monotonicity_sane(self, adc_result):
        """Acceptance: leakage rises as the acquisition ADC gains bits."""
        entry = adc_result.summary["curves"][0]
        curve = np.asarray(entry["leakage_mean"], dtype=float)
        assert np.all(np.isfinite(curve))
        assert np.all(np.diff(curve) >= -0.05)
        assert curve[-1] - curve[0] >= 0.05
        assert curve[-1] > 0.99  # the ideal instrument sees the full leak

    def test_process_runner_bit_identical(self, adc_result, sweep_scale):
        parallel = get_experiment("sweep-adc-bits").run(
            sweep_scale,
            runner=ParallelRunner(mode="process", max_workers=2),
            base_seed=0,
        )
        _assert_results_identical(adc_result, parallel)
        assert parallel.summary == adc_result.summary

    def test_result_json_round_trip(self, adc_result):
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(adc_result.to_dict()))
        )
        assert restored.summary == adc_result.summary
        assert restored.scenarios == adc_result.scenarios
        assert len(restored.sweep) == len(adc_result.sweep)
        text = get_experiment("sweep-adc-bits").format_result(restored)
        assert "adc.bits" in text and "leakage" in text

    def test_read_noise_curve_decreases_with_noise(self, sweep_scale):
        result = get_experiment("sweep-read-noise").run(sweep_scale, base_seed=0)
        entry = result.summary["curves"][0]
        curve = entry["leakage_mean"]  # grid runs noisiest -> cleanest
        assert curve[-1] > curve[0]
        assert curve[-1] > 0.99

    def test_defense_strength_kills_advantage(self, sweep_scale):
        result = get_experiment("sweep-power-noise-defense").run(
            sweep_scale, base_seed=0
        )
        entry = result.summary["curves"][0]
        # strongest defence (first grid point) leaks far less than none (last)
        assert entry["leakage_mean"][0] < entry["leakage_mean"][-1] - 0.3
        assert entry["advantage_mean"][0] < entry["advantage_mean"][-1]

    def test_shard_geometry_recovers_leakage_under_wire_drop(self, sweep_scale):
        """Security-vs-geometry acceptance: under finite wire resistance the
        monolithic IR droop wrecks the attacker's acquisition fidelity, and
        finer shards (shorter wires) recover it monotonically."""
        result = get_experiment("sweep-shard-geometry").run(sweep_scale, base_seed=0)
        entry = result.summary["curves"][0]
        curve = np.asarray(entry["leakage_mean"], dtype=float)
        assert np.all(np.isfinite(curve))
        # monotone up to seed noise: no refinement step loses real fidelity
        assert np.all(np.diff(curve) >= -0.01)
        # recovery margin: the finest geometry leaks far more than monolithic
        assert curve[-1] - curve[0] >= 0.1

    def test_shard_geometry_per_rail_attack_curves(self, sweep_scale):
        """The geometry sweep also scores the per-shard rail attack: both
        extra curves are assembled, and on at least one sharded grid point
        the per-shard estimate strictly beats the whole-rail one."""
        result = get_experiment("sweep-shard-geometry").run(sweep_scale, base_seed=0)
        entry = result.summary["curves"][0]
        per_shard = np.asarray(
            entry["per_shard_leakage_correlation_mean"], dtype=float
        )
        whole_rail = np.asarray(
            entry["whole_rail_leakage_correlation_mean"], dtype=float
        )
        advantage = np.asarray(
            entry["per_shard_attack_advantage_mean"], dtype=float
        )
        assert per_shard.shape == whole_rail.shape == advantage.shape
        np.testing.assert_allclose(advantage, per_shard - whole_rail, atol=1e-12)
        # grid points 1.. are sharded; the rail attacker wins somewhere
        assert advantage[1:].max() > 0.0

    def test_ideal_base_sharding_is_leakage_invariant(self, sweep_scale):
        """With ideal wires sharding must not change the physics (PR 3
        claim, preserved): rebasing the geometry grid onto the paper-ideal
        scenario yields a flat curve and no per-rail advantage signal."""
        result = get_experiment("sweep-shard-geometry").run(
            sweep_scale, scenarios=["paper/mnist-softmax"], base_seed=0
        )
        entry = result.summary["curves"][0]
        np.testing.assert_allclose(
            entry["leakage_mean"], entry["leakage_mean"][0], atol=1e-9
        )
        np.testing.assert_allclose(
            entry["advantage_mean"], entry["advantage_mean"][0], atol=1e-9
        )
        # noiseless ideal instrument: per-shard and whole-rail coincide
        np.testing.assert_allclose(
            entry["per_shard_attack_advantage_mean"], 0.0, atol=1e-9
        )


class TestSweepRegressionGate:
    """CI-facing behaviour of the bench_sweeps gate in check_bench_regression."""

    @staticmethod
    def _load_script():
        import importlib.util
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression_for_sweep_tests",
            repo_root / "scripts" / "check_bench_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _passing_results():
        return {
            "engine": {
                "oracle_query": [{"batch_size": 16, "speedup": 2.5}],
                "array_ops_per_power_query_batch": 1,
            },
            "bench_sweeps": {
                "sweep": "sweep-adc-bits",
                "values": ["1", "2", "4", "8", "none"],
                "leakage_curve": [0.77, 0.85, 0.99, 1.0, 1.0],
                "monotone_ok": True,
                "serial_s": 1.0,
                "process_s": 0.6,
                "results_identical": True,
            },
        }

    def test_passing_payload(self):
        check = self._load_script()
        assert check.check_results(self._passing_results()) == []

    def test_identity_failure(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_sweeps"]["results_identical"] = False
        failures = check.check_results(results)
        assert any("bit-identical" in f for f in failures)

    def test_monotonicity_failure(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_sweeps"]["monotone_ok"] = False
        failures = check.check_results(results)
        assert any("monotonicity-sane" in f for f in failures)

    def test_missing_wall_time_and_curve(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_sweeps"]["serial_s"] = 0.0
        del results["bench_sweeps"]["leakage_curve"]
        failures = check.check_results(results)
        assert any("serial_s" in f for f in failures)
        assert any("no leakage curve" in f for f in failures)

    def test_section_optional(self):
        check = self._load_script()
        results = self._passing_results()
        del results["bench_sweeps"]
        assert check.check_results(results) == []

    def test_monotone_helper(self):
        import importlib.util
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "bench_sweeps_for_tests", repo_root / "benchmarks" / "bench_sweeps.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.monotone_ok([0.7, 0.85, 0.99, 1.0])
        assert module.monotone_ok([0.7, 0.69, 0.99, 1.0])  # within tolerance
        assert not module.monotone_ok([0.9, 0.5, 1.0])  # a real dip
        assert not module.monotone_ok([1.0, 1.0, 1.0])  # flat curve never rose
        assert not module.monotone_ok([0.5, float("nan"), 1.0])
        assert not module.monotone_ok([1.0])


@pytest.mark.experiments
@pytest.mark.sweeps
def test_registry_smoke_runs_every_experiment_including_sweeps(tmp_path):
    """Acceptance: the full registry — sweeps included — runs end to end."""
    results = run_experiments(None, "smoke", base_seed=0, output_dir=tmp_path)
    assert set(results) == set(list_experiments())
    for name in BUILTIN_SWEEPS:
        result = results[name]
        assert len(result.sweep) == len(get_sweep(name).values) * resolve_scale(
            "smoke"
        ).n_runs
        assert result.summary["curves"], f"{name} assembled no curves"
        assert (tmp_path / f"{name}_smoke.json").exists()
