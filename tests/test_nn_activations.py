"""Tests for repro.nn.activations, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.activations import (
    Identity,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)

ALL_ACTIVATIONS = [Identity(), ReLU(), Sigmoid(), Tanh(), Softmax()]


def numerical_jacobian_vector_product(activation, x, upstream, eps=1e-6):
    """Finite-difference J^T v for a single row input."""
    grad = np.zeros_like(x)
    for i in range(x.size):
        plus, minus = x.copy(), x.copy()
        plus[i] += eps
        minus[i] -= eps
        f_plus = activation.forward(plus[np.newaxis, :])[0]
        f_minus = activation.forward(minus[np.newaxis, :])[0]
        grad[i] = np.sum(upstream * (f_plus - f_minus)) / (2 * eps)
    return grad


class TestForwardValues:
    def test_identity_passthrough(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Identity().forward(x), x)

    def test_relu_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_sigmoid_range_and_midpoint(self, rng):
        x = rng.normal(scale=5, size=(2, 6))
        out = Sigmoid().forward(x)
        assert np.all(out > 0) and np.all(out < 1)
        assert Sigmoid().forward(np.array([[0.0]]))[0, 0] == pytest.approx(0.5)

    def test_sigmoid_numerically_stable_for_large_inputs(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_tanh_matches_numpy(self, rng):
        x = rng.normal(size=(2, 5))
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        out = Softmax().forward(x)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4))
        assert np.all(out > 0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        np.testing.assert_allclose(
            Softmax().forward(x), Softmax().forward(x + 100.0), atol=1e-12
        )

    def test_softmax_stable_for_large_logits(self):
        out = Softmax().forward(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(1.0)


class TestBackwardGradients:
    @pytest.mark.parametrize("activation", ALL_ACTIVATIONS, ids=lambda a: a.name)
    def test_backward_matches_numerical_jacobian(self, activation, rng):
        x = rng.normal(size=6)
        upstream = rng.normal(size=6)
        output = activation.forward(x[np.newaxis, :])
        analytic = activation.backward(upstream[np.newaxis, :], output)[0]
        numerical = numerical_jacobian_vector_product(activation, x, upstream)
        np.testing.assert_allclose(analytic, numerical, atol=1e-4)

    def test_relu_gradient_zero_below_zero(self):
        act = ReLU()
        out = act.forward(np.array([[-1.0, 2.0]]))
        grad = act.backward(np.array([[1.0, 1.0]]), out)
        np.testing.assert_allclose(grad, [[0.0, 1.0]])

    @pytest.mark.parametrize(
        "activation", [Identity(), ReLU(), Sigmoid(), Tanh()], ids=lambda a: a.name
    )
    def test_derivative_non_negative(self, activation, rng):
        """The paper assumes f' >= 0 for common activations (Section III)."""
        x = rng.normal(size=(5, 5))
        assert np.all(activation.derivative(x) >= 0)

    def test_softmax_derivative_diagonal(self, rng):
        x = rng.normal(size=(3, 4))
        softmax = Softmax()
        y = softmax.forward(x)
        np.testing.assert_allclose(softmax.derivative(x), y * (1 - y))


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("linear"), Identity)
        assert isinstance(get_activation("identity"), Identity)
        assert isinstance(get_activation("SOFTMAX"), Softmax)

    def test_lookup_passthrough_instance(self):
        act = Sigmoid()
        assert get_activation(act) is act

    def test_lookup_by_class(self):
        assert isinstance(get_activation(Tanh), Tanh)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_activation("swish-9000")
