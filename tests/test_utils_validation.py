"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_in_range,
    check_matrix,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_same_length,
    check_vector,
)


class TestCheckArray:
    def test_coerces_lists(self):
        result = check_array([1, 2, 3], "x")
        assert isinstance(result, np.ndarray)
        assert result.dtype == float

    def test_enforces_ndim(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1, 2, 3], "x", ndim=2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_array([1.0, np.inf], "x")

    def test_rejects_empty_when_disallowed(self):
        with pytest.raises(ValueError, match="empty"):
            check_array([], "x", allow_empty=False)

    def test_allows_empty_by_default(self):
        assert check_array([], "x").size == 0


class TestCheckVectorMatrix:
    def test_vector_length(self):
        check_vector([1, 2, 3], "v", length=3)
        with pytest.raises(ValueError):
            check_vector([1, 2, 3], "v", length=4)

    def test_vector_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_vector([[1, 2], [3, 4]], "v")

    def test_matrix_shape_template(self):
        matrix = [[1, 2, 3], [4, 5, 6]]
        check_matrix(matrix, "m", shape=(2, 3))
        check_matrix(matrix, "m", shape=(None, 3))
        check_matrix(matrix, "m", shape=(2, None))
        with pytest.raises(ValueError):
            check_matrix(matrix, "m", shape=(3, 3))
        with pytest.raises(ValueError):
            check_matrix(matrix, "m", shape=(2, 2))

    def test_matrix_rejects_vector(self):
        with pytest.raises(ValueError):
            check_matrix([1, 2, 3], "m")


class TestScalarChecks:
    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_positive(self):
        assert check_positive(2.5, "x") == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")

    def test_in_range(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", 0, 1)

    def test_same_length(self):
        check_same_length([1, 2], [3, 4], "a", "b")
        with pytest.raises(ValueError):
            check_same_length([1], [3, 4], "a", "b")

    def test_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "n")
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_non_negative_int(self):
        assert check_non_negative_int(0, "n") == 0
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "n")
        with pytest.raises(TypeError):
            check_non_negative_int(1.0, "n")

    def test_numpy_integers_accepted(self):
        assert check_positive_int(np.int64(4), "n") == 4
