"""Tests for repro.utils.serialization."""

import numpy as np
import pytest

from repro.utils.serialization import load_json, load_npz, save_json, save_npz


class TestJson:
    def test_roundtrip_plain(self, tmp_path):
        payload = {"a": 1, "b": [1, 2, 3], "c": {"nested": True}}
        path = save_json(payload, tmp_path / "out.json")
        assert load_json(path) == payload

    def test_numpy_values_serialised(self, tmp_path):
        payload = {"scalar": np.float64(1.5), "array": np.arange(3), "flag": np.bool_(True)}
        path = save_json(payload, tmp_path / "out.json")
        loaded = load_json(path)
        assert loaded["scalar"] == 1.5
        assert loaded["array"] == [0, 1, 2]
        assert loaded["flag"] is True

    def test_creates_parent_directories(self, tmp_path):
        path = save_json({"x": 1}, tmp_path / "deep" / "dir" / "out.json")
        assert path.exists()


class TestNpz:
    def test_roundtrip(self, tmp_path):
        arrays = {"weights": np.random.default_rng(0).normal(size=(4, 5)), "bias": np.zeros(4)}
        path = save_npz(arrays, tmp_path / "model.npz")
        loaded = load_npz(path)
        assert set(loaded) == {"weights", "bias"}
        np.testing.assert_allclose(loaded["weights"], arrays["weights"])

    def test_lists_are_coerced(self, tmp_path):
        path = save_npz({"values": [1.0, 2.0]}, tmp_path / "a.npz")
        loaded = load_npz(path)
        np.testing.assert_allclose(loaded["values"], [1.0, 2.0])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_npz(tmp_path / "missing.npz")
