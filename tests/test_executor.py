"""Tests for the Executor API and the distributed work-queue backend.

The load-bearing guarantee is *bit-identity*: every registered experiment
must produce an :class:`~repro.experiments.base.ExperimentResult` that is
bitwise identical under the serial reference, the process pool, and the TCP
work queue — including when a worker is killed mid-grid, and when a run is
resumed from a truncated journal.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.executor import (
    EXECUTOR_NAMES,
    CancelToken,
    ExecutionCancelled,
    Executor,
    JournalMismatchError,
    JournalWriter,
    PoolExecutor,
    QueueExecutor,
    SerialExecutor,
    chunk_jobs,
    coerce_executor,
    grid_fingerprint,
    read_journal,
    resolve_executor,
)
from repro.executor.journal import result_from_wire, result_to_wire
from repro.experiments import ExperimentScale, ParallelRunner
from repro.experiments.registry import get_experiment, list_experiments, run_experiments
from repro.experiments.scenario import ScenarioSpec, resolve_scenarios
from repro.experiments.sweep import SweepSpec
from repro.utils.results import RunResult

pytestmark = pytest.mark.executor

#: Generous ceiling for queue runs in tests — the grids below finish in
#: seconds; hitting this means the coordinator wedged, not that CI is slow.
QUEUE_TIMEOUT_S = 300.0


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale(
        name="tiny",
        n_train=120,
        n_test=40,
        n_runs=2,
        train_epochs=2,
        query_counts=(8,),
        attack_strengths=(0.0, 4.0),
        power_loss_weights=(0.0, 0.01),
        surrogate_epochs=4,
    )


def _scenarios_for(name):
    """One cheap scenario selection per experiment (sweeps expand it)."""
    return ["paper/mnist-linear"]


def assert_results_identical(result_a, result_b):
    """Bitwise comparison of two ExperimentResults (metrics + arrays)."""
    assert len(result_a.sweep) == len(result_b.sweep)
    for run_a, run_b in zip(result_a.sweep, result_b.sweep):
        assert run_a.name == run_b.name
        assert run_a.metrics == run_b.metrics
        assert set(run_a.arrays) == set(run_b.arrays)
        for key in run_a.arrays:
            assert run_a.arrays[key].dtype == run_b.arrays[key].dtype
            assert np.array_equal(run_a.arrays[key], run_b.arrays[key])
        assert run_a.metadata == run_b.metadata


def _figure3_jobs(scale, scenarios=("paper/mnist-linear", "noisy-device")):
    experiment = get_experiment("figure3")
    return experiment, experiment.build_jobs(
        scale, resolve_scenarios(list(scenarios)), base_seed=0
    )


# ----------------------------------------------------------------- chunking


class TestChunking:
    def test_chunks_cover_grid_and_keys_are_deterministic(self, tiny_scale):
        _, jobs = _figure3_jobs(tiny_scale)
        chunks_a = chunk_jobs(jobs, 1)
        chunks_b = chunk_jobs(list(jobs), 1)
        assert [c.key for c in chunks_a] == [c.key for c in chunks_b]
        assert [(c.start, c.stop) for c in chunks_a] == [(0, 1), (1, 2)]
        assert all(c.n_jobs == 1 for c in chunks_a)
        assert len({c.key for c in chunks_a}) == len(chunks_a)

    def test_chunk_keys_depend_on_job_identity(self, tiny_scale):
        experiment, jobs = _figure3_jobs(tiny_scale)
        other = experiment.build_jobs(
            tiny_scale,
            resolve_scenarios(["paper/mnist-linear", "noisy-device"]),
            base_seed=7,
        )
        keys = [c.key for c in chunk_jobs(jobs, 1)]
        other_keys = [c.key for c in chunk_jobs(other, 1)]
        assert keys != other_keys

    def test_fingerprint_depends_on_geometry(self, tiny_scale):
        _, jobs = _figure3_jobs(tiny_scale)
        assert grid_fingerprint(jobs, 1) != grid_fingerprint(jobs, 2)
        assert grid_fingerprint(jobs, 1) == grid_fingerprint(list(jobs), 1)

    def test_chunk_size_validated(self, tiny_scale):
        _, jobs = _figure3_jobs(tiny_scale)
        with pytest.raises(ValueError, match="chunk_size"):
            chunk_jobs(jobs, 0)


# ------------------------------------------------------------------ journal


def _sample_result(seed=0):
    result = RunResult(
        name=f"sample/{seed}",
        metadata={"shape": (3, 2), "np_scalar": np.float64(0.5), "seed": seed},
    )
    result.add_metric("accuracy", 0.25 + seed)
    rng = np.random.default_rng(seed)
    result.add_array("float32_map", rng.normal(size=(3, 2)).astype(np.float32))
    result.add_array("int_counts", np.arange(4, dtype=np.int64) + seed)
    return result


class TestJournal:
    def test_wire_form_is_lossless(self):
        original = _sample_result()
        restored = result_from_wire(json.loads(json.dumps(result_to_wire(original))))
        assert restored.name == original.name
        assert restored.metrics == original.metrics
        for key in original.arrays:
            assert restored.arrays[key].dtype == original.arrays[key].dtype
            assert np.array_equal(restored.arrays[key], original.arrays[key])
        # tuples and numpy scalars survive (a plain JSON round-trip would not)
        assert restored.metadata == original.metadata
        assert isinstance(restored.metadata["shape"], tuple)

    def _write_journal(self, path, jobs, chunk_size=1):
        chunks = chunk_jobs(jobs, chunk_size)
        fingerprint = grid_fingerprint(jobs, chunk_size)
        with JournalWriter(
            path,
            fingerprint=fingerprint,
            total_jobs=len(jobs),
            chunk_size=chunk_size,
            chunk_keys=[c.key for c in chunks],
        ) as writer:
            for index, chunk in enumerate(chunks):
                writer.record_chunk(chunk, [_sample_result(index)])
        return chunks, fingerprint

    def test_writer_reader_roundtrip(self, tmp_path, tiny_scale):
        _, jobs = _figure3_jobs(tiny_scale)
        path = tmp_path / "run.jsonl"
        chunks, fingerprint = self._write_journal(path, jobs)
        state = read_journal(path, expect_fingerprint=fingerprint)
        assert state.n_completed == len(chunks)
        assert state.chunk_keys == [c.key for c in chunks]
        restored = state.completed[chunks[1].key][0]
        assert restored.metrics == _sample_result(1).metrics

    def test_truncated_trailing_line_is_tolerated(self, tmp_path, tiny_scale):
        _, jobs = _figure3_jobs(tiny_scale)
        path = tmp_path / "run.jsonl"
        chunks, fingerprint = self._write_journal(path, jobs)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2] + [lines[2][:40]]) + "\n")
        state = read_journal(path, expect_fingerprint=fingerprint)
        assert state.n_completed == 1
        assert chunks[0].key in state.completed

    def test_corruption_before_trailing_line_raises(self, tmp_path, tiny_scale):
        _, jobs = _figure3_jobs(tiny_scale)
        path = tmp_path / "run.jsonl"
        self._write_journal(path, jobs)
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[1][:40], lines[2]]) + "\n")
        with pytest.raises(JournalMismatchError, match="corrupt"):
            read_journal(path)

    def test_fingerprint_mismatch_raises(self, tmp_path, tiny_scale):
        _, jobs = _figure3_jobs(tiny_scale)
        path = tmp_path / "run.jsonl"
        self._write_journal(path, jobs)
        with pytest.raises(JournalMismatchError, match="fingerprint"):
            read_journal(path, expect_fingerprint="0" * 64)

    def test_empty_journal_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(JournalMismatchError, match="empty"):
            read_journal(path)


# -------------------------------------------------- resolution / deprecation


class TestResolveAndCoerce:
    def test_names_resolve_to_executors(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        for name in ("process", "thread", "pool"):
            executor = resolve_executor(name)
            assert isinstance(executor, PoolExecutor)
        assert isinstance(resolve_executor("queue", n_workers=0), QueueExecutor)
        assert set(EXECUTOR_NAMES) == {"serial", "process", "thread", "pool", "queue"}

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("mapreduce")

    def test_instance_passthrough_rejects_options(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor
        with pytest.raises(ValueError, match="existing"):
            resolve_executor(executor, max_workers=2)

    def test_coerce_rejects_both(self):
        with pytest.raises(ValueError, match="not both"):
            coerce_executor(SerialExecutor(), ParallelRunner(mode="serial"), owner="x()")

    def test_coerce_runner_warns_and_wraps(self):
        runner = ParallelRunner(mode="serial")
        with pytest.warns(DeprecationWarning, match="runner= is deprecated"):
            executor = coerce_executor(None, runner, owner="x()")
        assert isinstance(executor, PoolExecutor)
        assert executor.runner is runner

    def test_coerce_runner_silent_for_legacy_wrappers(self, recwarn):
        executor = coerce_executor(
            None, ParallelRunner(mode="serial"), owner="x()", warn=False
        )
        assert isinstance(executor, PoolExecutor)
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestSerialExecutor:
    def test_progress_events_and_order(self, tiny_scale):
        experiment, jobs = _figure3_jobs(tiny_scale)
        events = []
        results = SerialExecutor().submit_jobs(
            jobs, run_job=experiment.run_job, on_progress=events.append
        )
        assert len(results) == len(jobs)
        assert [e.kind for e in events] == ["start", "job", "job", "done"]
        assert events[-1].completed == events[-1].total == len(jobs)

    def test_cancel_raises(self, tiny_scale):
        experiment, jobs = _figure3_jobs(tiny_scale)
        token = CancelToken()
        token.cancel()
        with pytest.raises(ExecutionCancelled):
            SerialExecutor().submit_jobs(jobs, run_job=experiment.run_job, cancel=token)
        with pytest.raises(ExecutionCancelled):
            PoolExecutor(runner=ParallelRunner(mode="serial")).submit_jobs(
                jobs, run_job=experiment.run_job, cancel=token
            )


# ----------------------------------------------------- backend equivalence


class TestBackendEquivalence:
    """serial == pool == queue, bit for bit, for every registered experiment."""

    @pytest.mark.parametrize("name", sorted(list_experiments()))
    def test_queue_with_injected_kill_matches_serial(self, name, tiny_scale):
        """Every registered experiment (including the sweeps) survives a
        worker killed mid-grid with bitwise-identical results."""
        experiment = get_experiment(name)
        scenarios = _scenarios_for(name)
        serial = experiment.run(tiny_scale, scenarios=scenarios)

        executor = QueueExecutor(
            n_workers=2,
            chunk_size=1,
            worker_args=[["--fail-after-jobs", "1"], []],
            spawn_timeout_s=QUEUE_TIMEOUT_S,
        )
        distributed = experiment.run(tiny_scale, scenarios=scenarios, executor=executor)

        assert_results_identical(serial, distributed)
        stats = executor.stats
        assert stats["chunks_executed"] + stats["chunks_resumed"] == stats["chunks_total"]
        assert stats["workers_spawned"] == 2

    def test_pool_matches_serial(self, tiny_scale):
        experiment = get_experiment("table1")
        scenarios = ["paper/mnist-linear", "noisy-device"]
        serial = experiment.run(tiny_scale, scenarios=scenarios)
        pooled = experiment.run(tiny_scale, scenarios=scenarios, executor="process")
        assert_results_identical(serial, pooled)

    def test_empty_grid_returns_empty(self):
        assert QueueExecutor(n_workers=0).submit_jobs([]) == []


# ------------------------------------------------- fault injection / resume


class TestFaultInjectionAndResume:
    def test_worker_kill_mid_chunk_requeues_lease(self, tiny_scale, tmp_path):
        """A worker dying mid-chunk loses its lease, the chunk re-runs on a
        healthy worker, and nothing is double-counted."""
        experiment = get_experiment("sweep-adc-bits")
        scenarios = ["paper/mnist-linear"]
        serial = experiment.run(tiny_scale, scenarios=scenarios)

        journal = tmp_path / "run.jsonl"
        executor = QueueExecutor(
            n_workers=2,
            chunk_size=3,  # --fail-after-jobs 2 dies mid-chunk
            worker_args=[["--fail-after-jobs", "2"], []],
            journal=journal,
            spawn_timeout_s=QUEUE_TIMEOUT_S,
        )
        distributed = experiment.run(tiny_scale, scenarios=scenarios, executor=executor)

        assert_results_identical(serial, distributed)
        stats = executor.stats
        assert stats["chunks_requeued"] >= 1
        assert stats["workers_respawned"] >= 1
        assert stats["chunks_executed"] == stats["chunks_total"]
        # ... and the journal is complete despite the mid-run death
        state = read_journal(journal)
        assert state.n_completed == stats["chunks_total"]

    def test_resume_from_truncated_journal_skips_completed(self, tiny_scale, tmp_path):
        experiment = get_experiment("sweep-adc-bits")
        scenarios = ["paper/mnist-linear"]
        serial = experiment.run(tiny_scale, scenarios=scenarios)

        full = tmp_path / "full.jsonl"
        first = QueueExecutor(
            n_workers=2, chunk_size=3, journal=full, spawn_timeout_s=QUEUE_TIMEOUT_S
        )
        experiment.run(tiny_scale, scenarios=scenarios, executor=first)
        n_chunks = first.stats["chunks_total"]
        assert n_chunks >= 3

        # Simulate a coordinator crash: keep the header, two complete chunk
        # records, and one torn trailing line.
        lines = full.read_text().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:3] + [lines[3][:50]]) + "\n")

        resumed_journal = tmp_path / "resumed.jsonl"
        second = QueueExecutor(
            n_workers=2,
            chunk_size=3,
            journal=resumed_journal,
            resume=truncated,
            spawn_timeout_s=QUEUE_TIMEOUT_S,
        )
        resumed = experiment.run(tiny_scale, scenarios=scenarios, executor=second)

        assert_results_identical(serial, resumed)
        stats = second.stats
        assert stats["chunks_resumed"] == 2
        assert stats["chunks_executed"] == n_chunks - 2
        # the new journal is self-contained: a further resume needs only it
        assert read_journal(resumed_journal).n_completed == n_chunks

    def test_fully_resumed_run_spawns_no_workers(self, tiny_scale, tmp_path):
        experiment, jobs = _figure3_jobs(tiny_scale)
        journal = tmp_path / "run.jsonl"
        first = QueueExecutor(
            n_workers=2, chunk_size=1, journal=journal, spawn_timeout_s=QUEUE_TIMEOUT_S
        )
        baseline = first.submit_jobs(jobs, run_job=experiment.run_job)
        second = QueueExecutor(
            n_workers=2, chunk_size=1, resume=journal, spawn_timeout_s=QUEUE_TIMEOUT_S
        )
        replayed = second.submit_jobs(jobs, run_job=experiment.run_job)
        assert second.stats["chunks_resumed"] == second.stats["chunks_total"]
        assert second.stats["workers_spawned"] == 0
        for fresh, cached in zip(baseline, replayed):
            assert fresh.metrics == cached.metrics
            for key in fresh.arrays:
                assert np.array_equal(fresh.arrays[key], cached.arrays[key])

    def test_resume_rejects_foreign_journal(self, tiny_scale, tmp_path):
        experiment, jobs = _figure3_jobs(tiny_scale)
        journal = tmp_path / "run.jsonl"
        first = QueueExecutor(
            n_workers=2, chunk_size=1, journal=journal, spawn_timeout_s=QUEUE_TIMEOUT_S
        )
        first.submit_jobs(jobs, run_job=experiment.run_job)
        other_jobs = experiment.build_jobs(
            tiny_scale,
            resolve_scenarios(["paper/mnist-linear", "noisy-device"]),
            base_seed=123,
        )
        second = QueueExecutor(n_workers=0, chunk_size=1, resume=journal)
        with pytest.raises(JournalMismatchError, match="fingerprint"):
            second.submit_jobs(other_jobs, run_job=experiment.run_job)

    def test_job_failure_is_terminal_with_remote_traceback(self, tiny_scale):
        import dataclasses

        _, jobs = _figure3_jobs(tiny_scale)
        # An unregistered experiment name makes the registry trampoline blow
        # up *on the worker*; the traceback must surface at the coordinator.
        broken = list(jobs) + [dataclasses.replace(jobs[0], experiment="no-such")]

        from repro.executor.errors import JobFailedError

        executor = QueueExecutor(
            n_workers=1, chunk_size=1, spawn_timeout_s=QUEUE_TIMEOUT_S
        )
        with pytest.raises(JobFailedError, match="no-such"):
            executor.submit_jobs(broken, run_job=None)


# ------------------------------------------------------------ authentication


class TestAuth:
    """No pickle frame crosses the wire before the mutual HMAC handshake."""

    def _handshake(self, server_key, client_key):
        from repro.executor.protocol import client_authenticate, server_authenticate

        server_sock, client_sock = socket.socketpair()
        server_sock.settimeout(5.0)
        client_sock.settimeout(5.0)
        outcome = {}

        def serve():
            try:
                server_authenticate(server_sock, server_key)
                outcome["server"] = "ok"
            except Exception as exc:
                outcome["server"] = exc
            finally:
                server_sock.close()  # unblocks a client the server rejected

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            client_authenticate(client_sock, client_key)
            outcome["client"] = "ok"
        except Exception as exc:
            outcome["client"] = exc
        thread.join(timeout=5.0)
        client_sock.close()
        return outcome

    def test_matching_keys_pass_both_directions(self):
        outcome = self._handshake("shared-secret", "shared-secret")
        assert outcome == {"server": "ok", "client": "ok"}

    def test_wrong_key_is_rejected(self):
        from repro.executor import QueueAuthError

        outcome = self._handshake("right-key", "wrong-key")
        assert isinstance(outcome["server"], QueueAuthError)
        assert outcome["client"] != "ok"

    def test_worker_rejects_coordinator_that_cannot_prove_key(self):
        """A rogue coordinator that replays the challenge format but cannot
        produce the key-derived proof must not receive obedience."""
        from repro.executor import QueueAuthError
        from repro.executor.protocol import AUTH_MAGIC, PROTOCOL_VERSION

        rogue_sock, worker_sock = socket.socketpair()
        rogue_sock.settimeout(5.0)
        worker_sock.settimeout(5.0)

        def rogue():
            try:
                rogue_sock.sendall(AUTH_MAGIC + bytes([PROTOCOL_VERSION]) + b"\x00" * 32)
                rogue_sock.recv(1024)  # the worker's answer, useless without the key
                rogue_sock.sendall(b"\x00" * 32)  # forged proof
            except OSError:
                pass
            finally:
                rogue_sock.close()

        thread = threading.Thread(target=rogue)
        thread.start()
        try:
            from repro.executor.protocol import client_authenticate

            with pytest.raises(QueueAuthError, match="prove knowledge"):
                client_authenticate(worker_sock, "the-real-key")
        finally:
            thread.join(timeout=5.0)
            worker_sock.close()

    def test_non_loopback_bind_requires_explicit_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_AUTH", raising=False)
        with pytest.raises(ValueError, match="auth key"):
            QueueExecutor(n_workers=0, host="0.0.0.0")
        with pytest.warns(RuntimeWarning, match="non-loopback"):
            QueueExecutor(n_workers=0, host="0.0.0.0", auth_key="explicit-key")

    def test_loopback_bind_generates_ephemeral_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_AUTH", raising=False)
        first = QueueExecutor(n_workers=0)
        second = QueueExecutor(n_workers=0)
        assert first.auth_key and second.auth_key
        assert first.auth_key != second.auth_key

    def test_worker_without_key_exits_immediately(self, monkeypatch):
        from repro.executor.worker import EXIT_AUTH_FAILED, run_worker

        monkeypatch.delenv("REPRO_QUEUE_AUTH", raising=False)
        code = run_worker("127.0.0.1", 1, max_connect_attempts=1)
        assert code == EXIT_AUTH_FAILED


# ------------------------------------------- multi-experiment journal scoping


class TestMultiExperimentJournals:
    def test_run_experiments_scopes_journal_per_experiment(self, tiny_scale, tmp_path):
        """One --journal/--resume path shared by several experiments must
        derive per-experiment files instead of truncating the first
        experiment's journal and aborting the second with a fingerprint
        mismatch."""
        journal = tmp_path / "run.jsonl"
        executor = QueueExecutor(
            n_workers=2, chunk_size=2, journal=journal, spawn_timeout_s=QUEUE_TIMEOUT_S
        )
        run_experiments(
            ["figure3", "table1"],
            tiny_scale,
            executor=executor,
            scenarios=["paper/mnist-linear"],
        )
        assert (tmp_path / "run.figure3.jsonl").exists()
        assert (tmp_path / "run.table1.jsonl").exists()
        assert not journal.exists()
        # the executor's own paths are restored after the run
        assert executor.journal == journal
        assert executor.resume is None

        # resuming through the same base path replays each experiment's own
        # derived journal: nothing re-runs
        resumed = QueueExecutor(
            n_workers=2,
            chunk_size=2,
            journal=journal,
            resume=journal,
            spawn_timeout_s=QUEUE_TIMEOUT_S,
        )
        run_experiments(
            ["figure3", "table1"],
            tiny_scale,
            executor=resumed,
            scenarios=["paper/mnist-linear"],
        )
        stats = resumed.stats  # stats of the last experiment's grid
        assert stats["chunks_resumed"] == stats["chunks_total"]
        assert stats["chunks_executed"] == 0
        assert stats["workers_spawned"] == 0


# -------------------------------------------------------------- worker CLI


class TestWorkerCLI:
    def test_parse_address(self):
        from repro.executor.cli import parse_address

        assert parse_address("example.org:7070") == ("example.org", 7070)
        assert parse_address(":7070") == ("0.0.0.0", 7070)
        with pytest.raises(Exception):
            parse_address("no-port")

    def test_worker_gives_up_without_coordinator(self):
        from repro.executor.worker import EXIT_NO_COORDINATOR, run_worker

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = run_worker(
            "127.0.0.1", free_port, auth_key="test-key", max_connect_attempts=1
        )
        assert code == EXIT_NO_COORDINATOR

    def test_experiments_cli_exposes_executor_flags(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["figure3", "--executor", "queue", "--workers", "3", "--chunk-size", "2"]
        )
        assert args.executor == "queue"
        assert args.workers == 3
        assert args.chunk_size == 2

    def test_experiments_cli_mode_is_deprecated_alias(self):
        from repro.experiments.cli import _build_executor, build_parser

        args = build_parser().parse_args(["figure3", "--mode", "process"])
        with pytest.warns(DeprecationWarning, match="--mode is deprecated"):
            executor = _build_executor(args)
        assert isinstance(executor, PoolExecutor)

        both = build_parser().parse_args(
            ["figure3", "--executor", "serial", "--mode", "process"]
        )
        with pytest.raises(SystemExit, match="not both"):
            _build_executor(both)


# ------------------------------------------------ strict config validation


class TestStrictFromDict:
    def test_scenario_spec_rejects_unknown_keys(self):
        from repro.experiments.scenario import get_scenario

        payload = get_scenario("paper/mnist-linear").to_dict()
        assert ScenarioSpec.from_dict(dict(payload)).name == "paper/mnist-linear"
        payload["read_nosie"] = 0.1
        with pytest.raises(ValueError, match="unknown ScenarioSpec fields.*read_nosie"):
            ScenarioSpec.from_dict(payload)

    def test_experiment_scale_round_trips_and_rejects_unknown_keys(self, tiny_scale):
        payload = tiny_scale.to_dict()
        restored = ExperimentScale.from_dict(payload)
        assert restored == tiny_scale
        assert isinstance(restored.query_counts, tuple)
        payload["n_trian"] = 5
        with pytest.raises(ValueError, match="unknown ExperimentScale fields.*n_trian"):
            ExperimentScale.from_dict(payload)

    def test_sweep_spec_rejects_unknown_keys(self):
        from repro.experiments.sweep import get_sweep

        payload = get_sweep("sweep-adc-bits").to_dict()
        assert SweepSpec.from_dict(dict(payload)).name == payload["name"]
        payload["knbo"] = "adc.bits"
        with pytest.raises(ValueError, match="unknown SweepSpec fields.*knbo"):
            SweepSpec.from_dict(payload)


# -------------------------------------------------------- legacy wrappers


class TestLegacyWrappers:
    def test_run_wrappers_warn_and_adapt(self, tiny_scale):
        from repro.experiments import run_table1

        with pytest.warns(DeprecationWarning, match="run_table1.*deprecated"):
            legacy = run_table1(tiny_scale, scenarios=["paper/mnist-linear"])
        assert legacy.scale_name == "tiny"
        assert legacy.rows and legacy.rows[0]["dataset"] == "mnist-like"

    def test_format_wrappers_warn(self, tiny_scale):
        import warnings

        from repro.experiments import format_figure3, run_figure3

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_figure3(tiny_scale, scenarios=["paper/mnist-linear"])
        with pytest.warns(DeprecationWarning, match="format_figure3.*deprecated"):
            text = format_figure3(legacy)
        assert "Figure 3 reproduction" in text

    def test_runner_kwarg_still_works_with_warning(self, tiny_scale):
        experiment = get_experiment("figure3")
        serial = experiment.run(tiny_scale, scenarios=["paper/mnist-linear"])
        with pytest.warns(DeprecationWarning, match="runner= is deprecated"):
            via_runner = experiment.run(
                tiny_scale,
                scenarios=["paper/mnist-linear"],
                runner=ParallelRunner(mode="serial"),
            )
        assert_results_identical(serial, via_runner)

    def test_run_accepts_executor_instances_and_names(self, tiny_scale):
        experiment = get_experiment("figure3")
        serial = experiment.run(
            tiny_scale, scenarios=["paper/mnist-linear"], executor=SerialExecutor()
        )
        named = experiment.run(
            tiny_scale, scenarios=["paper/mnist-linear"], executor="serial"
        )
        assert_results_identical(serial, named)
