"""Multi-tile sharding: spec validation, bit-identity, power accounting.

The equivalence matrix checks the tentpole guarantee: for ideal devices a
sharded placement computes the *same arithmetic* as the single-tile one.
Bitwise assertions run on exactly-representable (dyadic) weights and inputs,
where no float rounding occurs anywhere in the pipeline and every reduction
order is therefore exact — any bit difference would be a real structural
divergence.  Trained victims with arbitrary float weights are checked to
float-reduction precision (1e-10), since a partial-sum reduction legitimately
reassociates additions.
"""

import dataclasses
import importlib.util
import json
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.attacks.oracle import Oracle
from repro.crossbar import (
    CrossbarAccelerator,
    CrossbarTile,
    NonPicklableShardError,
    ShardProgram,
    ShardedTileGroup,
    ShardingSpec,
    build_tile,
    reduce_partial_sums,
    run_shard,
)
from repro.crossbar.devices import IDEAL_DEVICE
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig
from repro.crossbar.power import layer_rail_grid, parse_tile_label
from repro.experiments.runner import ParallelRunner
from repro.experiments.scenario import SCENARIOS, ScenarioSpec, get_scenario
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.sidechannel import PerShardProber
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber

pytestmark = pytest.mark.sharding

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The equivalence test matrix: >= 3 geometries, including both pure splits,
#: a grid, and non-divisible shapes (7 rows / 13+1 columns split unevenly).
GEOMETRIES = [
    ShardingSpec.rows(3),
    ShardingSpec.columns(4),
    ShardingSpec.grid(2, 2),
    ShardingSpec.grid(3, 2),
    ShardingSpec.grid(2, 3, reduction="tree"),
]


def dyadic_network(rng, n_inputs=13, n_outputs=7, activation="softmax"):
    """A single-layer victim whose weights/bias are exactly representable."""
    layer = Dense(n_inputs, n_outputs, activation=activation, use_bias=True, random_state=0)
    weights = rng.integers(-8, 9, size=(n_outputs, n_inputs)) / 16.0
    bias = rng.integers(-4, 5, size=n_outputs) / 8.0
    layer.set_weights(weights, bias=bias)
    return Sequential([layer])


def dyadic_inputs(rng, n, n_inputs=13):
    return rng.integers(0, 16, size=(n, n_inputs)) / 16.0


class TestShardingSpec:
    def test_defaults_are_trivial(self):
        spec = ShardingSpec()
        assert spec.is_trivial and spec.n_shards == 1 and spec.strategy == "none"

    @pytest.mark.parametrize(
        "spec, strategy, n_shards",
        [
            (ShardingSpec.rows(3), "rows", 3),
            (ShardingSpec.columns(4), "columns", 4),
            (ShardingSpec.grid(2, 3), "grid", 6),
        ],
    )
    def test_constructors(self, spec, strategy, n_shards):
        assert spec.strategy == strategy
        assert spec.n_shards == n_shards
        assert not spec.is_trivial

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            ShardingSpec(row_shards=0)
        with pytest.raises(ValueError):
            ShardingSpec(col_shards=-1)

    def test_invalid_reduction_rejected(self):
        with pytest.raises(ValueError):
            ShardingSpec(reduction="pairwise-ish")

    def test_shard_sections_non_divisible(self):
        rows, cols = ShardingSpec.grid(3, 4).shard_sections(7, 13)
        assert [len(r) for r in rows] == [3, 2, 2]
        assert [len(c) for c in cols] == [4, 3, 3, 3]
        assert np.concatenate(rows).tolist() == list(range(7))
        assert np.concatenate(cols).tolist() == list(range(13))

    def test_more_shards_than_elements_rejected(self):
        with pytest.raises(ValueError):
            ShardingSpec.rows(8).shard_sections(7, 13)
        with pytest.raises(ValueError):
            ShardingSpec.columns(14).shard_sections(7, 13)

    def test_dict_round_trip(self):
        spec = ShardingSpec.grid(2, 3, reduction="tree")
        assert ShardingSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="bogus"):
            ShardingSpec.from_dict({"row_shards": 2, "bogus": 1})

    def test_column_sections_partition_physical_columns(self):
        sections = ShardingSpec(1, 3).column_sections(14)
        assert [len(s) for s in sections] == [5, 5, 4]
        assert np.concatenate(sections).tolist() == list(range(14))
        with pytest.raises(ValueError):
            ShardingSpec(1, 15).column_sections(14)


class TestReducePartialSums:
    def test_sequential_and_tree_agree_to_precision(self, rng):
        partials = [rng.normal(size=(4, 5)) for _ in range(7)]
        seq = reduce_partial_sums(partials, "sequential")
        tree = reduce_partial_sums(partials, "tree")
        np.testing.assert_allclose(seq, tree, atol=1e-12)
        np.testing.assert_allclose(seq, np.sum(partials, axis=0), atol=1e-12)

    def test_single_partial_passes_through(self, rng):
        partial = rng.normal(size=(3,))
        assert reduce_partial_sums([partial], "tree") is partial

    def test_empty_and_bad_order_rejected(self):
        with pytest.raises(ValueError):
            reduce_partial_sums([])
        with pytest.raises(ValueError):
            reduce_partial_sums([np.zeros(2)], "bogus")


class TestBitIdentity:
    """Sharded vs single-tile: bitwise on exact arithmetic, 1e-10 otherwise."""

    @pytest.mark.parametrize("spec", GEOMETRIES, ids=lambda s: f"{s.row_shards}x{s.col_shards}-{s.reduction}")
    def test_exact_arithmetic_is_bit_identical(self, spec, rng):
        network = dyadic_network(rng)
        inputs = dyadic_inputs(rng, 9)
        single = CrossbarAccelerator(network, random_state=0)
        sharded = CrossbarAccelerator(network, sharding=spec, random_state=0)

        out_single, report_single = single.forward_with_power(inputs)
        out_sharded, report_sharded = sharded.forward_with_power(inputs)
        np.testing.assert_array_equal(out_sharded, out_single)
        np.testing.assert_array_equal(
            report_sharded.total_current, report_single.total_current
        )
        np.testing.assert_array_equal(sharded.forward(inputs), single.forward(inputs))
        np.testing.assert_array_equal(
            sharded.total_current(inputs), single.total_current(inputs)
        )

    @pytest.mark.parametrize("spec", GEOMETRIES, ids=lambda s: f"{s.row_shards}x{s.col_shards}-{s.reduction}")
    def test_trained_weights_match_to_reduction_precision(self, spec, rng):
        layer = Dense(13, 7, activation="softmax", use_bias=True, random_state=0)
        layer.set_weights(rng.normal(size=(7, 13)), bias=rng.normal(size=7))
        network = Sequential([layer])
        inputs = rng.uniform(0, 1, size=(9, 13))
        single = CrossbarAccelerator(network, random_state=0)
        sharded = CrossbarAccelerator(network, sharding=spec, random_state=0)

        np.testing.assert_allclose(sharded.forward(inputs), single.forward(inputs), atol=1e-10)
        np.testing.assert_allclose(
            sharded.total_current(inputs), single.total_current(inputs), rtol=1e-10
        )
        np.testing.assert_array_equal(
            sharded.predict_labels(inputs), single.predict_labels(inputs)
        )

    def test_column_conductance_sums_reassembled(self, rng):
        layer = Dense(13, 7, activation="linear", use_bias=True, random_state=0)
        single = CrossbarTile(layer, random_state=0)
        group = ShardedTileGroup(layer, ShardingSpec.grid(3, 2), random_state=0)
        # Same seed => same programming pass => identical devices, so the
        # reassembled column sums are bitwise equal (pure row-sum splits).
        assert group.column_conductance_sums.shape == (13,)
        np.testing.assert_allclose(
            group.column_conductance_sums, single.column_conductance_sums, rtol=1e-12
        )

    def test_probing_attack_unaffected_by_sharding(self, rng):
        """The paper's column-norm probe sees the same leak on sharded hardware."""
        layer = Dense(8, 5, activation="linear", random_state=0)
        network = Sequential([layer])
        single = CrossbarAccelerator(network, random_state=0)
        sharded = CrossbarAccelerator(network, sharding=ShardingSpec.grid(2, 2), random_state=0)
        def probe(acc):
            return ColumnNormProber(
                PowerMeasurement(acc), 8, measure_baseline=True
            ).probe_all()

        np.testing.assert_allclose(
            probe(sharded).column_sums, probe(single).column_sums, rtol=1e-10
        )


class TestShardedPowerAccounting:
    def test_per_tile_report_has_one_column_per_shard(self, rng):
        network = dyadic_network(rng)
        spec = ShardingSpec.grid(2, 3)
        accelerator = CrossbarAccelerator(network, sharding=spec, random_state=0)
        inputs = dyadic_inputs(rng, 5)
        report = accelerator.power_trace(inputs)
        assert report.per_tile_current.shape == (5, 6)
        assert report.tile_labels == (
            "layer0/r0c0", "layer0/r0c1", "layer0/r0c2",
            "layer0/r1c0", "layer0/r1c1", "layer0/r1c2",
        )
        np.testing.assert_allclose(
            report.per_tile_current.sum(axis=1), report.total_current, rtol=1e-12
        )

    def test_current_for_label_and_layer_prefix(self, rng):
        network = dyadic_network(rng)
        accelerator = CrossbarAccelerator(
            network, sharding=ShardingSpec.columns(2), random_state=0
        )
        report = accelerator.power_trace(dyadic_inputs(rng, 4))
        shard0 = report.current_for("layer0/r0c0")
        shard1 = report.current_for("layer0/r0c1")
        np.testing.assert_allclose(shard0 + shard1, report.current_for("layer0"))
        with pytest.raises(KeyError):
            report.current_for("layer9")

    def test_unsharded_labels_and_report_unchanged(self, rng):
        network = Sequential(
            [Dense(10, 6, activation="relu", random_state=0), Dense(6, 3, random_state=1)]
        )
        accelerator = CrossbarAccelerator(network, random_state=0)
        report = accelerator.power_trace(rng.uniform(0, 1, size=(4, 10)))
        assert report.per_tile_current.shape == (4, 2)
        assert report.tile_labels == ("layer0", "layer1")
        np.testing.assert_allclose(report.current_for("layer1"), report.per_tile_current[:, 1])

    def test_read_noise_per_shard_accounting(self, rng):
        """Under read noise every shard draws its own realization, and the
        reported total is exactly the reduction of the per-shard columns."""
        layer = Dense(12, 6, activation="linear", random_state=0)
        network = Sequential([layer])
        mapping = ConductanceMapping(device=IDEAL_DEVICE.with_noise(read_noise=0.05))
        spec = ShardingSpec.grid(2, 2)
        accelerator = CrossbarAccelerator(
            network, mapping=mapping, sharding=spec, random_state=0
        )
        inputs = rng.uniform(0, 1, size=(5, 12))
        group = accelerator.tiles[0]
        before = group.n_array_realizations
        report_a = accelerator.power_trace(inputs)
        report_b = accelerator.power_trace(inputs)
        # one fresh realization per shard per traversal
        assert group.n_array_realizations == before + 2 * spec.n_shards
        assert not np.array_equal(report_a.per_tile_current, report_b.per_tile_current)
        for report in (report_a, report_b):
            columns = [report.per_tile_current[:, k] for k in range(spec.n_shards)]
            np.testing.assert_array_equal(
                reduce_partial_sums(columns, spec.reduction), report.total_current
            )

    def test_measurement_noise_applied_per_shard_rail(self, rng):
        layer = Dense(12, 6, activation="linear", random_state=0)
        network = Sequential([layer])
        noisy = NonidealityConfig(current_measurement_noise=0.05)
        accelerator = CrossbarAccelerator(
            network,
            nonidealities=noisy,
            sharding=ShardingSpec.columns(3),
            random_state=0,
        )
        inputs = rng.uniform(0, 1, size=(6, 12))
        a = accelerator.total_current(inputs)
        b = accelerator.total_current(inputs)
        assert not np.array_equal(a, b)  # independent per-rail noise draws

    def test_operation_counters_and_reset(self, rng):
        network = dyadic_network(rng)
        accelerator = CrossbarAccelerator(
            network, sharding=ShardingSpec.grid(2, 2), random_state=0
        )
        accelerator.reset_operation_counters()
        accelerator.forward_with_power(dyadic_inputs(rng, 3))
        # fused path: every shard traversed exactly once per batch
        assert accelerator.n_array_operations == 4
        accelerator.reset_operation_counters()
        assert accelerator.n_array_operations == 0


class TestShardRunners:
    def test_thread_runner_bit_identical_to_serial(self, rng):
        layer = Dense(13, 7, activation="softmax", use_bias=True, random_state=0)
        layer.set_weights(rng.normal(size=(7, 13)), bias=rng.normal(size=7))
        network = Sequential([layer])
        inputs = rng.uniform(0, 1, size=(8, 13))
        serial = CrossbarAccelerator(
            network, sharding=ShardingSpec.grid(2, 2), random_state=0
        )
        threaded = CrossbarAccelerator(
            network,
            sharding=ShardingSpec.grid(2, 2),
            shard_runner=ParallelRunner(mode="thread", max_workers=4),
            random_state=0,
        )
        out_serial, report_serial = serial.forward_with_power(inputs)
        out_threaded, report_threaded = threaded.forward_with_power(inputs)
        np.testing.assert_array_equal(out_threaded, out_serial)
        np.testing.assert_array_equal(
            report_threaded.per_tile_current, report_serial.per_tile_current
        )

    #: Serial/thread/process must agree bitwise for every registered preset
    #: geometry *and* non-divisible shapes (the shard-program determinism
    #: contract: ideal devices make the kernels pure functions).
    PRESET_AND_UNEVEN = [
        ShardingSpec.rows(2),       # sharded-rows-2
        ShardingSpec.columns(4),    # sharded-columns-4
        ShardingSpec.grid(2, 2),    # sharded-2x2
        ShardingSpec.grid(4, 4, reduction="tree"),  # sharded-4x4-tree
        ShardingSpec.grid(3, 2),    # non-divisible rows
        ShardingSpec.grid(2, 3, reduction="tree"),  # non-divisible cols, tree
    ]

    @pytest.mark.parametrize(
        "spec",
        PRESET_AND_UNEVEN,
        ids=lambda s: f"{s.row_shards}x{s.col_shards}-{s.reduction}",
    )
    def test_process_runner_bit_identical_to_serial(self, spec, rng):
        """Process-mode shard execution is now legal — and bit-identical."""
        network = dyadic_network(rng)
        inputs = dyadic_inputs(rng, 6)
        serial = CrossbarAccelerator(network, sharding=spec, random_state=0)
        process = CrossbarAccelerator(
            network,
            sharding=spec,
            shard_runner=ParallelRunner(mode="process", max_workers=2),
            random_state=0,
        )
        out_serial, report_serial = serial.forward_with_power(inputs)
        out_process, report_process = process.forward_with_power(inputs)
        np.testing.assert_array_equal(out_process, out_serial)
        np.testing.assert_array_equal(
            report_process.per_tile_current, report_serial.per_tile_current
        )
        np.testing.assert_array_equal(
            process.total_current(inputs), serial.total_current(inputs)
        )

    def test_process_runner_counts_offloaded_operations(self, rng):
        network = dyadic_network(rng)
        accelerator = CrossbarAccelerator(
            network,
            sharding=ShardingSpec.grid(2, 2),
            shard_runner=ParallelRunner(mode="process", max_workers=2),
            random_state=0,
        )
        accelerator.reset_operation_counters()
        accelerator.forward_with_power(dyadic_inputs(rng, 3))
        assert accelerator.n_array_operations == 4

    def test_non_picklable_backend_rejected_with_typed_error(self):
        """A device-resident backend fails fast with NonPicklableShardError."""
        layer = Dense(8, 4, random_state=0)
        tile = CrossbarTile(layer, random_state=0)
        program = dataclasses.replace(
            tile.shard_programs()[0], backend="cupy"
        )
        with pytest.raises(NonPicklableShardError, match="cupy"):
            program.require_picklable()
        assert issubclass(NonPicklableShardError, TypeError)

    def test_capability_checked_at_group_construction(self, monkeypatch):
        """The constructor probes the shard program, not the runner mode."""
        layer = Dense(8, 4, random_state=0)
        reference = CrossbarTile(layer, random_state=0).shard_programs()[0]
        monkeypatch.setattr(
            ShardedTileGroup,
            "shard_programs",
            lambda self: [dataclasses.replace(reference, backend="cupy")],
        )
        with pytest.raises(NonPicklableShardError, match="cupy"):
            ShardedTileGroup(
                layer,
                ShardingSpec.grid(2, 2),
                runner=ParallelRunner(mode="process"),
                random_state=0,
            )


class TestShardPrograms:
    """The frozen shard snapshot: construction, pickling, kernel parity."""

    def test_pickle_round_trip_runs_identically(self, rng):
        layer = Dense(13, 7, activation="linear", use_bias=True, random_state=0)
        layer.set_weights(rng.normal(size=(7, 13)), bias=rng.normal(size=7))
        tile = CrossbarTile(layer, random_state=0)
        program = tile.shard_programs()[0]
        program.require_picklable()  # must not raise for host numpy state
        restored = pickle.loads(pickle.dumps(program))
        voltages = rng.uniform(0, 1, size=(5, 14))  # physical width incl. bias
        out_a, cur_a = run_shard(program, voltages)
        out_b, cur_b = run_shard(restored, voltages)
        np.testing.assert_array_equal(out_a, out_b)
        np.testing.assert_array_equal(cur_a, cur_b)

    def test_program_matches_host_array(self, rng):
        layer = Dense(12, 6, activation="linear", random_state=0)
        tile = CrossbarTile(layer, random_state=0)
        program = tile.shard_programs()[0]
        voltages = rng.uniform(0, 1, size=(4, 12))
        out_kernel, cur_kernel = run_shard(program, voltages)
        np.testing.assert_array_equal(out_kernel, tile.array.matvec(voltages))
        np.testing.assert_array_equal(cur_kernel, tile.array.total_current(voltages))

    def test_conductances_are_frozen_copies(self, rng):
        layer = Dense(8, 4, random_state=0)
        tile = CrossbarTile(layer, random_state=0)
        program = tile.shard_programs()[0]
        assert not program.g_plus.flags.writeable
        assert not program.g_minus.flags.writeable
        with pytest.raises(ValueError):
            program.g_plus[0, 0] = 1.0

    def test_mapping_without_weight_scale_rejected(self):
        with pytest.raises(ValueError, match="weight_scale"):
            ShardProgram(
                g_plus=np.zeros((2, 2)),
                g_minus=np.zeros((2, 2)),
                mapping=ConductanceMapping(),
            )

    def test_sharded_group_exposes_one_program_per_shard(self, rng):
        layer = Dense(12, 6, activation="linear", random_state=0)
        group = ShardedTileGroup(layer, ShardingSpec.grid(2, 3), random_state=0)
        programs = group.shard_programs()
        assert len(programs) == 6
        for program, array in zip(programs, group.physical_arrays):
            np.testing.assert_array_equal(program.g_plus, array.g_plus)
            np.testing.assert_array_equal(program.g_minus, array.g_minus)
            assert program.is_deterministic


class TestAcceleratorShardingArgument:
    def test_per_layer_sharding_sequence(self, rng):
        network = Sequential(
            [Dense(12, 8, activation="relu", random_state=0), Dense(8, 3, random_state=1)]
        )
        accelerator = CrossbarAccelerator(
            network, sharding=[ShardingSpec.grid(2, 2), None], random_state=0
        )
        assert isinstance(accelerator.tiles[0], ShardedTileGroup)
        assert type(accelerator.tiles[1]) is CrossbarTile
        assert accelerator.n_tiles == 2
        assert accelerator.n_physical_tiles == 5
        assert accelerator.tile_labels == (
            "layer0/r0c0", "layer0/r0c1", "layer0/r1c0", "layer0/r1c1", "layer1",
        )
        reference = CrossbarAccelerator(network, random_state=0)
        inputs = rng.uniform(0, 1, size=(4, 12))
        np.testing.assert_allclose(
            accelerator.forward(inputs), reference.forward(inputs), atol=1e-10
        )

    def test_wrong_length_sequence_rejected(self, rng):
        network = Sequential([Dense(8, 4, random_state=0)])
        with pytest.raises(ValueError, match="1 entries"):
            CrossbarAccelerator(network, sharding=[None, ShardingSpec.rows(2)])

    def test_trivial_spec_builds_plain_tiles(self):
        network = Sequential([Dense(8, 4, random_state=0)])
        accelerator = CrossbarAccelerator(network, sharding=ShardingSpec(), random_state=0)
        assert type(accelerator.tiles[0]) is CrossbarTile

    def test_build_tile_factory(self):
        layer = Dense(8, 4, random_state=0)
        assert type(build_tile(layer, random_state=0)) is CrossbarTile
        group = build_tile(layer, sharding=ShardingSpec.rows(2), random_state=0)
        assert isinstance(group, ShardedTileGroup)
        assert group.shard_shapes == [(2, 8), (2, 8)]


class TestOraclePerTileObservables:
    def test_per_tile_power_exposed(self, rng):
        network = dyadic_network(rng)
        accelerator = CrossbarAccelerator(
            network, sharding=ShardingSpec.grid(2, 2), random_state=0
        )
        oracle = Oracle(accelerator, expose_power=True, expose_per_tile_power=True)
        response = oracle.query(dyadic_inputs(rng, 6))
        assert response.per_tile_power.shape == (6, 4)
        assert response.metadata["tile_labels"] == accelerator.tile_labels
        np.testing.assert_allclose(
            response.per_tile_power.sum(axis=1), response.power, rtol=1e-12
        )

    def test_per_tile_power_off_by_default(self, rng):
        network = dyadic_network(rng)
        accelerator = CrossbarAccelerator(network, random_state=0)
        response = Oracle(accelerator).query(dyadic_inputs(rng, 3))
        assert response.per_tile_power is None

    def test_requires_expose_power(self, rng):
        network = dyadic_network(rng)
        accelerator = CrossbarAccelerator(network, random_state=0)
        with pytest.raises(ValueError, match="expose_power"):
            Oracle(accelerator, expose_power=False, expose_per_tile_power=True)


class TestWireResistance:
    """The 2-D IR-drop nonideality: exact-zero gating, geometry dependence."""

    WIRED = NonidealityConfig(wire_resistance_ohm=1e-3)

    def test_config_validation(self):
        assert NonidealityConfig().is_ideal
        assert not self.WIRED.is_ideal
        with pytest.raises(ValueError):
            NonidealityConfig(wire_resistance_ohm=-1e-3)

    @pytest.mark.parametrize(
        "spec",
        [None] + list(TestShardRunners.PRESET_AND_UNEVEN),
        ids=lambda s: "mono" if s is None else f"{s.row_shards}x{s.col_shards}-{s.reduction}",
    )
    def test_zero_ohm_is_bitwise_the_old_engine(self, spec, rng):
        """wire_resistance_ohm=0.0 must not perturb a single bit."""
        network = dyadic_network(rng)
        inputs = dyadic_inputs(rng, 6)
        old = CrossbarAccelerator(network, sharding=spec, random_state=0)
        gated = CrossbarAccelerator(
            network,
            sharding=spec,
            nonidealities=NonidealityConfig(wire_resistance_ohm=0.0),
            random_state=0,
        )
        out_old, report_old = old.forward_with_power(inputs)
        out_gated, report_gated = gated.forward_with_power(inputs)
        np.testing.assert_array_equal(out_gated, out_old)
        np.testing.assert_array_equal(
            report_gated.per_tile_current, report_old.per_tile_current
        )

    def test_nonzero_ohm_droops_current(self, rng):
        network = dyadic_network(rng)
        inputs = dyadic_inputs(rng, 6)
        ideal = CrossbarAccelerator(network, random_state=0)
        wired = CrossbarAccelerator(network, nonidealities=self.WIRED, random_state=0)
        # positive drive voltages, non-negative conductances: droop strictly
        # reduces the measured supply current
        assert np.all(wired.total_current(inputs) < ideal.total_current(inputs))

    def test_fused_path_consistent_under_wire_resistance(self, rng):
        network = dyadic_network(rng)
        inputs = dyadic_inputs(rng, 5)
        wired = CrossbarAccelerator(network, nonidealities=self.WIRED, random_state=0)
        out_fused, report = wired.forward_with_power(inputs)
        np.testing.assert_array_equal(out_fused, wired.forward(inputs))
        np.testing.assert_array_equal(
            report.total_current, wired.total_current(inputs)
        )

    def test_droop_is_geometry_dependent(self, rng):
        """Smaller shards mean shorter wires: column splits of a wide layer
        shorten its row wires and recover the ideal physics."""
        layer = Dense(64, 8, activation="linear", random_state=0)
        layer.set_weights(rng.normal(size=(8, 64)))
        network = Sequential([layer])
        inputs = rng.uniform(0, 1, size=(6, 64))

        def droop_error(sharding):
            ideal = CrossbarAccelerator(network, sharding=sharding, random_state=0)
            wired = CrossbarAccelerator(
                network, sharding=sharding, nonidealities=self.WIRED, random_state=0
            )
            return np.max(
                np.abs(wired.total_current(inputs) - ideal.total_current(inputs))
            )

        err_mono = droop_error(None)
        err_cols = droop_error(ShardingSpec.columns(4))
        assert err_mono > err_cols > 0.0


class TestPerShardProbing:
    """The shard-aware attack: per-rail estimates vs the whole-rail probe."""

    def _column_sums(self, accelerator):
        return accelerator.tiles[0].column_conductance_sums

    def test_requires_per_tile_oracle(self, rng):
        network = dyadic_network(rng)
        accelerator = CrossbarAccelerator(network, random_state=0)
        with pytest.raises(ValueError, match="expose_per_tile_power"):
            PerShardProber(Oracle(accelerator, expose_power=True), 13)

    def test_noiseless_estimates_recover_column_sums(self, rng):
        layer = Dense(12, 6, activation="linear", random_state=0)
        network = Sequential([layer])
        spec = ShardingSpec.grid(2, 3)
        accelerator = CrossbarAccelerator(network, sharding=spec, random_state=0)
        oracle = Oracle(accelerator, expose_power=True, expose_per_tile_power=True)
        result = PerShardProber(oracle, 12).probe_all()
        assert result.grid == (2, 3)
        assert result.n_rails == 6
        assert result.queries_used == 13  # baseline + one probe per column
        true_sums = self._column_sums(accelerator)
        np.testing.assert_allclose(result.per_shard_norms, true_sums, rtol=1e-9)
        np.testing.assert_allclose(result.whole_rail_norms, true_sums, rtol=1e-9)

    def test_unsharded_target_estimates_coincide(self, rng):
        network = Sequential([Dense(10, 5, activation="linear", random_state=0)])
        accelerator = CrossbarAccelerator(network, random_state=0)
        oracle = Oracle(accelerator, expose_power=True, expose_per_tile_power=True)
        result = PerShardProber(oracle, 10).probe_all()
        assert result.grid == (1, 1)
        np.testing.assert_array_equal(
            result.per_shard_norms, result.whole_rail_norms
        )

    def test_bias_column_cancels_out(self, rng):
        layer = Dense(12, 6, activation="linear", use_bias=True, random_state=0)
        layer.set_weights(rng.normal(size=(6, 12)), bias=rng.normal(size=6))
        network = Sequential([layer])
        spec = ShardingSpec.columns(3)
        accelerator = CrossbarAccelerator(network, sharding=spec, random_state=0)
        oracle = Oracle(accelerator, expose_power=True, expose_per_tile_power=True)
        result = PerShardProber(oracle, 12, has_bias_column=True).probe_all()
        np.testing.assert_allclose(
            result.per_shard_norms, self._column_sums(accelerator), rtol=1e-9
        )

    def test_per_shard_beats_whole_rail_on_sharded_preset(self, trained_softmax):
        """Acceptance: on a noisy sharded victim the per-shard attacker's
        estimates are strictly closer to the truth than the whole-rail ones.

        Both estimates come from the same queries and noise realizations;
        the per-shard win is statistical (each rail's noise scales with its
        own, smaller current), so the comparison averages a dozen fully
        deterministic probe sessions instead of betting on one draw.
        """
        spec = get_scenario("sharded-rows-2")
        accelerator = spec.build_accelerator(trained_softmax, random_state=0)
        n_inputs = trained_softmax.layers[0].n_inputs
        true_sums = self._column_sums(accelerator)
        errors = {"per_shard": [], "whole_rail": []}
        for session in range(12):
            oracle = Oracle(
                accelerator,
                expose_power=True,
                expose_per_tile_power=True,
                power_noise_std=0.1,
                random_state=np.random.default_rng([session, 0xAB]),
            )
            result = PerShardProber(oracle, n_inputs).probe_all()
            assert result.grid == (2, 1)
            errors["per_shard"].append(
                np.linalg.norm(result.per_shard_norms - true_sums)
            )
            errors["whole_rail"].append(
                np.linalg.norm(result.whole_rail_norms - true_sums)
            )
        assert np.mean(errors["per_shard"]) < np.mean(errors["whole_rail"])


class TestTileLabelHelpers:
    def test_parse_tile_label(self):
        assert parse_tile_label("layer0") == (0, None)
        assert parse_tile_label("layer3/r1c2") == (3, (1, 2))
        for bad in ("layer", "layerx", "layer0/r1", "layer0/r1c2x", "r1c2"):
            with pytest.raises(ValueError):
                parse_tile_label(bad)

    def test_layer_rail_grid(self):
        labels = (
            "layer0/r0c0", "layer0/r0c1", "layer0/r1c0", "layer0/r1c1", "layer1",
        )
        grid, columns = layer_rail_grid(labels, 0)
        assert grid == (2, 2)
        assert columns.tolist() == [[0, 1], [2, 3]]
        grid1, columns1 = layer_rail_grid(labels, 1)
        assert grid1 == (1, 1)
        assert columns1.tolist() == [[4]]
        with pytest.raises(KeyError):
            layer_rail_grid(labels, 9)
        with pytest.raises(ValueError):
            layer_rail_grid(("layer0/r0c0", "layer0/r1c1"), 0)  # holes


class TestShardedScenarios:
    def test_presets_registered(self):
        for name in ("sharded-rows-2", "sharded-columns-4", "sharded-2x2", "sharded-4x4-tree"):
            spec = get_scenario(name)
            assert spec.sharding is not None and not spec.sharding.is_trivial
            assert not spec.is_paper_ideal
        assert get_scenario("sharded-2x2").sharding == ShardingSpec.grid(2, 2)

    def test_spec_validation_and_serialization(self):
        spec = ScenarioSpec(name="t", sharding=ShardingSpec.columns(2))
        payload = spec.to_dict()
        assert payload["sharding"] == {"row_shards": 1, "col_shards": 2, "reduction": "sequential"}
        assert json.dumps(payload)  # JSON-serialisable end to end
        with pytest.raises(TypeError):
            ScenarioSpec(name="bad", sharding="2x2")

    def test_dict_sharding_coerced(self):
        spec = ScenarioSpec(
            name="t",
            sharding={"row_shards": 2, "col_shards": 3, "reduction": "tree"},
        )
        assert spec.sharding == ShardingSpec.grid(2, 3, reduction="tree")
        tupled = ScenarioSpec(name="t2", sharding=(2, 3, "tree"))
        assert tupled.sharding == spec.sharding

    def test_dict_sharding_carries_wire_physics(self):
        """The dict form folds wire knobs into the nonideality config."""
        spec = ScenarioSpec(
            name="t",
            sharding={"row_shards": 2, "col_shards": 1, "wire_resistance_ohm": 2e-3},
        )
        assert spec.sharding == ShardingSpec.rows(2)
        assert spec.nonidealities.wire_resistance_ohm == 2e-3
        # the legacy 1-D attenuation knob is NOT accepted through this form
        with pytest.raises(ValueError, match="wire_resistance"):
            ScenarioSpec(name="t2", sharding={"row_shards": 2, "wire_resistance": 2e-3})

    def test_dict_sharding_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="copper_grade"):
            ScenarioSpec(name="bad", sharding={"row_shards": 2, "copper_grade": 9})

    def test_wired_crossbar_preset_registered(self):
        spec = get_scenario("wired-crossbar")
        assert spec.nonidealities.wire_resistance_ohm > 0
        assert spec.measurement_noise > 0
        assert not spec.is_paper_ideal

    def test_build_accelerator_applies_sharding(self, trained_softmax):
        spec = SCENARIOS["sharded-2x2"]
        accelerator = spec.build_accelerator(trained_softmax, random_state=0)
        assert all(isinstance(tile, ShardedTileGroup) for tile in accelerator.tiles)
        assert accelerator.n_physical_tiles == 4 * accelerator.n_tiles

    @pytest.mark.experiments
    def test_sharded_scenario_runs_through_registry(self):
        """End-to-end: a sharded preset through run_experiments (smoke-)."""
        from repro.experiments import run_experiments
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale(
            name="tiny",
            n_train=120,
            n_test=40,
            n_runs=1,
            train_epochs=2,
            query_counts=(5,),
            attack_strengths=(0.0, 5.0),
            power_loss_weights=(0.0,),
            surrogate_epochs=10,
        )
        results = run_experiments(["table1"], tiny, scenarios=["sharded-2x2"], base_seed=0)
        result = results["table1"]
        assert len(result.sweep) == 1
        assert result.sweep.runs[0].metadata["scenario"] == "sharded-2x2"


class TestRegressionScriptFlags:
    """CI-facing behaviour of scripts/check_bench_regression.py."""

    @staticmethod
    def _load_script():
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression_for_tests",
            REPO_ROOT / "scripts" / "check_bench_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _passing_results():
        return {
            "engine": {
                "oracle_query": [{"batch_size": 16, "speedup": 2.5}],
                "array_ops_per_power_query_batch": 1,
            },
            "bench_sharding": {
                "geometries": [
                    {"geometry": "grid-2x2", "single_s": 1.0, "sharded_s": 1.1, "ratio": 1.1}
                ],
                "process_parallel": {
                    "geometry": "rows-4",
                    "serial_s": 1.0,
                    "process_s": 2.0,
                    "speedup": 0.5,
                    "outputs_identical": True,
                },
            },
        }

    def test_sharding_gate_fails_on_slow_ratio(self):
        check = self._load_script()
        results = self._passing_results()
        assert check.check_results(results) == []
        results["bench_sharding"]["geometries"][0]["ratio"] = 1.5
        failures = check.check_results(results)
        assert failures and any("sharded forward" in f for f in failures)

    def test_shard_speedup_gate_fails_below_floor(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_sharding"]["process_parallel"]["speedup"] = 0.01
        failures = check.check_results(results)
        assert failures and any("retains only" in f for f in failures)
        # the floor is overridable (and relaxed by tolerance)
        assert check.check_results(results, min_shard_speedup=0.005) == []

    def test_shard_identity_gate(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_sharding"]["process_parallel"]["outputs_identical"] = False
        failures = check.check_results(results)
        assert any("bit-identical" in f for f in failures)

    def test_process_parallel_entry_optional(self):
        """Legacy records without the entry must still pass (absent = unchecked)."""
        check = self._load_script()
        results = self._passing_results()
        del results["bench_sharding"]["process_parallel"]
        assert check.check_results(results) == []

    def test_tolerance_relaxes_thresholds(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_sharding"]["geometries"][0]["ratio"] = 1.3
        assert check.check_results(results)  # fails at the default 1.2 gate
        assert check.check_results(results, tolerance=0.10) == []
        with pytest.raises(TypeError):
            check.check_results(results, bogus_threshold=1.0)

    def test_json_out_report(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(self._passing_results()))
        report_path = tmp_path / "report.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check_bench_regression.py"),
                "--path", str(path),
                "--min-peak-speedup", "2.0",
                "--json-out", str(report_path),
                "--tolerance", "0.05",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(report_path.read_text())
        assert report["passed"] is True
        assert report["tolerance"] == 0.05
        assert "bench_sharding" in report["checked_sections"]
        assert report["effective_thresholds"]["max_sharded_ratio"] == pytest.approx(1.26)

    def test_negative_tolerance_rejected(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check_bench_regression.py"),
                "--tolerance", "-0.1",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
