"""Tests for repro.nn.layers: forward correctness and gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import MeanSquaredError


class TestConstruction:
    def test_weight_shape_matches_paper_orientation(self):
        layer = Dense(5, 3, random_state=0)
        assert layer.weights.shape == (3, 5)  # (outputs, inputs) = W in y = W u

    def test_bias_optional(self):
        assert Dense(4, 2, random_state=0).bias is None
        assert Dense(4, 2, use_bias=True, random_state=0).bias.shape == (2,)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, 0)

    def test_deterministic_initialization(self):
        a = Dense(6, 4, random_state=11).weights
        b = Dense(6, 4, random_state=11).weights
        np.testing.assert_array_equal(a, b)

    def test_set_weights_validates_shape(self):
        layer = Dense(4, 2, random_state=0)
        with pytest.raises(ValueError):
            layer.set_weights(np.zeros((3, 4)))

    def test_set_bias_requires_use_bias(self):
        layer = Dense(4, 2, random_state=0)
        with pytest.raises(ValueError):
            layer.set_weights(np.zeros((2, 4)), bias=np.zeros(2))


class TestForward:
    def test_linear_forward_equals_matmul(self, rng):
        layer = Dense(6, 3, activation="linear", random_state=0)
        inputs = rng.normal(size=(5, 6))
        np.testing.assert_allclose(layer.forward(inputs), inputs @ layer.weights.T)

    def test_bias_added(self, rng):
        layer = Dense(4, 2, activation="linear", use_bias=True, random_state=0)
        layer.set_weights(np.zeros((2, 4)), bias=np.array([1.0, -2.0]))
        out = layer.forward(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(out, np.tile([1.0, -2.0], (3, 1)))

    def test_single_sample_promoted_to_batch(self, rng):
        layer = Dense(4, 2, random_state=0)
        out = layer.forward(rng.normal(size=4))
        assert out.shape == (1, 2)

    def test_wrong_feature_count_raises(self, rng):
        layer = Dense(4, 2, random_state=0)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 5)))

    def test_softmax_activation_applied(self, rng):
        layer = Dense(4, 3, activation="softmax", random_state=0)
        out = layer.forward(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])


class TestBackward:
    def _numerical_weight_gradient(self, layer, inputs, targets, loss, eps=1e-6):
        grad = np.zeros_like(layer.weights)
        for index in np.ndindex(layer.weights.shape):
            original = layer.weights[index]
            layer.weights[index] = original + eps
            plus = loss.value(layer.forward(inputs), targets)
            layer.weights[index] = original - eps
            minus = loss.value(layer.forward(inputs), targets)
            layer.weights[index] = original
            grad[index] = (plus - minus) / (2 * eps)
        return grad

    @pytest.mark.parametrize("activation", ["linear", "relu", "sigmoid", "tanh"])
    def test_weight_gradient_matches_numerical(self, activation, rng):
        layer = Dense(5, 3, activation=activation, random_state=1)
        inputs = rng.normal(size=(4, 5))
        targets = rng.normal(size=(4, 3))
        loss = MeanSquaredError()
        outputs = layer.forward(inputs, training=True)
        layer.backward(loss.gradient(outputs, targets))
        numerical = self._numerical_weight_gradient(layer, inputs, targets, loss)
        np.testing.assert_allclose(layer.grad_weights, numerical, atol=1e-5)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Dense(5, 3, activation="sigmoid", random_state=1)
        inputs = rng.normal(size=(2, 5))
        targets = rng.normal(size=(2, 3))
        loss = MeanSquaredError()
        outputs = layer.forward(inputs, training=True)
        analytic = layer.backward(loss.gradient(outputs, targets))

        numerical = np.zeros_like(inputs)
        eps = 1e-6
        for index in np.ndindex(inputs.shape):
            plus, minus = inputs.copy(), inputs.copy()
            plus[index] += eps
            minus[index] -= eps
            numerical[index] = (
                loss.value(layer.forward(plus), targets)
                - loss.value(layer.forward(minus), targets)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_bias_gradient_matches_numerical(self, rng):
        layer = Dense(4, 2, activation="linear", use_bias=True, random_state=1)
        inputs = rng.normal(size=(3, 4))
        targets = rng.normal(size=(3, 2))
        loss = MeanSquaredError()
        outputs = layer.forward(inputs, training=True)
        layer.backward(loss.gradient(outputs, targets))

        numerical = np.zeros_like(layer.bias)
        eps = 1e-6
        for i in range(layer.bias.size):
            original = layer.bias[i]
            layer.bias[i] = original + eps
            plus = loss.value(layer.forward(inputs), targets)
            layer.bias[i] = original - eps
            minus = loss.value(layer.forward(inputs), targets)
            layer.bias[i] = original
            numerical[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(layer.grad_bias, numerical, atol=1e-5)

    def test_backward_without_forward_raises(self):
        layer = Dense(4, 2, random_state=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_zero_gradients(self, rng):
        layer = Dense(4, 2, random_state=0)
        layer.forward(rng.normal(size=(2, 4)), training=True)
        layer.backward(rng.normal(size=(2, 2)))
        layer.zero_gradients()
        assert layer.grad_weights is None and layer.grad_bias is None
