"""Tests for repro.netservice: the networked multi-tenant front-end.

The acceptance properties:

* **bit-identity over the wire** — responses served through
  :class:`NetworkQueryService` are bit-identical to direct seeded backend
  queries, for every registered scenario preset;
* **fault tolerance** — a client survives injected lost responses and
  server restarts via idempotent retries, with correct results and no
  double-charged budget;
* **fairness** — under saturating load from weighted tenants, the strict
  weighted-fair dispatch order serves rows in the configured weight ratio;
* **graceful drain** — a stopping server fails queued requests with a typed
  error, never a hang.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.attacks.oracle import Oracle
from repro.experiments.scenario import SCENARIOS, list_scenarios
from repro.netservice import (
    NetClient,
    NetServiceConfig,
    ProtocolError,
    QueryBudgetExceeded,
    ServiceClosedError,
    ServiceUnavailableError,
    TenantConfig,
    get_netservice_preset,
    serve_in_thread,
)
from repro.netservice.protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    _PREAMBLE,
    encode_frame,
    read_frame_sync,
    send_frame_sync,
)
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.service import ServiceConfig
from repro.sidechannel.measurement import PowerMeasurement
from repro.utils.rng import derive_request_seeds

pytestmark = pytest.mark.netservice

N_FEATURES = 16
N_CLASSES = 5


def _network():
    return Sequential(
        [Dense(N_FEATURES, N_CLASSES, activation="softmax", random_state=0)]
    )


def _target(name):
    return SCENARIOS[name].build_accelerator(_network(), random_state=0)


def _oracle(name):
    return Oracle(
        _target(name), expose_power=True, power_noise_std=0.03, random_state=7
    )


def _requests(sizes=(1, 3, 1, 2, 5, 1, 4)):
    rng = np.random.default_rng(13)
    return [rng.uniform(0.0, 1.0, size=(n, N_FEATURES)) for n in sizes]


def _config(**kwargs):
    kwargs.setdefault("service", ServiceConfig(max_batch=8, max_wait_ms=5))
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_max_s", 0.05)
    return NetServiceConfig(**kwargs)


def _replay_seeds(response):
    """The derived seed stream a wire response advertises for replay."""
    return derive_request_seeds(
        response.metadata["base_seed"],
        response.metadata["request_id"],
        len(response.queries),
    )


class TestProtocol:
    def test_frame_round_trip_sync(self):
        rng = np.random.default_rng(0)
        arrays = {
            "outputs": rng.normal(size=(3, 5)),
            "labels": np.array([1, 4, 0], dtype=np.int64),
            "flags": np.array([True, False, True]),
        }
        header = {"type": "response", "status": "ok", "request_id": 9}
        left, right = socket.socketpair()
        try:
            send_frame_sync(left, header, arrays)
            decoded_header, decoded_arrays = read_frame_sync(right)
        finally:
            left.close()
            right.close()
        assert decoded_header == header  # 'arrays' descriptor list stripped
        assert set(decoded_arrays) == set(arrays)
        for name, array in arrays.items():
            np.testing.assert_array_equal(decoded_arrays[name], array)
            assert decoded_arrays[name].dtype == array.dtype

    def test_bad_magic_rejected(self):
        left, right = socket.socketpair()
        try:
            frame = bytearray(encode_frame({"type": "ping"}))
            frame[0:2] = b"XX"
            left.sendall(bytes(frame))
            with pytest.raises(ProtocolError, match="magic"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()

    def test_version_mismatch_rejected(self):
        left, right = socket.socketpair()
        try:
            frame = bytearray(encode_frame({"type": "ping"}))
            assert frame[0:2] == MAGIC
            frame[2] = 99
            left.sendall(bytes(frame))
            with pytest.raises(ProtocolError, match="version"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()

    def test_oversized_payload_rejected_before_allocation(self):
        left, right = socket.socketpair()
        try:
            send_frame_sync(left, {"type": "query"}, {"inputs": np.zeros((64, 8))})
            with pytest.raises(ProtocolError, match="max_frame_bytes"):
                read_frame_sync(right, max_frame_bytes=1024)
        finally:
            left.close()
            right.close()

    def test_non_wire_dtype_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="dtype"):
            encode_frame({"type": "x"}, {"bad": np.zeros(3, dtype=np.complex128)})

    def test_overflowing_shape_rejected_as_protocol_error(self):
        # An adversarial descriptor whose element count would wrap an int64
        # product to ~0 must still hit the size bound as a ProtocolError —
        # not sail through to a ValueError in reshape.
        header = {
            "type": "query",
            "arrays": [
                {"name": "inputs", "dtype": "float64", "shape": [2**32, 2**32]}
            ],
        }
        header_bytes = json.dumps(header).encode("utf-8")
        frame = _PREAMBLE.pack(MAGIC, PROTOCOL_VERSION, len(header_bytes))
        left, right = socket.socketpair()
        try:
            left.sendall(frame + header_bytes)
            with pytest.raises(ProtocolError, match="max_frame_bytes"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()


class TestWireBitIdentity:
    """Acceptance: served over TCP == direct seeded query, bit for bit."""

    @pytest.mark.parametrize("name", list_scenarios())
    def test_oracle_responses_bit_identical(self, name):
        requests = _requests()
        with serve_in_thread(_oracle(name), _config()) as handle:
            with NetClient(handle.address, tenant="t0") as client:
                responses = [client.query(request) for request in requests]
        direct = _oracle(name)  # identically-built victim, fresh instance
        for request, response in zip(requests, responses):
            reference = direct.query(request, seeds=_replay_seeds(response))
            np.testing.assert_array_equal(response.queries, reference.queries)
            np.testing.assert_array_equal(response.outputs, reference.outputs)
            np.testing.assert_array_equal(response.labels, reference.labels)
            np.testing.assert_array_equal(response.power, reference.power)

    def test_measurement_readings_bit_identical(self):
        requests = _requests()
        measurement = PowerMeasurement(
            _target("noisy-device"), noise_std=0.05, random_state=3
        )
        with serve_in_thread(measurement, _config()) as handle:
            base_seed = handle.server.config.service.base_seed
            with NetClient(handle.address) as client:
                readings = [client.measure(request) for request in requests]
        direct = PowerMeasurement(_target("noisy-device"), noise_std=0.05, random_state=3)
        for i, (request, served) in enumerate(zip(requests, readings)):
            seeds = derive_request_seeds(base_seed, i, len(request))
            reference = np.atleast_1d(direct.measure(request, seeds=seeds))
            np.testing.assert_array_equal(served, reference)

    def test_measurement_scalar_shape_convention(self):
        measurement = PowerMeasurement(_target("paper/mnist-softmax"))
        with serve_in_thread(measurement, _config()) as handle:
            with NetClient(handle.address) as client:
                scalar = client.measure(np.ones(N_FEATURES))
                assert isinstance(scalar, float)
                batch = client.measure(np.ones((3, N_FEATURES)))
                assert batch.shape == (3,)

    def test_concurrent_clients_coalesce(self):
        """Multiple connections share fused traversals, rows stay their own."""
        requests = _requests((1,) * 8)
        barrier = threading.Barrier(8)
        config = _config(service=ServiceConfig(max_batch=16, max_wait_ms=20))
        with serve_in_thread(_oracle("paper/mnist-softmax"), config) as handle:

            def client_run(request):
                with NetClient(handle.address, tenant="shared") as client:
                    barrier.wait()
                    return client.query(request)

            import concurrent.futures

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                responses = list(pool.map(client_run, requests))
            stats = handle.service_stats()
        for request, response in zip(requests, responses):
            np.testing.assert_array_equal(response.queries, request)
        assert stats["coalescing_factor"] > 1.0


class TestFaultTolerance:
    def test_lost_response_retried_idempotently(self):
        """The response is dropped after the work ran: the retry must be
        served from the idempotency cache, bit-identical and never
        double-charged."""
        with serve_in_thread(_oracle("paper/mnist-softmax"), _config()) as handle:
            with NetClient(handle.address, tenant="flaky") as client:
                first = client.query(np.ones((2, N_FEATURES)) * 0.3)
                handle.drop_responses(1)
                request = np.ones((3, N_FEATURES)) * 0.6
                response = client.query(request)
                assert client.n_retries >= 1
                stats = client.stats()
        direct = _oracle("paper/mnist-softmax")
        reference = direct.query(request, seeds=_replay_seeds(response))
        np.testing.assert_array_equal(response.outputs, reference.outputs)
        np.testing.assert_array_equal(response.power, reference.power)
        counters = stats["tenants"]["flaky"]
        assert counters["n_deduped"] >= 1  # the retry hit the cache
        # charged exactly once per logical request: 2 + 3 rows, no more
        assert counters["rows_charged"] == len(first.queries) + len(request)
        assert counters["rows_served"] == counters["rows_charged"]

    def test_client_survives_server_restart(self):
        oracle = _oracle("paper/mnist-softmax")
        first_handle = serve_in_thread(oracle, _config())
        host, port = first_handle.address
        client = NetClient((host, port), tenant="durable", config=_config())
        try:
            client.query(np.ones((1, N_FEATURES)))
            first_handle.close()
            # Same port, fresh victim: request ids restart from 0.
            second_handle = serve_in_thread(
                _oracle("paper/mnist-softmax"), _config(host=host, port=port)
            )
            try:
                request = np.ones((2, N_FEATURES)) * 0.4
                response = client.query(request)
                assert client.n_retries >= 1
            finally:
                second_handle.close()
        finally:
            client.close()
        direct = _oracle("paper/mnist-softmax")
        reference = direct.query(request, seeds=_replay_seeds(response))
        np.testing.assert_array_equal(response.outputs, reference.outputs)

    def test_submit_after_close_raises_service_closed(self):
        with serve_in_thread(_oracle("paper/mnist-softmax"), _config()) as handle:
            client = NetClient(handle.address)
            client.query(np.ones((1, N_FEATURES)))
            client.close()
            client.close()  # idempotent
            with pytest.raises(ServiceClosedError):
                client.query(np.ones((1, N_FEATURES)))

    def test_kind_mismatch_is_terminal(self):
        with serve_in_thread(_oracle("paper/mnist-softmax"), _config()) as handle:
            with NetClient(handle.address) as client:
                with pytest.raises(ProtocolError, match="use query"):
                    client.measure(np.ones(N_FEATURES))

    def test_remote_failure_is_terminal_and_uncharged(self):
        from repro.netservice.errors import RemoteServiceError

        with serve_in_thread(_oracle("paper/mnist-softmax"), _config()) as handle:
            with NetClient(handle.address, tenant="bad") as client:
                with pytest.raises(RemoteServiceError):
                    client.query(np.ones((1, N_FEATURES + 1)))  # wrong width
                assert client.n_retries == 0
                stats = client.stats()
        assert stats["tenants"]["bad"]["rows_charged"] == 0

    def test_unserialisable_response_reports_remote_error(self):
        """A response the server cannot serialise must still answer the
        client with a typed error frame, not die as an unhandled task."""
        from repro.service.coalescer import OracleBackend

        class _PoisonedBackend(OracleBackend):
            def run(self, inputs, seeds):
                response = super().run(inputs, seeds)
                # passes _json_safe_metadata's shallow list check, but is
                # not JSON-encodable — encode_frame raises at send time
                response.metadata["poison"] = [object()]
                return response

        backend = _PoisonedBackend(_oracle("paper/mnist-softmax"))
        with serve_in_thread(backend, _config()) as handle:
            sock = socket.create_connection(handle.address, timeout=30)
            try:
                send_frame_sync(
                    sock,
                    {"type": "query", "tenant": "t", "key": "poison-1", "cid": 7},
                    {"inputs": np.ones((1, N_FEATURES))},
                )
                header, _ = read_frame_sync(sock)
                assert header["status"] == "error"
                assert header["code"] == "remote-error"
                assert header["cid"] == 7
            finally:
                sock.close()


class TestTenancy:
    def test_weighted_fairness_under_saturation(self):
        """Acceptance: with every request admitted before dispatch starts and
        strict weighted-fair order (scheduler_window=1), rows served per
        tenant track the 1:3 weight ratio in every meaningful prefix."""
        config = _config(
            tenants=(
                TenantConfig("alice", weight=1.0),
                TenantConfig("bob", weight=3.0),
            ),
            scheduler_window=1,
            max_inflight_per_connection=64,
            service=ServiceConfig(max_batch=1, max_wait_ms=0),
        )
        n_each = 24
        with serve_in_thread(_oracle("paper/mnist-softmax"), config) as handle:
            handle.pause_scheduling()
            sockets = {}
            try:
                for tenant in ("alice", "bob"):
                    sock = socket.create_connection(handle.address, timeout=30)
                    sockets[tenant] = sock
                    for i in range(n_each):
                        send_frame_sync(
                            sock,
                            {"type": "query", "tenant": tenant, "key": f"{tenant}-{i}"},
                            {"inputs": np.ones((1, N_FEATURES)) * 0.5},
                        )
                time.sleep(0.3)  # let every frame be admitted into the queues
                handle.resume_scheduling()
                for sock in sockets.values():
                    for _ in range(n_each):
                        header, _ = read_frame_sync(sock)
                        assert header["status"] == "ok"
            finally:
                for sock in sockets.values():
                    sock.close()
            order = [tenant for tenant, _ in handle.server.dispatch_log]
            stats = handle.stats()
        # While both tenants are backlogged (first 4*k dispatches), strict
        # WFQ serves alice:bob = 1:3 within one scheduling period.
        for prefix in (8, 16, 24, 32):
            window = order[:prefix]
            alice = window.count("alice")
            bob = window.count("bob")
            assert abs(bob - 3 * alice) <= 3, (prefix, alice, bob)
        assert stats["alice"]["rows_served"] == n_each
        assert stats["bob"]["rows_served"] == n_each
        assert stats["alice"]["weight"] == 1.0
        assert stats["bob"]["weight"] == 3.0

    def test_query_budget_enforced_and_never_overcharged(self):
        config = _config(
            tenants=(
                TenantConfig("attacker", weight=1.0, query_budget=5),
                TenantConfig("victim", weight=2.0),
            )
        )
        with serve_in_thread(_oracle("paper/mnist-softmax"), config) as handle:
            with NetClient(handle.address, tenant="attacker") as attacker, NetClient(
                handle.address, tenant="victim"
            ) as victim:
                attacker.query(np.ones((2, N_FEATURES)))  # 2/5 charged
                with pytest.raises(QueryBudgetExceeded):
                    attacker.query(np.ones((4, N_FEATURES)))  # would be 6/5
                assert attacker.n_retries == 0  # terminal: no retry storm
                mid = attacker.stats()["tenants"]["attacker"]
                assert mid["rows_charged"] == 2  # the failed request charged nothing
                assert mid["budget_remaining"] == 3
                attacker.query(np.ones((3, N_FEATURES)))  # exactly exhausts it
                with pytest.raises(QueryBudgetExceeded):
                    attacker.query(np.ones((1, N_FEATURES)))
                victim.query(np.ones((4, N_FEATURES)))  # unbounded tenant unaffected
                stats = victim.stats()
        assert stats["tenants"]["attacker"]["rows_charged"] == 5
        assert stats["tenants"]["attacker"]["budget_remaining"] == 0
        assert stats["tenants"]["victim"]["rows_charged"] == 4
        assert stats["tenants"]["victim"]["budget_remaining"] is None

    def test_per_tenant_coalescing_stats(self):
        config = _config(service=ServiceConfig(max_batch=16, max_wait_ms=20))
        barrier = threading.Barrier(4)
        with serve_in_thread(_oracle("paper/mnist-softmax"), config) as handle:

            def client_run(index):
                with NetClient(handle.address, tenant=f"t{index % 2}") as client:
                    barrier.wait()
                    for _ in range(4):
                        client.query(np.ones((1, N_FEATURES)) * 0.2)

            threads = [
                threading.Thread(target=client_run, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = handle.stats()
        for tenant in ("t0", "t1"):
            counters = stats[tenant]
            assert counters["n_requests"] == 8
            assert counters["rows_served"] == 8
            assert counters["n_ticks"] <= counters["n_requests"]
            assert counters["coalescing_factor"] >= 1.0


class TestBackpressureAndDrain:
    def test_per_connection_inflight_bound_pauses_reading(self):
        config = _config(max_inflight_per_connection=2, scheduler_window=1)
        with serve_in_thread(_oracle("paper/mnist-softmax"), config) as handle:
            handle.pause_scheduling()
            sock = socket.create_connection(handle.address, timeout=30)
            try:
                for i in range(5):
                    send_frame_sync(
                        sock,
                        {"type": "query", "tenant": "pusher", "key": f"k{i}"},
                        {"inputs": np.ones((1, N_FEATURES))},
                    )

                def admitted():
                    async def count():
                        return sum(
                            len(state.queue)
                            for state in handle.server._tenants.values()
                        )

                    return handle._call(count())

                deadline = time.time() + 5
                while admitted() < 2 and time.time() < deadline:
                    time.sleep(0.02)
                time.sleep(0.2)  # excess frames must stay unread
                assert admitted() == 2
                handle.resume_scheduling()
                for _ in range(5):  # nothing was dropped: all five complete
                    header, _ = read_frame_sync(sock)
                    assert header["status"] == "ok"
            finally:
                sock.close()

    def test_graceful_drain_fails_queued_requests_typed(self):
        """Acceptance: a stopping server answers queued requests with a typed
        retryable error — it never hangs them or silently drops them."""
        config = _config(scheduler_window=1)
        handle = serve_in_thread(_oracle("paper/mnist-softmax"), config)
        handle.pause_scheduling()  # requests will sit in the tenant queue
        sock = socket.create_connection(handle.address, timeout=30)
        try:
            send_frame_sync(
                sock,
                {"type": "query", "tenant": "stuck", "key": "drain-1"},
                {"inputs": np.ones((1, N_FEATURES))},
            )
            time.sleep(0.2)  # admitted, queued, undispatched
            handle.close()  # graceful drain
            header, _ = read_frame_sync(sock)
            assert header["status"] == "error"
            assert header["code"] == "service-closed"
        finally:
            sock.close()

    def test_drained_client_raises_retryable_unavailable(self):
        config = _config(scheduler_window=1, max_retries=0)
        handle = serve_in_thread(_oracle("paper/mnist-softmax"), config)
        handle.pause_scheduling()
        client = NetClient(handle.address, tenant="stuck", config=config)
        client.ping()  # establish the connection up front
        try:
            result = {}

            def submit():
                try:
                    client.query(np.ones((1, N_FEATURES)))
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    result["error"] = exc

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.3)
            handle.close()
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert isinstance(result.get("error"), ServiceUnavailableError)
            assert result["error"].retryable
        finally:
            client.close()

    def test_stop_completes_with_idle_connected_client(self):
        """stop() must not hang on a connected-but-idle client: on 3.12+
        Server.wait_closed() waits for connection handlers, which only
        unblock once their transports are closed."""
        handle = serve_in_thread(_oracle("paper/mnist-softmax"), _config())
        sock = socket.create_connection(handle.address, timeout=30)
        try:
            send_frame_sync(sock, {"type": "ping"})
            header, _ = read_frame_sync(sock)
            assert header["status"] == "ok"
            closer = threading.Thread(target=handle.close)
            closer.start()
            closer.join(timeout=10)
            assert not closer.is_alive(), "stop() hung on an idle client"
        finally:
            sock.close()

    def test_stop_while_scheduler_blocked_on_window_drains_queued(self):
        """stop() while the scheduler is blocked acquiring the dispatch
        window must still fail the queued request with the typed drain
        error — cancellation there must not strand a popped request."""
        config = _config(scheduler_window=1)
        handle = serve_in_thread(_oracle("paper/mnist-softmax"), config)
        sock = socket.create_connection(handle.address, timeout=30)
        try:
            # Hold the (size-1) window so the scheduler blocks in acquire().
            async def hold_window():
                await handle.server._window.acquire()

            handle._call(hold_window())
            send_frame_sync(
                sock,
                {"type": "query", "tenant": "stuck", "key": "window-1"},
                {"inputs": np.ones((1, N_FEATURES))},
            )
            time.sleep(0.3)  # admitted; scheduler now parked on the window
            closer = threading.Thread(target=handle.close)
            closer.start()
            closer.join(timeout=10)
            assert not closer.is_alive(), (
                "stop() hung: request stranded by scheduler cancellation"
            )
            header, _ = read_frame_sync(sock)
            assert header["status"] == "error"
            assert header["code"] == "service-closed"
        finally:
            sock.close()

    def test_unknown_request_type_reports_protocol_error(self):
        with serve_in_thread(_oracle("paper/mnist-softmax"), _config()) as handle:
            sock = socket.create_connection(handle.address, timeout=30)
            try:
                send_frame_sync(sock, {"type": "frobnicate"})
                header, _ = read_frame_sync(sock)
                assert header["status"] == "error"
                assert header["code"] == "protocol"
                # the connection survives a bad *request* (vs a bad frame)
                send_frame_sync(sock, {"type": "ping"})
                header, _ = read_frame_sync(sock)
                assert header["status"] == "ok"
            finally:
                sock.close()


class TestNetServiceConfig:
    def test_round_trip_and_strictness(self):
        config = NetServiceConfig(
            port=7707,
            service=ServiceConfig(max_batch=8, base_seed=5),
            tenants=(TenantConfig("a", weight=2.0, query_budget=100),),
            scheduler_window=4,
            max_retries=2,
        )
        assert NetServiceConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="unknown NetServiceConfig fields"):
            NetServiceConfig.from_dict({"max_inflght": 3})
        with pytest.raises(ValueError, match="unknown TenantConfig fields"):
            TenantConfig.from_dict({"name": "a", "wieght": 2.0})
        # nested strictness propagates
        payload = config.to_dict()
        payload["service"]["max_btch"] = 1
        with pytest.raises(ValueError, match="unknown ServiceConfig fields"):
            NetServiceConfig.from_dict(payload)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetServiceConfig(port=70000)
        with pytest.raises(ValueError):
            NetServiceConfig(tenants=(TenantConfig("a"), TenantConfig("a")))
        with pytest.raises(ValueError):
            TenantConfig("a", weight=0.0)
        with pytest.raises(ValueError):
            TenantConfig("", weight=1.0)
        with pytest.raises(ValueError):
            TenantConfig("a", query_budget=0)

    def test_tenant_policy_fallback(self):
        config = NetServiceConfig(
            tenants=(TenantConfig("vip", weight=4.0),),
            default_weight=0.5,
            default_query_budget=10,
        )
        assert config.tenant_policy("vip").weight == 4.0
        anon = config.tenant_policy("anon")
        assert anon.weight == 0.5
        assert anon.query_budget == 10

    def test_presets(self):
        preset = get_netservice_preset("net-two-tenant")
        assert {tenant.name for tenant in preset.tenants} == {"alice", "bob"}
        assert preset.tenant_policy("bob").weight == 3.0
        budgeted = get_netservice_preset("net-budgeted")
        assert budgeted.tenant_policy("attacker").query_budget == 512
        with pytest.raises(KeyError, match="unknown netservice preset"):
            get_netservice_preset("net-nope")

    def test_handshake_metadata(self):
        with serve_in_thread(_oracle("paper/mnist-softmax"), _config()) as handle:
            with NetClient(handle.address) as client:
                assert client.kind == "oracle"
                assert client.output_mode == "raw"
                assert client.n_outputs == N_CLASSES
                assert client.base_seed == 0
                assert client.ping()


class TestNetServiceRegressionGate:
    """CI-facing behaviour of the bench_netservice gate in check_bench_regression."""

    @staticmethod
    def _load_script():
        import importlib.util
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression_for_netservice_tests",
            repo_root / "scripts" / "check_bench_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _passing_results():
        return {
            "engine": {
                "oracle_query": [{"batch_size": 16, "speedup": 2.5}],
                "array_ops_per_power_query_batch": 1,
            },
            "bench_netservice": {
                "responses_identical": True,
                "one_per_connection_s": 0.5,
                "offered_load": [
                    {"workers": 1, "speedup_vs_one_per_connection": 1.1},
                    {"workers": 8, "speedup_vs_one_per_connection": 1.5},
                    {"workers": 16, "speedup_vs_one_per_connection": 1.7},
                ],
            },
        }

    def test_passing_payload(self):
        check = self._load_script()
        assert check.check_results(self._passing_results()) == []

    def test_slow_offered_load_fails(self):
        check = self._load_script()
        results = self._passing_results()
        for row in results["bench_netservice"]["offered_load"]:
            row["speedup_vs_one_per_connection"] = 1.1
        failures = check.check_results(results)
        assert any("one-request-per-connection" in failure for failure in failures)

    def test_non_identical_responses_fail(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_netservice"]["responses_identical"] = False
        failures = check.check_results(results)
        assert any("bit-identical" in failure for failure in failures)

    def test_low_worker_counts_only_fail(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_netservice"]["offered_load"] = [
            {"workers": 1, "speedup_vs_one_per_connection": 1.1}
        ]
        failures = check.check_results(results)
        assert any(">= 8 workers" in failure for failure in failures)

    def test_missing_baseline_fails(self):
        check = self._load_script()
        results = self._passing_results()
        del results["bench_netservice"]["one_per_connection_s"]
        failures = check.check_results(results)
        assert any("one_per_connection_s" in failure for failure in failures)

    def test_cli_override_tightens_the_floor(self):
        check = self._load_script()
        results = self._passing_results()
        assert check.check_results(results) == []
        failures = check.check_results(results, min_net_speedup=5.0)
        assert any("5.00x" in failure for failure in failures)

    def test_tolerance_relaxes_the_floor(self):
        check = self._load_script()
        results = self._passing_results()
        for row in results["bench_netservice"]["offered_load"]:
            row["speedup_vs_one_per_connection"] = 1.2
        assert check.check_results(results)  # fails at the strict 1.3 floor
        assert check.check_results(results, tolerance=0.15) == []

    def test_absent_section_is_not_checked(self):
        check = self._load_script()
        results = self._passing_results()
        del results["bench_netservice"]
        assert check.check_results(results) == []
