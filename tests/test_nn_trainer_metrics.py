"""Tests for repro.nn.trainer and repro.nn.metrics."""

import numpy as np
import pytest

from repro.datasets.transforms import one_hot
from repro.nn.metrics import accuracy, confusion_matrix, error_rate, top_k_accuracy
from repro.nn.network import SingleLayerNetwork
from repro.nn.optimizers import Adam
from repro.nn.trainer import Trainer, TrainingHistory, train_single_layer


class TestMetrics:
    def test_accuracy_from_labels(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_from_one_hot(self):
        predictions = np.array([[0.9, 0.1], [0.2, 0.8]])
        targets = one_hot(np.array([0, 0]), 2)
        assert accuracy(predictions, targets) == pytest.approx(0.5)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0, 1, 2]))

    def test_accuracy_empty_batch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_error_rate_complements_accuracy(self):
        predictions, targets = np.array([0, 1, 2, 2]), np.array([0, 1, 1, 1])
        assert error_rate(predictions, targets) == pytest.approx(
            1 - accuracy(predictions, targets)
        )

    def test_top_k_accuracy(self):
        scores = np.array([[0.1, 0.5, 0.4], [0.6, 0.3, 0.1]])
        targets = np.array([2, 1])
        assert top_k_accuracy(scores, targets, k=1) == pytest.approx(0.0)
        assert top_k_accuracy(scores, targets, k=2) == pytest.approx(1.0)

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.array([0, 1]), k=4)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), n_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[2, 1] == 1
        assert matrix.sum() == 4


class TestTrainingHistory:
    def test_record_and_best_epoch(self):
        history = TrainingHistory()
        history.record(1.0, 0.5, 0.9, 0.6)
        history.record(0.5, 0.7, 0.8, 0.65)
        history.record(0.6, 0.68, 0.85, 0.64)
        assert history.n_epochs == 3
        assert history.best_epoch("val_loss") == 1
        assert history.best_epoch("val_accuracy") == 1
        assert history.best_epoch("train_loss") == 1

    def test_best_epoch_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().best_epoch()

    def test_to_dict(self):
        history = TrainingHistory()
        history.record(1.0, 0.5)
        payload = history.to_dict()
        assert payload["train_loss"] == [1.0]
        assert payload["val_loss"] == []


class TestTrainer:
    def _toy_dataset(self, rng, n=200, n_features=8, n_classes=3):
        weights = rng.normal(size=(n_classes, n_features))
        inputs = rng.normal(size=(n, n_features))
        labels = np.argmax(inputs @ weights.T, axis=1)
        return inputs, one_hot(labels, n_classes)

    def test_training_improves_accuracy(self, rng):
        inputs, targets = self._toy_dataset(rng)
        network = SingleLayerNetwork(8, 3, output="softmax", random_state=0)
        trainer = Trainer(
            network,
            loss="categorical_crossentropy",
            optimizer=Adam(learning_rate=0.05),
            batch_size=32,
            random_state=0,
        )
        _, before = trainer.evaluate(inputs, targets)
        trainer.fit(inputs, targets, epochs=20)
        _, after = trainer.evaluate(inputs, targets)
        assert after > before
        assert after > 0.9

    def test_fused_softmax_path_used(self, rng):
        inputs, targets = self._toy_dataset(rng)
        network = SingleLayerNetwork(8, 3, output="softmax", random_state=0)
        trainer = Trainer(network, loss="categorical_crossentropy", random_state=0)
        assert trainer._use_fused_softmax()

    def test_mse_path_for_linear(self, rng):
        network = SingleLayerNetwork(8, 3, output="linear", random_state=0)
        trainer = Trainer(network, loss="mse", random_state=0)
        assert not trainer._use_fused_softmax()

    def test_history_recorded_per_epoch(self, rng):
        inputs, targets = self._toy_dataset(rng, n=60)
        network = SingleLayerNetwork(8, 3, output="linear", random_state=0)
        trainer = Trainer(network, loss="mse", random_state=0)
        history = trainer.fit(inputs, targets, epochs=5)
        assert history.n_epochs == 5

    def test_validation_curve_recorded(self, rng):
        inputs, targets = self._toy_dataset(rng, n=80)
        network = SingleLayerNetwork(8, 3, output="linear", random_state=0)
        trainer = Trainer(network, loss="mse", random_state=0)
        history = trainer.fit(
            inputs[:60], targets[:60], epochs=3, validation_data=(inputs[60:], targets[60:])
        )
        assert len(history.val_loss) == 3

    def test_early_stopping_halts(self, rng):
        inputs, targets = self._toy_dataset(rng, n=60)
        network = SingleLayerNetwork(8, 3, output="linear", random_state=0)
        trainer = Trainer(network, loss="mse", optimizer=Adam(learning_rate=1e-6), random_state=0)
        history = trainer.fit(
            inputs, targets, epochs=50, early_stopping_patience=2, min_delta=1.0
        )
        assert history.n_epochs <= 4

    def test_sample_count_mismatch_raises(self, rng):
        network = SingleLayerNetwork(8, 3, output="linear", random_state=0)
        trainer = Trainer(network, loss="mse", random_state=0)
        with pytest.raises(ValueError):
            trainer.fit(rng.normal(size=(10, 8)), rng.normal(size=(9, 3)), epochs=1)


class TestTrainSingleLayerHelper:
    def test_trains_both_outputs(self, mnist_small):
        for output in ("linear", "softmax"):
            network, trainer = train_single_layer(
                mnist_small, output=output, epochs=5, random_state=0
            )
            assert network.output_type == output
            _, acc = trainer.evaluate(mnist_small.test_inputs, mnist_small.test_targets)
            assert acc > 0.3  # well above the 10% chance level even at 5 epochs
