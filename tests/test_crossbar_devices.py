"""Tests for repro.crossbar.devices."""

import numpy as np
import pytest

from repro.crossbar.devices import IDEAL_DEVICE, PCM_DEVICE, RERAM_DEVICE, NVMDeviceModel


class TestValidation:
    def test_negative_g_min_rejected(self):
        with pytest.raises(ValueError):
            NVMDeviceModel(name="bad", g_min=-1.0, g_max=1.0)

    def test_g_max_must_exceed_g_min(self):
        with pytest.raises(ValueError):
            NVMDeviceModel(name="bad", g_min=1.0, g_max=1.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            NVMDeviceModel(name="bad", g_min=0, g_max=1, programming_noise=-0.1)
        with pytest.raises(ValueError):
            NVMDeviceModel(name="bad", g_min=0, g_max=1, read_noise=-0.1)

    def test_n_levels_minimum(self):
        with pytest.raises(ValueError):
            NVMDeviceModel(name="bad", g_min=0, g_max=1, n_levels=1)


class TestProperties:
    def test_conductance_range(self):
        device = NVMDeviceModel(name="d", g_min=1e-6, g_max=1e-4)
        assert device.conductance_range == pytest.approx(9.9e-5)

    def test_on_off_ratio(self):
        device = NVMDeviceModel(name="d", g_min=1e-6, g_max=1e-4)
        assert device.on_off_ratio == pytest.approx(100.0)
        assert IDEAL_DEVICE.on_off_ratio == float("inf")

    def test_presets_are_sane(self):
        for device in (IDEAL_DEVICE, RERAM_DEVICE, PCM_DEVICE):
            assert device.g_max > device.g_min >= 0


class TestQuantization:
    def test_continuous_device_only_clips(self):
        device = NVMDeviceModel(name="d", g_min=0.0, g_max=1.0)
        values = np.array([-0.5, 0.3, 1.5])
        np.testing.assert_allclose(device.quantize(values), [0.0, 0.3, 1.0])

    def test_discrete_device_snaps_to_levels(self):
        device = NVMDeviceModel(name="d", g_min=0.0, g_max=1.0, n_levels=5)
        values = np.array([0.0, 0.1, 0.24, 0.26, 1.0])
        quantized = device.quantize(values)
        levels = np.linspace(0, 1, 5)
        assert all(np.isclose(levels, q).any() for q in quantized)
        assert quantized[1] == pytest.approx(0.0)
        assert quantized[3] == pytest.approx(0.25)

    def test_quantization_idempotent(self, rng):
        device = NVMDeviceModel(name="d", g_min=0.0, g_max=1.0, n_levels=16)
        values = rng.uniform(0, 1, size=20)
        once = device.quantize(values)
        np.testing.assert_allclose(device.quantize(once), once)


class TestNoise:
    def test_programming_noise_zero_is_identity_plus_clip(self, rng):
        device = NVMDeviceModel(name="d", g_min=0.0, g_max=1.0)
        values = np.array([0.2, 0.8])
        np.testing.assert_allclose(device.apply_programming_noise(values, rng), values)

    def test_programming_noise_changes_values_but_respects_range(self, rng):
        device = NVMDeviceModel(name="d", g_min=0.0, g_max=1.0, programming_noise=0.2)
        values = np.full(1000, 0.5)
        noisy = device.apply_programming_noise(values, rng)
        assert not np.allclose(noisy, values)
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0
        assert abs(noisy.std() - 0.1) < 0.02  # 20% of 0.5

    def test_read_noise_statistics(self, rng):
        device = NVMDeviceModel(name="d", g_min=0.0, g_max=1.0, read_noise=0.05)
        values = np.full(2000, 0.4)
        noisy = device.apply_read_noise(values, rng)
        assert abs(noisy.mean() - 0.4) < 0.01
        assert abs(noisy.std() - 0.02) < 0.005

    def test_with_noise_returns_modified_copy(self):
        modified = IDEAL_DEVICE.with_noise(read_noise=0.1, n_levels=8)
        assert modified.read_noise == 0.1
        assert modified.n_levels == 8
        assert IDEAL_DEVICE.read_noise == 0.0  # original untouched
