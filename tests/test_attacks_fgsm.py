"""Tests for repro.attacks.base and repro.attacks.fgsm."""

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.attacks.fgsm import (
    FastGradientSignMethod,
    FastGradientValueMethod,
    fgsm_perturbation,
)
from repro.nn.gradients import input_gradients
from repro.nn.metrics import accuracy
from repro.nn.network import SingleLayerNetwork


class TestAttackResult:
    def test_perturbations_computed(self, rng):
        original = rng.uniform(size=(3, 4))
        adversarial = original + 0.1
        result = AttackResult(adversarial_inputs=adversarial, original_inputs=original, strength=0.1)
        np.testing.assert_allclose(result.perturbations, 0.1)
        assert result.n_samples == 3

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            AttackResult(
                adversarial_inputs=rng.uniform(size=(3, 4)),
                original_inputs=rng.uniform(size=(2, 4)),
                strength=0.1,
            )

    def test_perturbation_norms(self, rng):
        original = np.zeros((2, 4))
        adversarial = np.array([[1.0, 0, 0, 0], [1.0, 1.0, 0, 0]])
        result = AttackResult(adversarial_inputs=adversarial, original_inputs=original, strength=1.0)
        np.testing.assert_allclose(result.perturbation_norms(2), [1.0, np.sqrt(2)])


class TestFGSM:
    def test_perturbation_is_epsilon_times_sign(self, trained_softmax, mnist_small):
        inputs = mnist_small.test_inputs[:5]
        targets = mnist_small.test_targets[:5]
        epsilon = 0.3
        perturbation = fgsm_perturbation(trained_softmax, inputs, targets, epsilon)
        gradients = input_gradients(trained_softmax, inputs, targets)
        np.testing.assert_allclose(perturbation, epsilon * np.sign(gradients))
        assert np.all(np.abs(perturbation) <= epsilon + 1e-12)

    def test_zero_strength_is_identity(self, trained_softmax, mnist_small):
        attack = FastGradientSignMethod(trained_softmax)
        result = attack.attack(mnist_small.test_inputs[:5], mnist_small.test_targets[:5], 0.0)
        np.testing.assert_allclose(result.adversarial_inputs, mnist_small.test_inputs[:5])

    def test_negative_strength_rejected(self, trained_softmax, mnist_small):
        with pytest.raises(ValueError):
            fgsm_perturbation(
                trained_softmax, mnist_small.test_inputs[:2], mnist_small.test_targets[:2], -1.0
            )

    def test_attack_reduces_accuracy(self, trained_softmax, mnist_small):
        """The fundamental property: FGSM must hurt the victim far more than noise."""
        inputs = mnist_small.test_inputs
        targets = mnist_small.test_targets
        clean_acc = accuracy(trained_softmax.predict(inputs), targets)
        attack = FastGradientSignMethod(trained_softmax)
        result = attack.attack(inputs, targets, 0.15)
        adv_acc = accuracy(trained_softmax.predict(result.adversarial_inputs), targets)
        assert adv_acc < clean_acc - 0.3

    def test_attack_stronger_than_random_noise(self, trained_softmax, mnist_small, rng):
        inputs = mnist_small.test_inputs
        targets = mnist_small.test_targets
        epsilon = 0.15
        attack = FastGradientSignMethod(trained_softmax)
        adv = attack.attack(inputs, targets, epsilon).adversarial_inputs
        noisy = inputs + epsilon * rng.choice([-1.0, 1.0], size=inputs.shape)
        adv_acc = accuracy(trained_softmax.predict(adv), targets)
        noise_acc = accuracy(trained_softmax.predict(noisy), targets)
        assert adv_acc < noise_acc - 0.1

    def test_clip_range_enforced(self, trained_softmax, mnist_small):
        attack = FastGradientSignMethod(trained_softmax, clip_range=(0.0, 1.0))
        result = attack.attack(mnist_small.test_inputs[:10], mnist_small.test_targets[:10], 0.5)
        assert result.adversarial_inputs.min() >= 0.0
        assert result.adversarial_inputs.max() <= 1.0

    def test_invalid_clip_range(self, trained_softmax):
        with pytest.raises(ValueError):
            FastGradientSignMethod(trained_softmax, clip_range=(1.0, 0.0))

    def test_explicit_loss(self, trained_linear, mnist_small):
        from repro.nn.losses import MeanSquaredError

        attack = FastGradientSignMethod(trained_linear, loss=MeanSquaredError())
        result = attack.attack(mnist_small.test_inputs[:5], mnist_small.test_targets[:5], 0.1)
        assert result.metadata["attack"] == "fgsm"


class TestFGV:
    def test_max_perturbation_equals_epsilon(self, trained_softmax, mnist_small):
        attack = FastGradientValueMethod(trained_softmax)
        result = attack.attack(mnist_small.test_inputs[:8], mnist_small.test_targets[:8], 0.25)
        per_sample_max = np.abs(result.perturbations).max(axis=1)
        np.testing.assert_allclose(per_sample_max, 0.25, rtol=1e-6)

    def test_direction_follows_gradient(self, trained_linear, mnist_small):
        inputs = mnist_small.test_inputs[:4]
        targets = mnist_small.test_targets[:4]
        gradients = input_gradients(trained_linear, inputs, targets)
        attack = FastGradientValueMethod(trained_linear)
        perturbation = attack.attack(inputs, targets, 0.1).perturbations
        # same sign wherever the gradient is appreciably non-zero
        mask = np.abs(gradients) > 1e-6
        assert np.all(np.sign(perturbation[mask]) == np.sign(gradients[mask]))

    def test_fgv_reduces_accuracy(self, trained_softmax, mnist_small):
        attack = FastGradientValueMethod(trained_softmax)
        result = attack.attack(mnist_small.test_inputs, mnist_small.test_targets, 0.3)
        clean = accuracy(trained_softmax.predict(mnist_small.test_inputs), mnist_small.test_targets)
        adv = accuracy(
            trained_softmax.predict(result.adversarial_inputs), mnist_small.test_targets
        )
        assert adv < clean

    def test_zero_gradient_handled(self, rng):
        network = SingleLayerNetwork(4, 3, output="linear", random_state=0)
        network.weights = np.zeros((3, 4))
        attack = FastGradientValueMethod(network)
        result = attack.attack(rng.uniform(size=(2, 4)), np.eye(3)[[0, 1]], 0.2)
        assert np.all(np.isfinite(result.adversarial_inputs))
