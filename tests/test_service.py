"""Tests for repro.service: coalescing, equivalence, facades, error paths.

The acceptance property — coalesced service responses are bit-identical to
per-request synchronous queries — is asserted for **every registered scenario
preset** against the scenario's own hardware stack, plus the service
machinery itself: tick formation, backpressure, shared-bus error semantics,
query accounting, and the synchronous facades.
"""

import asyncio
import concurrent.futures
import threading
import time

import numpy as np
import pytest

from repro.attacks.oracle import Oracle
from repro.experiments.scenario import SCENARIOS, list_scenarios
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.service import (
    BatchingMeasurement,
    BatchingOracle,
    QueryService,
    ServiceClosedError,
    ServiceConfig,
)
from repro.service.coalescer import OracleBackend
from repro.sidechannel.measurement import PowerMeasurement, QueryBudgetExceeded
from repro.sidechannel.probing import ColumnNormProber

pytestmark = pytest.mark.service

N_FEATURES = 16
N_CLASSES = 5


def _network():
    return Sequential(
        [Dense(N_FEATURES, N_CLASSES, activation="softmax", random_state=0)]
    )


def _target(name):
    return SCENARIOS[name].build_accelerator(_network(), random_state=0)


def _oracle(name):
    return Oracle(
        _target(name), expose_power=True, power_noise_std=0.03, random_state=7
    )


def _requests(sizes=(1, 3, 1, 2, 5, 1, 4)):
    rng = np.random.default_rng(13)
    return [rng.uniform(0.0, 1.0, size=(n, N_FEATURES)) for n in sizes]


class _InstrumentedBackend(OracleBackend):
    """An oracle backend that counts (and optionally slows) traversals."""

    def __init__(self, oracle, delay=0.0):
        super().__init__(oracle)
        self.delay = delay
        self.calls = 0

    def run(self, inputs, seeds):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return super().run(inputs, seeds)


def _submit_all(service_target, config, requests):
    async def run():
        async with QueryService(service_target, config) as service:
            responses = await asyncio.gather(
                *(service.submit(request) for request in requests)
            )
            seeds = [
                service.seeds_for(i, len(request))
                for i, request in enumerate(requests)
            ]
            return responses, seeds, service.stats.to_dict()

    return asyncio.run(run())


class TestServiceVsDirectEquivalence:
    """Acceptance: coalesced == per-request synchronous, bit for bit."""

    @pytest.mark.parametrize("name", list_scenarios())
    def test_oracle_responses_bit_identical(self, name):
        requests = _requests()
        responses, seeds, stats = _submit_all(
            _oracle(name), ServiceConfig(max_batch=8, max_wait_ms=10), requests
        )
        direct = _oracle(name)  # identically-built victim, fresh instance
        for request, response, request_seeds in zip(requests, responses, seeds):
            reference = direct.query(request, seeds=request_seeds)
            np.testing.assert_array_equal(response.queries, reference.queries)
            np.testing.assert_array_equal(response.outputs, reference.outputs)
            np.testing.assert_array_equal(response.labels, reference.labels)
            np.testing.assert_array_equal(response.power, reference.power)
        assert stats["n_requests"] == len(requests)
        assert stats["n_ticks"] < len(requests)  # coalescing actually happened

    @pytest.mark.parametrize("name", list_scenarios())
    def test_measurement_readings_bit_identical(self, name):
        requests = _requests()
        measurement = PowerMeasurement(
            _target(name), noise_std=0.05, random_state=3
        )
        responses, seeds, _ = _submit_all(
            measurement, ServiceConfig(max_batch=8, max_wait_ms=10), requests
        )
        direct = PowerMeasurement(_target(name), noise_std=0.05, random_state=3)
        for request, readings, request_seeds in zip(requests, responses, seeds):
            reference = np.atleast_1d(direct.measure(request, seeds=request_seeds))
            np.testing.assert_array_equal(readings, reference)

    def test_query_accounting_matches_direct(self):
        requests = _requests()
        oracle = _oracle("paper/mnist-softmax")
        _submit_all(oracle, ServiceConfig(max_batch=8), requests)
        assert oracle.queries_used == sum(len(r) for r in requests)

    def test_request_larger_than_max_batch_served_whole(self):
        oracle = _oracle("paper/mnist-softmax")
        big = np.random.default_rng(0).uniform(size=(24, N_FEATURES))
        responses, seeds, stats = _submit_all(
            oracle, ServiceConfig(max_batch=4), [big]
        )
        assert len(responses[0].outputs) == 24
        assert stats["max_tick_rows"] == 24  # never split


class TestServiceMechanics:
    def test_ticks_respect_max_batch(self):
        oracle = _oracle("paper/mnist-softmax")
        requests = [np.ones((1, N_FEATURES)) * 0.1] * 12
        _, _, stats = _submit_all(
            oracle, ServiceConfig(max_batch=4, max_wait_ms=50), requests
        )
        assert stats["max_tick_rows"] <= 4
        assert stats["n_ticks"] >= 3

    def test_shared_bus_error_fails_the_whole_tick_and_charges_nothing(self):
        oracle = _oracle("paper/mnist-softmax")

        async def run():
            async with QueryService(
                oracle, ServiceConfig(max_batch=8, max_wait_ms=50)
            ) as service:
                good = service.submit(np.ones((2, N_FEATURES)))
                bad = service.submit(np.ones((1, N_FEATURES + 1)))  # wrong width
                return await asyncio.gather(good, bad, return_exceptions=True)

        results = asyncio.run(run())
        assert all(isinstance(r, Exception) for r in results)
        assert oracle.queries_used == 0

    def test_budget_exhaustion_propagates_uncharged(self):
        target = _target("paper/mnist-softmax")
        oracle = Oracle(target, query_budget=3, random_state=0)

        async def run():
            async with QueryService(oracle, ServiceConfig(max_wait_ms=50)) as service:
                return await asyncio.gather(
                    *(service.submit(np.ones((2, N_FEATURES))) for _ in range(2)),
                    return_exceptions=True,
                )

        results = asyncio.run(run())
        assert all(isinstance(r, QueryBudgetExceeded) for r in results)
        assert oracle.queries_used == 0
        assert oracle.queries_remaining == 3

    def test_backpressure_bounds_the_queue(self):
        oracle = _oracle("paper/mnist-softmax")

        async def run():
            service = QueryService(
                oracle, ServiceConfig(max_batch=2, max_wait_ms=0, max_pending=2)
            )
            async with service:
                responses = await asyncio.gather(
                    *(service.submit(np.ones((1, N_FEATURES))) for _ in range(10))
                )
                assert service._queue.maxsize == 2
                return responses

        assert len(asyncio.run(run())) == 10

    def test_empty_request_rejected(self):
        oracle = _oracle("paper/mnist-softmax")

        async def run():
            async with QueryService(oracle) as service:
                await service.submit(np.empty((0, N_FEATURES)))

        with pytest.raises(ValueError, match="empty request"):
            asyncio.run(run())

    def test_unknown_target_rejected(self):
        with pytest.raises(TypeError, match="cannot serve"):
            QueryService(object())

    def test_seeds_for_is_deterministic(self):
        a = QueryService(_oracle("paper/mnist-softmax"), ServiceConfig(base_seed=9))
        b = QueryService(_oracle("paper/mnist-softmax"), ServiceConfig(base_seed=9))
        np.testing.assert_array_equal(a.seeds_for(4, 3), b.seeds_for(4, 3))
        assert not np.array_equal(a.seeds_for(4, 3), a.seeds_for(5, 3))

    def test_config_validation_and_round_trip(self):
        config = ServiceConfig(max_batch=8, max_wait_ms=0.5, max_pending=16, base_seed=3)
        assert ServiceConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_pending=0)

    def test_from_dict_rejects_unknown_keys(self):
        """A typo'd preset field must fail loudly, not be silently dropped."""
        with pytest.raises(ValueError, match="unknown ServiceConfig fields"):
            ServiceConfig.from_dict({"max_batch": 8, "max_wat_ms": 1.0})
        # missing keys still keep their defaults (older payloads load)
        assert ServiceConfig.from_dict({"max_batch": 8}).max_pending == 256

    def test_max_pending_one_with_slow_target_awaits_not_drops(self):
        """Backpressure at the tightest bound: every submit completes."""
        backend = _InstrumentedBackend(_oracle("paper/mnist-softmax"), delay=0.005)

        async def run():
            config = ServiceConfig(max_batch=1, max_wait_ms=0, max_pending=1)
            async with QueryService(backend, config) as service:
                return await asyncio.gather(
                    *(service.submit(np.ones((1, N_FEATURES))) for _ in range(6))
                )

        responses = asyncio.run(run())
        assert len(responses) == 6
        assert all(len(response.outputs) == 1 for response in responses)
        assert backend.calls == 6  # max_batch=1: one traversal per request

    def test_stop_during_held_open_tick_dispatches_exactly_once(self):
        """stop() with a tick held open for company neither strands the
        coalesced requests nor dispatches them twice."""
        backend = _InstrumentedBackend(_oracle("paper/mnist-softmax"))

        from repro.service.coalescer import _Pending

        async def run():
            loop = asyncio.get_running_loop()
            service = QueryService(
                backend, ServiceConfig(max_batch=100, max_wait_ms=10_000)
            )
            await service.start()  # worker is scheduled but has not run yet
            futures = []
            for request_id, rows in enumerate((2, 1)):
                inputs = np.ones((rows, N_FEATURES)) * 0.5
                future = loop.create_future()
                service._queue.put_nowait(
                    _Pending(inputs, service.seeds_for(request_id, rows), future)
                )
                futures.append(future)
            # Simulate trickling cross-thread arrivals: while the queue
            # reports non-empty the worker holds its tick open for company
            # instead of taking the fully-coalesced early dispatch.
            queue = service._queue
            backing = queue._queue  # the underlying deque
            real_get_nowait = type(queue).get_nowait
            queue.empty = lambda: False

            def fake_get_nowait():
                if not backing:
                    raise asyncio.QueueEmpty
                return real_get_nowait(queue)

            queue.get_nowait = fake_get_nowait
            for _ in range(20):
                await asyncio.sleep(0)
            assert not any(future.done() for future in futures)  # held open
            del queue.empty  # restore the real probes for stop()
            del queue.get_nowait
            await service.stop()  # cancels the worker mid-tick
            return await asyncio.gather(*futures)

        first, second = asyncio.run(run())
        assert len(first.outputs) == 2
        assert len(second.outputs) == 1
        assert backend.calls == 1  # one fused traversal, not one per request


class TestBatchingOracleFacade:
    """The sync drop-in front-end existing attacks can use unchanged."""

    def test_sequential_queries_match_direct(self):
        requests = _requests()
        with BatchingOracle(
            _oracle("service-noisy-device"), ServiceConfig(max_wait_ms=0)
        ) as facade:
            responses = [facade.query(request) for request in requests]
            seeds = [
                facade.service.seeds_for(i, len(request))
                for i, request in enumerate(requests)
            ]
        direct = _oracle("service-noisy-device")
        for request, response, request_seeds in zip(requests, responses, seeds):
            reference = direct.query(request, seeds=request_seeds)
            np.testing.assert_array_equal(response.outputs, reference.outputs)
            np.testing.assert_array_equal(response.power, reference.power)

    def test_concurrent_threads_coalesce_and_get_their_own_rows(self):
        requests = _requests((1,) * 16)
        barrier = threading.Barrier(8)
        facade = BatchingOracle(
            _oracle("paper/mnist-softmax"),
            ServiceConfig(max_batch=16, max_wait_ms=20),
        )

        def client(request):
            barrier.wait()
            return facade.query(request)

        try:
            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                responses = list(pool.map(client, requests[:8]))
            for request, response in zip(requests[:8], responses):
                np.testing.assert_array_equal(response.queries, request)
            assert facade.stats.coalescing_factor > 1.0
        finally:
            facade.close()

    def test_oracle_surface_passthroughs(self):
        oracle = _oracle("paper/mnist-softmax")
        with BatchingOracle(oracle) as facade:
            assert facade.n_outputs == N_CLASSES
            assert facade.output_mode == "raw"
            facade.query(np.ones((2, N_FEATURES)))
            assert facade.queries_used == 2
            facade.reset_counter()
            assert facade.queries_used == 0
            labels = facade.predict_labels(np.ones((3, N_FEATURES)))
            assert labels.shape == (3,)
            assert facade.queries_used == 0  # evaluation helpers are free

    def test_close_is_idempotent(self):
        facade = BatchingOracle(_oracle("paper/mnist-softmax"))
        facade.query(np.ones((1, N_FEATURES)))
        facade.close()
        facade.close()

    def test_submit_after_close_raises_typed_error(self):
        facade = BatchingOracle(_oracle("paper/mnist-softmax"))
        assert not facade.closed
        facade.query(np.ones((1, N_FEATURES)))
        facade.close()
        assert facade.closed
        with pytest.raises(ServiceClosedError, match="has been closed"):
            facade.query(np.ones((1, N_FEATURES)))

    def test_measurement_submit_after_close_raises_typed_error(self):
        measurement = PowerMeasurement(_target("paper/mnist-softmax"))
        facade = BatchingMeasurement(measurement)
        facade.measure(np.ones(N_FEATURES))
        facade.close()
        with pytest.raises(ServiceClosedError):
            facade.measure(np.ones(N_FEATURES))

    def test_concurrent_close_from_many_threads(self):
        facade = BatchingOracle(_oracle("paper/mnist-softmax"))
        facade.query(np.ones((1, N_FEATURES)))
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            list(pool.map(lambda _: facade.close(), range(8)))
        assert facade.closed


class TestServiceRegressionGate:
    """CI-facing behaviour of the bench_service gate in check_bench_regression."""

    @staticmethod
    def _load_script():
        import importlib.util
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression_for_service_tests",
            repo_root / "scripts" / "check_bench_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _passing_results():
        return {
            "engine": {
                "oracle_query": [{"batch_size": 16, "speedup": 2.5}],
                "array_ops_per_power_query_batch": 1,
            },
            "bench_service": {
                "responses_identical": True,
                "direct_s": 0.02,
                "concurrency": [
                    {"concurrency": 1, "speedup_vs_direct": 0.5},
                    {"concurrency": 8, "speedup_vs_direct": 1.6},
                    {"concurrency": 32, "speedup_vs_direct": 2.4},
                ],
            },
        }

    def test_passing_payload(self):
        check = self._load_script()
        assert check.check_results(self._passing_results()) == []

    def test_slow_service_fails(self):
        check = self._load_script()
        results = self._passing_results()
        for row in results["bench_service"]["concurrency"]:
            row["speedup_vs_direct"] = 1.2
        failures = check.check_results(results)
        assert any("below the required" in failure for failure in failures)

    def test_non_identical_responses_fail(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_service"]["responses_identical"] = False
        failures = check.check_results(results)
        assert any("bit-identical" in failure for failure in failures)

    def test_low_concurrency_only_fails(self):
        check = self._load_script()
        results = self._passing_results()
        results["bench_service"]["concurrency"] = [
            {"concurrency": 1, "speedup_vs_direct": 0.5}
        ]
        failures = check.check_results(results)
        assert any("concurrency >= 8" in failure for failure in failures)

    def test_tolerance_relaxes_the_floor(self):
        check = self._load_script()
        results = self._passing_results()
        for row in results["bench_service"]["concurrency"]:
            row["speedup_vs_direct"] = 1.8
        assert check.check_results(results)  # fails at the strict 2.0 floor
        assert check.check_results(results, tolerance=0.15) == []

    def test_absent_section_is_not_checked(self):
        check = self._load_script()
        results = self._passing_results()
        del results["bench_service"]
        assert check.check_results(results) == []


class TestBatchingMeasurementFacade:
    def test_prober_through_the_service_matches_direct_replay(self):
        """The per-column probing attack, each probe one service request."""
        measurement = PowerMeasurement(
            _target("noisy-device"), noise_std=0.02, random_state=5
        )
        with BatchingMeasurement(measurement, ServiceConfig(max_wait_ms=0)) as facade:
            prober = ColumnNormProber(facade, N_FEATURES, batched=False)
            probed = prober.probe_all()
            service = facade.service
            seeds = [service.seeds_for(i, 1) for i in range(N_FEATURES)]
        assert probed.queries_used == N_FEATURES

        direct = PowerMeasurement(
            _target("noisy-device"), noise_std=0.02, random_state=5
        )
        replayed = np.array(
            [
                direct.measure(np.eye(N_FEATURES)[i], seeds=seeds[i])
                for i in range(N_FEATURES)
            ]
        )
        np.testing.assert_array_equal(probed.column_sums, replayed)

    def test_scalar_shape_convention(self):
        measurement = PowerMeasurement(_target("paper/mnist-softmax"))
        with BatchingMeasurement(measurement) as facade:
            scalar = facade.measure(np.ones(N_FEATURES))
            assert isinstance(scalar, float)
            batch = facade.measure(np.ones((3, N_FEATURES)))
            assert batch.shape == (3,)
