"""Tests for repro.nn.losses, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.activations import Softmax
from repro.nn.losses import CategoricalCrossEntropy, MeanSquaredError, get_loss


def numerical_gradient(loss, predictions, targets, eps=1e-6):
    grad = np.zeros_like(predictions)
    for index in np.ndindex(predictions.shape):
        plus, minus = predictions.copy(), predictions.copy()
        plus[index] += eps
        minus[index] -= eps
        grad[index] = (loss.value(plus, targets) - loss.value(minus, targets)) / (2 * eps)
    return grad


class TestMeanSquaredError:
    def test_zero_for_perfect_predictions(self, rng):
        y = rng.normal(size=(4, 3))
        assert MeanSquaredError().value(y, y) == pytest.approx(0.0)

    def test_known_value(self):
        loss = MeanSquaredError()
        value = loss.value(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert value == pytest.approx((1.0 + 4.0) / 2)

    def test_gradient_matches_numerical(self, rng):
        loss = MeanSquaredError()
        predictions = rng.normal(size=(3, 4))
        targets = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            loss.gradient(predictions, targets),
            numerical_gradient(loss, predictions, targets),
            atol=1e-5,
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_per_sample(self, rng):
        loss = MeanSquaredError()
        predictions = rng.normal(size=(5, 3))
        targets = rng.normal(size=(5, 3))
        per_sample = loss.per_sample(predictions, targets)
        assert per_sample.shape == (5,)
        assert np.mean(per_sample) == pytest.approx(loss.value(predictions, targets))


class TestCategoricalCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        targets = np.array([[0.0, 1.0, 0.0]])
        predictions = np.array([[1e-9, 1.0 - 2e-9, 1e-9]])
        assert CategoricalCrossEntropy().value(predictions, targets) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_uniform_prediction_value(self):
        targets = np.array([[1.0, 0.0, 0.0, 0.0]])
        predictions = np.full((1, 4), 0.25)
        assert CategoricalCrossEntropy().value(predictions, targets) == pytest.approx(
            np.log(4)
        )

    def test_gradient_matches_numerical(self, rng):
        loss = CategoricalCrossEntropy()
        logits = rng.normal(size=(3, 5))
        predictions = Softmax().forward(logits)
        labels = rng.integers(0, 5, size=3)
        targets = np.eye(5)[labels]
        np.testing.assert_allclose(
            loss.gradient(predictions, targets),
            numerical_gradient(loss, predictions, targets),
            rtol=1e-3,
            atol=1e-5,
        )

    def test_fused_softmax_gradient_matches_chain_rule(self, rng):
        """p - t must equal the CE gradient propagated through the softmax Jacobian."""
        logits = rng.normal(size=(4, 6))
        softmax = Softmax()
        probabilities = softmax.forward(logits)
        labels = rng.integers(0, 6, size=4)
        targets = np.eye(6)[labels]
        loss = CategoricalCrossEntropy()
        chained = softmax.backward(loss.gradient(probabilities, targets), probabilities)
        fused = CategoricalCrossEntropy.fused_softmax_gradient(probabilities, targets)
        np.testing.assert_allclose(chained, fused, atol=1e-8)

    def test_clipping_handles_zero_probabilities(self):
        targets = np.array([[1.0, 0.0]])
        predictions = np.array([[0.0, 1.0]])
        value = CategoricalCrossEntropy().value(predictions, targets)
        assert np.isfinite(value) and value > 10

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            CategoricalCrossEntropy().gradient(np.zeros((2, 3)), np.zeros((3, 3)))


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(get_loss("categorical_crossentropy"), CategoricalCrossEntropy)
        assert isinstance(get_loss("ce"), CategoricalCrossEntropy)

    def test_passthrough_instance(self):
        loss = MeanSquaredError()
        assert get_loss(loss) is loss

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_loss("hinge-of-doom")
