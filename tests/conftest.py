"""Shared fixtures for the test suite.

Expensive artefacts (datasets, trained victims) are session-scoped so the
whole suite stays fast while every module is exercised against realistic
objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crossbar import CrossbarAccelerator
from repro.datasets import load_cifar_like, load_mnist_like
from repro.nn.trainer import train_single_layer


@pytest.fixture(scope="session")
def mnist_small():
    """A small MNIST-like dataset shared across tests."""
    return load_mnist_like(n_train=600, n_test=200, random_state=0)


@pytest.fixture(scope="session")
def cifar_small():
    """A small CIFAR-like dataset shared across tests."""
    return load_cifar_like(n_train=400, n_test=100, random_state=0)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small MNIST-like dataset for fast attack/experiment tests."""
    return load_mnist_like(n_train=200, n_test=80, image_size=12, random_state=1)


@pytest.fixture(scope="session")
def trained_softmax(mnist_small):
    """A softmax/cross-entropy victim trained on the small MNIST-like set."""
    network, trainer = train_single_layer(
        mnist_small, output="softmax", epochs=20, random_state=0
    )
    return network


@pytest.fixture(scope="session")
def trained_linear(mnist_small):
    """A linear/MSE victim trained on the small MNIST-like set."""
    network, trainer = train_single_layer(
        mnist_small, output="linear", epochs=20, random_state=0
    )
    return network


@pytest.fixture(scope="session")
def accelerator(trained_softmax):
    """An ideal crossbar accelerator for the softmax victim."""
    return CrossbarAccelerator(trained_softmax, random_state=0)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
