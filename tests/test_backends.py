"""Pluggable compute-backend suite: resolution, bit-identity, cache residency.

The backend subsystem's contract is three-fold:

* **Resolution** — :func:`repro.backend.get_backend` maps specs (``None``,
  names, ``"auto"``, instances) to shared singletons, and absent optional
  backends fail loudly with :class:`BackendUnavailableError` instead of
  half-working.
* **Bit-identity** — within any single backend the seeded oracle path is a
  pure function of ``(inputs, seeds)`` across batch compositions, and the
  numpy/float64 default is bitwise identical to the historical pre-backend
  engine (the default-constructed accelerator).
* **Residency** — the device-resident effective-state operands are dropped
  (and rebuilt) by ``program()`` / ``invalidate_state_cache()``, never reused
  stale.

Every test parametrized over :func:`available_backends` runs on whatever this
machine has — numpy always, torch/cupy only when installed — so the suite
passes unchanged on bare CI runners and GPU boxes alike.
"""

import numpy as np
import pytest

from repro.attacks.oracle import Oracle
from repro.backend import (
    BACKEND_NAMES,
    SUPPORTED_DTYPES,
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    backend_available,
    get_backend,
)
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.crossbar.array import CrossbarArray
from repro.experiments.scenario import ScenarioSpec, get_scenario
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.utils.rng import derive_request_seeds

pytestmark = pytest.mark.backends

N_FEATURES = 16
N_CLASSES = 5
N_QUERIES = 9


def _small_network():
    return Sequential(
        [Dense(N_FEATURES, N_CLASSES, activation="softmax", random_state=0)]
    )


def _build_accelerator(**kwargs):
    return CrossbarAccelerator(_small_network(), random_state=0, **kwargs)


def _query_batch():
    return np.random.default_rng(11).uniform(0.0, 1.0, size=(N_QUERIES, N_FEATURES))


def _splits():
    """Batch partitions to compare against the whole batch: singles + chunks."""
    singles = [(i, i + 1) for i in range(N_QUERIES)]
    chunks = [(0, 3), (3, 7), (7, N_QUERIES)]
    return singles + chunks


class TestGetBackend:
    """Spec resolution: names, None, auto, instances, failure modes."""

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert backend_available("numpy")

    def test_default_is_numpy(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert get_backend(None) is backend
        assert get_backend("numpy") is backend

    def test_instances_are_singletons(self):
        for name in available_backends():
            assert get_backend(name) is get_backend(name)

    def test_instance_passthrough(self):
        backend = get_backend("numpy")
        assert get_backend(backend) is backend

    def test_auto_resolves_to_best_available(self):
        assert get_backend("auto").name == available_backends()[0]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("fortran")

    def test_absent_backend_raises(self):
        missing = [n for n in BACKEND_NAMES if n not in available_backends()]
        if not missing:  # pragma: no cover - machine with every backend
            pytest.skip("every optional backend is installed here")
        with pytest.raises(BackendUnavailableError, match=missing[0]):
            get_backend(missing[0])

    def test_dtype_round_trip(self):
        for name in available_backends():
            backend = get_backend(name)
            for spec in SUPPORTED_DTYPES:
                assert backend.dtype_name(backend.dtype(spec)) == spec
            with pytest.raises(ValueError):
                backend.dtype("float16")

    def test_asarray_to_numpy_round_trip(self):
        values = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
        for name in available_backends():
            backend = get_backend(name)
            device = backend.asarray(values, backend.dtype("float64"))
            np.testing.assert_array_equal(backend.to_numpy(device), values)


class TestSeededBitIdentity:
    """Seeded queries are a pure function of (inputs, seeds) per backend."""

    @pytest.mark.parametrize("name", available_backends())
    def test_rows_identical_across_batch_sizes(self, name):
        oracle = Oracle(
            _build_accelerator(backend=name),
            expose_power=True,
            power_noise_std=0.04,
            random_state=5,
        )
        inputs = _query_batch()
        seeds = derive_request_seeds(0, 0, N_QUERIES)
        whole = oracle.query(inputs, seeds=seeds)
        for lo, hi in _splits():
            part = oracle.query(inputs[lo:hi], seeds=seeds[lo:hi])
            np.testing.assert_array_equal(part.outputs, whole.outputs[lo:hi])
            np.testing.assert_array_equal(part.power, whole.power[lo:hi])

    @pytest.mark.parametrize("name", available_backends())
    def test_repeat_queries_identical(self, name):
        oracle = Oracle(
            _build_accelerator(backend=name),
            expose_power=True,
            power_noise_std=0.04,
            random_state=5,
        )
        inputs = _query_batch()
        seeds = derive_request_seeds(0, 2, N_QUERIES)
        first = oracle.query(inputs, seeds=seeds)
        second = oracle.query(inputs, seeds=seeds)
        np.testing.assert_array_equal(first.outputs, second.outputs)
        np.testing.assert_array_equal(first.power, second.power)

    def test_numpy_backend_matches_default_construction(self):
        """Explicit backend="numpy" is bitwise the pre-backend engine."""
        default = _build_accelerator()
        explicit = _build_accelerator(backend="numpy", dtype="float64")
        inputs = _query_batch()
        out_default, power_default = default.forward_with_power(inputs)
        out_explicit, power_explicit = explicit.forward_with_power(inputs)
        np.testing.assert_array_equal(out_explicit, out_default)
        np.testing.assert_array_equal(
            power_explicit.total_current, power_default.total_current
        )
        np.testing.assert_array_equal(
            power_explicit.per_tile_current, power_default.per_tile_current
        )

    def test_float32_tracks_float64_within_tolerance(self):
        """The documented fast path: same physics, ~single-precision error."""
        reference = _build_accelerator(dtype="float64")
        fast = _build_accelerator(dtype="float32")
        inputs = _query_batch()
        out_ref, power_ref = reference.forward_with_power(inputs)
        out_fast, power_fast = fast.forward_with_power(inputs)
        np.testing.assert_allclose(out_fast, out_ref, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(
            power_fast.total_current, power_ref.total_current, rtol=1e-4
        )

    def test_float32_is_actually_single_precision(self):
        array = CrossbarArray(
            np.random.default_rng(0).normal(size=(4, 3)), dtype="float32"
        )
        state = array._realize_state()
        assert np.asarray(state.effective_dev).dtype == np.float32


class TestBatchInvariantKernels:
    """Opt-in einsum kernels make the *unseeded* path batch-size invariant."""

    @pytest.mark.parametrize("name", available_backends())
    def test_unseeded_rows_identical_across_batch_sizes(self, name):
        array = CrossbarArray(
            np.random.default_rng(3).normal(size=(N_CLASSES, N_FEATURES)),
            random_state=0,
            backend=name,
            batch_invariant=True,
        )
        inputs = _query_batch()
        whole_out, whole_cur = array.matvec_with_current(inputs)
        for lo, hi in _splits():
            part_out, part_cur = array.matvec_with_current(inputs[lo:hi])
            np.testing.assert_array_equal(
                np.atleast_2d(part_out), whole_out[lo:hi]
            )
            np.testing.assert_array_equal(
                np.atleast_1d(part_cur), whole_cur[lo:hi]
            )

    def test_kernels_agree_with_blas_path(self):
        weights = np.random.default_rng(4).normal(size=(N_CLASSES, N_FEATURES))
        blas = CrossbarArray(weights, random_state=0)
        einsum = CrossbarArray(weights, random_state=0, batch_invariant=True)
        inputs = _query_batch()
        np.testing.assert_allclose(
            einsum.matvec(inputs), blas.matvec(inputs), rtol=1e-12
        )


class TestStateCacheResidency:
    """Device operands live exactly as long as the programmed conductances."""

    def _array(self, **kwargs):
        return CrossbarArray(
            np.random.default_rng(7).normal(size=(N_CLASSES, N_FEATURES)),
            random_state=0,
            **kwargs,
        )

    def test_state_is_cached_until_invalidated(self):
        array = self._array()
        state = array._realize_state()
        assert array._realize_state() is state
        array.invalidate_state_cache()
        rebuilt = array._realize_state()
        assert rebuilt is not state

    def test_invalidate_drops_device_operands(self):
        array = self._array(dtype="float32")
        state = array._realize_state()
        array.invalidate_state_cache()
        rebuilt = array._realize_state()
        assert rebuilt.effective_dev is not state.effective_dev
        assert rebuilt.column_sums_dev is not state.column_sums_dev

    def test_program_drops_device_operands_and_changes_results(self):
        array = self._array()
        inputs = _query_batch()
        before = array.matvec(inputs)
        state = array._realize_state()
        new_weights = np.random.default_rng(8).normal(
            size=(N_CLASSES, N_FEATURES)
        )
        array.program(new_weights)
        rebuilt = array._realize_state()
        assert rebuilt is not state
        assert rebuilt.effective_dev is not state.effective_dev
        after = array.matvec(inputs)
        assert not np.array_equal(after, before)
        # and the fresh operands actually drive the kernels
        np.testing.assert_allclose(
            after,
            np.atleast_2d(inputs) @ np.asarray(rebuilt.effective_dev).T,
            rtol=1e-12,
        )

    def test_accelerator_shares_one_backend_instance(self):
        accelerator = _build_accelerator(backend="numpy")
        assert isinstance(accelerator.backend, ArrayBackend)
        for array in accelerator.physical_arrays:
            assert array.backend is accelerator.backend


class TestBackendRegressionGate:
    """CI-facing behaviour of the engine.backends gate in check_bench_regression."""

    @staticmethod
    def _load_script():
        import importlib.util
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression_for_backend_tests",
            repo_root / "scripts" / "check_bench_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _engine_with_backends(entries, skipped=("cupy", "torch")):
        return {
            "engine": {
                "oracle_query": [{"batch_size": 16, "speedup": 2.5}],
                "array_ops_per_power_query_batch": 1,
                "backends": {"entries": entries, "skipped": list(skipped)},
            }
        }

    @staticmethod
    def _numpy_entry(peak=1.05):
        return {
            "backend": "numpy",
            "device": "cpu",
            "dtype": "float64",
            "rows": [{"batch_size": 16, "speedup_vs_reference": peak}],
            "peak_speedup_vs_reference": peak,
        }

    def test_numpy_entry_with_healthy_ratio_passes(self):
        check = self._load_script()
        results = self._engine_with_backends([self._numpy_entry()])
        assert check.check_results(results) == []
        assert check.recorded_backends(results) == ["numpy"]

    def test_skipped_optional_backends_pass(self):
        """A machine without torch/cupy must pass with only a numpy entry."""
        check = self._load_script()
        results = self._engine_with_backends(
            [self._numpy_entry()], skipped=("cupy", "torch")
        )
        assert check.check_results(results) == []

    def test_missing_numpy_entry_fails(self):
        check = self._load_script()
        results = self._engine_with_backends([])
        failures = check.check_results(results)
        assert any("numpy entry" in failure for failure in failures)

    def test_slow_backend_fails_on_peak_ratio(self):
        check = self._load_script()
        results = self._engine_with_backends([self._numpy_entry(peak=0.80)])
        failures = check.check_results(results)
        assert any("best ratio" in failure for failure in failures)

    def test_tolerance_relaxes_the_ratio_floor(self):
        check = self._load_script()
        results = self._engine_with_backends([self._numpy_entry(peak=0.90)])
        assert check.check_results(results)  # fails at the strict 0.95 floor
        assert check.check_results(results, tolerance=0.15) == []

    def test_legacy_record_without_backends_key_is_not_checked(self):
        check = self._load_script()
        results = self._engine_with_backends([self._numpy_entry()])
        del results["engine"]["backends"]
        assert check.check_results(results) == []
        assert check.recorded_backends(results) == []


class TestScenarioKnobs:
    """ScenarioSpec carries the knobs and validates them at construction."""

    def test_invalid_backend_rejected(self):
        spec = get_scenario("paper/mnist-softmax")
        with pytest.raises(ValueError, match="backend"):
            spec.with_overrides(backend="fortran")

    def test_invalid_dtype_rejected(self):
        spec = get_scenario("paper/mnist-softmax")
        with pytest.raises(ValueError, match="dtype"):
            spec.with_overrides(dtype="float16")

    def test_round_trip_preserves_knobs(self):
        spec = get_scenario("paper/mnist-softmax").with_overrides(
            backend="auto", dtype="float32"
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.backend == "auto"
        assert clone.dtype == "float32"

    def test_paper_ideal_requires_reference_configuration(self):
        spec = get_scenario("paper/mnist-softmax")
        assert spec.is_paper_ideal
        assert not spec.with_overrides(dtype="float32").is_paper_ideal

    def test_build_accelerator_threads_knobs(self):
        spec = get_scenario("paper/mnist-softmax").with_overrides(dtype="float32")
        accelerator = spec.build_accelerator(_small_network(), random_state=0)
        assert accelerator.dtype == "float32"
        assert accelerator.backend.name == "numpy"
