"""Tests for repro.datasets.transforms."""

import numpy as np
import pytest

from repro.datasets.transforms import (
    clip_to_range,
    flatten_images,
    from_one_hot,
    normalize_minmax,
    normalize_standard,
    one_hot,
    unflatten_images,
)


class TestOneHot:
    def test_basic_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_infers_class_count(self):
        assert one_hot(np.array([0, 4])).shape == (2, 5)

    def test_roundtrip(self):
        labels = np.array([3, 1, 0, 2])
        np.testing.assert_array_equal(from_one_hot(one_hot(labels, 5)), labels)

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1, 0]))

    def test_rejects_label_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), n_classes=3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int))

    def test_from_one_hot_requires_matrix(self):
        with pytest.raises(ValueError):
            from_one_hot(np.array([1, 0]))


class TestNormalization:
    def test_minmax_range(self, rng):
        data = rng.normal(size=(10, 10))
        scaled = normalize_minmax(data, 0.0, 1.0)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_minmax_constant_input(self):
        scaled = normalize_minmax(np.full((3, 3), 7.0), 0.0, 1.0)
        np.testing.assert_array_equal(scaled, np.zeros((3, 3)))

    def test_minmax_invalid_bounds(self):
        with pytest.raises(ValueError):
            normalize_minmax(np.zeros(3), 1.0, 0.0)

    def test_standard_statistics(self, rng):
        data = rng.normal(loc=3.0, scale=2.0, size=1000)
        standardised, mean, std = normalize_standard(data)
        assert mean == pytest.approx(3.0, abs=0.3)
        assert std == pytest.approx(2.0, abs=0.3)
        assert standardised.mean() == pytest.approx(0.0, abs=1e-10)

    def test_clip_to_range(self):
        clipped = clip_to_range(np.array([-1.0, 0.5, 2.0]), 0.0, 1.0)
        np.testing.assert_allclose(clipped, [0.0, 0.5, 1.0])

    def test_clip_invalid_bounds(self):
        with pytest.raises(ValueError):
            clip_to_range(np.zeros(3), 1.0, 0.0)


class TestReshaping:
    def test_flatten_grayscale(self, rng):
        images = rng.uniform(size=(5, 8, 8))
        assert flatten_images(images).shape == (5, 64)

    def test_flatten_color(self, rng):
        images = rng.uniform(size=(5, 8, 8, 3))
        assert flatten_images(images).shape == (5, 192)

    def test_flatten_already_flat(self, rng):
        flat = rng.uniform(size=(5, 10))
        np.testing.assert_array_equal(flatten_images(flat), flat)

    def test_unflatten_roundtrip(self, rng):
        images = rng.uniform(size=(4, 6, 6, 3))
        flat = flatten_images(images)
        np.testing.assert_allclose(unflatten_images(flat, (6, 6, 3)), images)

    def test_unflatten_wrong_size(self, rng):
        with pytest.raises(ValueError):
            unflatten_images(rng.uniform(size=(2, 10)), (3, 4))

    def test_unflatten_requires_2d(self, rng):
        with pytest.raises(ValueError):
            unflatten_images(rng.uniform(size=10), (2, 5))
