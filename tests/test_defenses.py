"""Tests for repro.defenses — countermeasures against the power side channel."""

import numpy as np
import pytest

from repro.crossbar import CrossbarAccelerator
from repro.defenses import (
    ColumnNormRegularizer,
    PowerNoiseDefense,
    evaluate_defense,
    leakage_correlation,
    rebalance_column_norms,
    single_pixel_attack_advantage,
)
from repro.defenses.norm_balancing import train_with_norm_balancing
from repro.nn.gradients import weight_column_norms
from repro.nn.metrics import accuracy
from repro.sidechannel import ColumnNormProber, PowerMeasurement


class TestColumnNormRegularizer:
    def test_penalty_zero_for_uniform_norms(self):
        weights = np.ones((4, 6))
        assert ColumnNormRegularizer(1.0).penalty(weights) == pytest.approx(0.0)

    def test_penalty_positive_for_nonuniform_norms(self, rng):
        weights = rng.normal(size=(4, 6))
        weights[:, 0] *= 10
        assert ColumnNormRegularizer(1.0).penalty(weights) > 0

    def test_zero_strength_disables(self, rng):
        weights = rng.normal(size=(3, 5))
        regularizer = ColumnNormRegularizer(0.0)
        assert regularizer.penalty(weights) == 0.0
        np.testing.assert_array_equal(regularizer.gradient(weights), 0.0)

    def test_gradient_matches_numerical(self, rng):
        regularizer = ColumnNormRegularizer(0.7)
        weights = rng.normal(size=(3, 5))
        analytic = regularizer.gradient(weights)
        numerical = np.zeros_like(weights)
        eps = 1e-6
        for index in np.ndindex(weights.shape):
            plus, minus = weights.copy(), weights.copy()
            plus[index] += eps
            minus[index] -= eps
            numerical[index] = (
                regularizer.penalty(plus) - regularizer.penalty(minus)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_gradient_descent_reduces_leakage_variance(self, rng):
        regularizer = ColumnNormRegularizer(1.0)
        weights = rng.normal(size=(5, 10))
        weights[:, 0] *= 5
        before = regularizer.leakage_variance(weights)
        for _ in range(200):
            weights = weights - 0.05 * regularizer.gradient(weights)
        assert regularizer.leakage_variance(weights) < before / 2

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            ColumnNormRegularizer(-0.1)

    def test_apply_to_training_gradient_adds_penalty_term(self, rng):
        regularizer = ColumnNormRegularizer(0.5)
        weights = rng.normal(size=(3, 4))
        task_gradient = rng.normal(size=(3, 4))
        combined = regularizer.apply_to_training_gradient(weights, task_gradient)
        np.testing.assert_allclose(
            combined, task_gradient + regularizer.gradient(weights)
        )


class TestRebalanceColumnNorms:
    def test_full_blend_equalises_norms(self, trained_softmax):
        network = trained_softmax.clone_architecture(random_state=0)
        network.weights = trained_softmax.weights.copy()
        rebalance_column_norms(network, blend=1.0)
        norms = weight_column_norms(network.weights)
        active = norms[norms > 1e-12]
        assert active.std() / active.mean() < 1e-6

    def test_zero_blend_is_identity(self, trained_softmax):
        network = trained_softmax.clone_architecture(random_state=0)
        network.weights = trained_softmax.weights.copy()
        rebalance_column_norms(network, blend=0.0)
        np.testing.assert_allclose(network.weights, trained_softmax.weights)

    def test_invalid_blend(self, trained_softmax):
        with pytest.raises(ValueError):
            rebalance_column_norms(trained_softmax, blend=1.5)

    def test_rebalanced_model_loses_little_accuracy_but_hides_leak(
        self, trained_softmax, mnist_small
    ):
        network = trained_softmax.clone_architecture(random_state=0)
        network.weights = trained_softmax.weights.copy()
        baseline_accuracy = accuracy(
            trained_softmax.predict(mnist_small.test_inputs), mnist_small.test_targets
        )
        rebalance_column_norms(network, blend=1.0)
        defended_accuracy = accuracy(
            network.predict(mnist_small.test_inputs), mnist_small.test_targets
        )
        # The defence must not destroy the model...
        assert defended_accuracy > baseline_accuracy - 0.35
        # ...and the crossbar built from it must no longer leak the original norms.
        accelerator = CrossbarAccelerator(network, random_state=0)
        prober = ColumnNormProber(PowerMeasurement(accelerator), mnist_small.n_features)
        leaked = prober.probe_all().column_sums
        original_norms = weight_column_norms(trained_softmax.weights)
        mask = original_norms > 1e-9  # columns that were never used stay at zero
        correlation = abs(np.corrcoef(leaked[mask], original_norms[mask])[0, 1])
        assert correlation < 0.4


class TestTrainWithNormBalancing:
    def test_regularized_training_reduces_leakage_variance(self, mnist_small):
        undefended = train_with_norm_balancing(
            mnist_small,
            regularizer=ColumnNormRegularizer(0.0),
            epochs=8,
            random_state=0,
        )
        defended = train_with_norm_balancing(
            mnist_small,
            regularizer=ColumnNormRegularizer(5.0),
            epochs=8,
            random_state=0,
        )
        metric = ColumnNormRegularizer(1.0)
        assert metric.leakage_variance(defended.weights) < metric.leakage_variance(
            undefended.weights
        )
        defended_accuracy = accuracy(
            defended.predict(mnist_small.test_inputs), mnist_small.test_targets
        )
        assert defended_accuracy > 0.6  # still a usable model


class TestPowerNoiseDefense:
    def test_functional_outputs_unchanged(self, accelerator, mnist_small):
        defense = PowerNoiseDefense(accelerator, random_state=0)
        inputs = mnist_small.test_inputs[:10]
        np.testing.assert_allclose(defense.forward(inputs), accelerator.forward(inputs))
        np.testing.assert_array_equal(
            defense.predict_labels(inputs), accelerator.predict_labels(inputs)
        )

    def test_power_observable_randomised(self, accelerator, mnist_small):
        defense = PowerNoiseDefense(accelerator, random_state=0)
        u = mnist_small.test_inputs[0]
        readings = np.array([defense.total_current(u) for _ in range(20)])
        assert readings.std() > 0
        # dummy draw only ever adds current
        assert readings.mean() > accelerator.total_current(u)

    def test_defense_destroys_probe_correlation(self, accelerator, trained_softmax, mnist_small):
        strong_defense = PowerNoiseDefense(
            accelerator, dummy_current_scale=5.0, jitter=0.5, random_state=0
        )
        undefended_corr = leakage_correlation(accelerator, trained_softmax)
        defended_corr = leakage_correlation(strong_defense, trained_softmax)
        assert undefended_corr > 0.99
        assert defended_corr < 0.5

    def test_overhead_factor(self, accelerator):
        assert PowerNoiseDefense(accelerator, dummy_current_scale=0.5).overhead_factor == 1.5

    def test_invalid_parameters(self, accelerator):
        with pytest.raises(ValueError):
            PowerNoiseDefense(accelerator, dummy_current_scale=-1.0)
        with pytest.raises(ValueError):
            PowerNoiseDefense(accelerator, jitter=-0.1)


class TestEvaluation:
    def test_leakage_correlation_ideal_crossbar(self, accelerator, trained_softmax):
        assert leakage_correlation(accelerator, trained_softmax) > 0.99

    def test_attack_advantage_positive_without_defense(
        self, trained_softmax, accelerator, mnist_small
    ):
        prober = ColumnNormProber(PowerMeasurement(accelerator), mnist_small.n_features)
        leaked = prober.probe_all().column_sums
        advantage = single_pixel_attack_advantage(
            trained_softmax,
            leaked,
            mnist_small.test_inputs,
            mnist_small.test_targets,
            strength=8.0,
            random_state=0,
        )
        assert advantage > 0.03

    def test_zero_variance_leaked_norms_give_zero_leakage(self, trained_softmax):
        """A fully jammed/quantised channel must score 0.0, not NaN."""

        class _ConstantTarget:
            def total_current(self, inputs):
                return np.full(len(np.atleast_2d(inputs)), 3.0)

        leakage = leakage_correlation(_ConstantTarget(), trained_softmax)
        assert leakage == 0.0
        # the precomputed-norms path hits the same guard
        n = trained_softmax.layers[0].n_inputs
        assert (
            leakage_correlation(None, trained_softmax, leaked_norms=np.zeros(n)) == 0.0
        )

    def test_constant_weight_victim_gives_zero_leakage(self, trained_softmax, accelerator):
        """Zero-variance *true* norms (constant weights) must score 0.0, not NaN."""
        constant = trained_softmax.clone_architecture(random_state=0)
        constant.weights = np.full_like(trained_softmax.weights, 0.5)
        leakage = leakage_correlation(accelerator, constant)
        assert leakage == 0.0 and np.isfinite(leakage)

    def test_non_finite_readings_give_zero_leakage(self, trained_softmax):
        n = trained_softmax.layers[0].n_inputs
        leaked = np.linspace(0.0, 1.0, n)
        leaked[0] = np.nan
        assert (
            leakage_correlation(None, trained_softmax, leaked_norms=leaked) == 0.0
        )

    def test_precomputed_norms_match_probing_path(self, trained_softmax, accelerator, mnist_small):
        """Scoring a caller-supplied acquisition equals probing in-place."""
        prober = ColumnNormProber(PowerMeasurement(accelerator), mnist_small.n_features)
        leaked = prober.probe_all().column_sums
        assert leakage_correlation(
            accelerator, trained_softmax, leaked_norms=leaked
        ) == pytest.approx(leakage_correlation(accelerator, trained_softmax))

    def test_attack_advantage_deterministic_under_fixed_seed(
        self, trained_softmax, accelerator, mnist_small
    ):
        prober = ColumnNormProber(PowerMeasurement(accelerator), mnist_small.n_features)
        leaked = prober.probe_all().column_sums
        advantages = [
            single_pixel_attack_advantage(
                trained_softmax,
                leaked,
                mnist_small.test_inputs,
                mnist_small.test_targets,
                strength=8.0,
                random_state=123,
            )
            for _ in range(2)
        ]
        assert advantages[0] == advantages[1]

    def test_evaluate_defense_report(self, trained_softmax, accelerator, mnist_small):
        undefended = evaluate_defense(
            "none",
            trained_softmax,
            accelerator,
            mnist_small.test_inputs,
            mnist_small.test_targets,
            random_state=0,
        )
        defended = evaluate_defense(
            "noise-injection",
            trained_softmax,
            PowerNoiseDefense(accelerator, dummy_current_scale=5.0, jitter=0.5, random_state=1),
            mnist_small.test_inputs,
            mnist_small.test_targets,
            power_overhead=6.0,
            random_state=0,
        )
        assert undefended.leakage > defended.leakage
        assert undefended.clean_accuracy == pytest.approx(defended.clean_accuracy)
        assert defended.power_overhead == 6.0
        assert defended.name == "noise-injection"
