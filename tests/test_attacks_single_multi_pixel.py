"""Tests for repro.attacks.single_pixel and repro.attacks.multi_pixel."""

import numpy as np
import pytest

from repro.attacks.evaluation import accuracy_under_attack
from repro.attacks.multi_pixel import MultiPixelAttack
from repro.attacks.single_pixel import SinglePixelAttack, SinglePixelStrategy
from repro.nn.gradients import weight_column_norms


@pytest.fixture(scope="module")
def attack_setup(trained_softmax, mnist_small):
    norms = weight_column_norms(trained_softmax.weights)
    return trained_softmax, mnist_small, norms


class TestStrategyEnum:
    def test_paper_labels(self):
        labels = {s.paper_label for s in SinglePixelStrategy}
        assert labels == {"RP", "+", "-", "RD", "Worst"}

    def test_information_requirements(self):
        assert SinglePixelStrategy.POWER_ADD.needs_power_information
        assert not SinglePixelStrategy.RANDOM_PIXEL.needs_power_information
        assert SinglePixelStrategy.WORST_CASE.needs_model_gradients
        assert not SinglePixelStrategy.POWER_RANDOM.needs_model_gradients


class TestConstruction:
    def test_power_strategies_require_norms(self):
        with pytest.raises(ValueError):
            SinglePixelAttack(SinglePixelStrategy.POWER_ADD)

    def test_worst_case_requires_network(self):
        with pytest.raises(ValueError):
            SinglePixelAttack(SinglePixelStrategy.WORST_CASE)

    def test_random_pixel_needs_nothing(self):
        attack = SinglePixelAttack(SinglePixelStrategy.RANDOM_PIXEL, random_state=0)
        assert attack.strategy is SinglePixelStrategy.RANDOM_PIXEL

    def test_string_strategy_accepted(self, attack_setup):
        _, _, norms = attack_setup
        attack = SinglePixelAttack("power_add", column_norms=norms)
        assert attack.strategy is SinglePixelStrategy.POWER_ADD


class TestPerturbationStructure:
    def test_exactly_one_pixel_modified(self, attack_setup):
        network, dataset, norms = attack_setup
        for strategy in SinglePixelStrategy:
            attack = SinglePixelAttack(
                strategy, column_norms=norms, network=network, random_state=0
            )
            result = attack.attack(dataset.test_inputs[:10], dataset.test_targets[:10], 3.0)
            changed = np.count_nonzero(result.perturbations, axis=1)
            assert np.all(changed <= 1), strategy
            assert np.all(np.abs(result.perturbations).max(axis=1) == pytest.approx(3.0))

    def test_power_add_targets_largest_norm_pixel(self, attack_setup):
        network, dataset, norms = attack_setup
        attack = SinglePixelAttack(SinglePixelStrategy.POWER_ADD, column_norms=norms)
        result = attack.attack(dataset.test_inputs[:5], dataset.test_targets[:5], 2.0)
        target_pixel = int(np.argmax(norms))
        assert attack.target_pixel() == target_pixel
        np.testing.assert_allclose(result.perturbations[:, target_pixel], 2.0)

    def test_power_subtract_signs(self, attack_setup):
        network, dataset, norms = attack_setup
        attack = SinglePixelAttack(SinglePixelStrategy.POWER_SUBTRACT, column_norms=norms)
        result = attack.attack(dataset.test_inputs[:5], dataset.test_targets[:5], 2.0)
        assert np.all(result.perturbations[:, attack.target_pixel()] == -2.0)

    def test_power_random_mixes_signs(self, attack_setup):
        network, dataset, norms = attack_setup
        attack = SinglePixelAttack(
            SinglePixelStrategy.POWER_RANDOM, column_norms=norms, random_state=0
        )
        result = attack.attack(dataset.test_inputs[:200], dataset.test_targets[:200], 1.0)
        signs = result.perturbations[:, attack.target_pixel()]
        assert np.any(signs > 0) and np.any(signs < 0)

    def test_worst_case_moves_along_gradient(self, attack_setup):
        network, dataset, norms = attack_setup
        from repro.nn.gradients import input_gradients

        inputs = dataset.test_inputs[:6]
        targets = dataset.test_targets[:6]
        attack = SinglePixelAttack(SinglePixelStrategy.WORST_CASE, network=network)
        result = attack.attack(inputs, targets, 1.5)
        gradients = input_gradients(network, inputs, targets)
        for b in range(len(inputs)):
            pixel = int(np.argmax(np.abs(gradients[b])))
            assert result.perturbations[b, pixel] == pytest.approx(
                1.5 * np.sign(gradients[b, pixel])
            )

    def test_column_norm_length_mismatch(self, attack_setup):
        network, dataset, norms = attack_setup
        attack = SinglePixelAttack(SinglePixelStrategy.POWER_ADD, column_norms=norms[:-1])
        with pytest.raises(ValueError):
            attack.attack(dataset.test_inputs[:2], dataset.test_targets[:2], 1.0)

    def test_clip_range(self, attack_setup):
        network, dataset, norms = attack_setup
        attack = SinglePixelAttack(
            SinglePixelStrategy.POWER_ADD, column_norms=norms, clip_range=(0.0, 1.0)
        )
        result = attack.attack(dataset.test_inputs[:5], dataset.test_targets[:5], 10.0)
        assert result.adversarial_inputs.max() <= 1.0

    def test_queries_recorded(self, attack_setup):
        _, dataset, norms = attack_setup
        attack = SinglePixelAttack(
            SinglePixelStrategy.POWER_ADD, column_norms=norms, queries_used=784
        )
        result = attack.attack(dataset.test_inputs[:2], dataset.test_targets[:2], 1.0)
        assert result.queries_used == 784


class TestFigure4Ordering:
    def test_power_guided_beats_random_and_worst_is_lowest(self, attack_setup):
        """The qualitative ordering of Figure 4 at a strong attack strength."""
        network, dataset, norms = attack_setup
        inputs, targets = dataset.test_inputs, dataset.test_targets
        strength = 8.0
        accuracies = {}
        for strategy in SinglePixelStrategy:
            attack = SinglePixelAttack(
                strategy, column_norms=norms, network=network, random_state=0
            )
            accuracies[strategy.paper_label] = accuracy_under_attack(
                network, attack, inputs, targets, strength
            )
        assert accuracies["Worst"] < accuracies["RD"]
        assert accuracies["RD"] < accuracies["RP"]
        assert accuracies["+"] < accuracies["RP"]

    def test_accuracy_decreases_with_strength(self, attack_setup):
        network, dataset, norms = attack_setup
        attack = SinglePixelAttack(
            SinglePixelStrategy.POWER_ADD, column_norms=norms, random_state=0
        )
        accs = [
            accuracy_under_attack(network, attack, dataset.test_inputs, dataset.test_targets, s)
            for s in (0.0, 5.0, 10.0)
        ]
        assert accs[0] >= accs[1] >= accs[2]
        assert accs[0] - accs[2] > 0.1


class TestMultiPixel:
    def test_top_n_pixels_selected(self, attack_setup):
        _, dataset, norms = attack_setup
        attack = MultiPixelAttack(norms, n_pixels=3, random_state=0)
        expected = np.argsort(norms)[::-1][:3]
        np.testing.assert_array_equal(attack.target_pixels(), expected)

    def test_n_pixels_modified(self, attack_setup):
        _, dataset, norms = attack_setup
        attack = MultiPixelAttack(norms, n_pixels=4, random_state=0)
        result = attack.attack(dataset.test_inputs[:6], dataset.test_targets[:6], 2.0)
        changed = np.count_nonzero(result.perturbations, axis=1)
        np.testing.assert_array_equal(changed, 4)

    def test_direction_modes(self, attack_setup):
        network, dataset, norms = attack_setup
        pixels = MultiPixelAttack(norms, n_pixels=2).target_pixels()
        add = MultiPixelAttack(norms, n_pixels=2, direction="add")
        subtract = MultiPixelAttack(norms, n_pixels=2, direction="subtract")
        add_result = add.attack(dataset.test_inputs[:3], dataset.test_targets[:3], 1.0)
        sub_result = subtract.attack(dataset.test_inputs[:3], dataset.test_targets[:3], 1.0)
        np.testing.assert_allclose(add_result.perturbations[:, pixels], 1.0, atol=1e-12)
        np.testing.assert_allclose(sub_result.perturbations[:, pixels], -1.0, atol=1e-12)

    def test_oracle_direction_requires_network(self, attack_setup):
        _, _, norms = attack_setup
        with pytest.raises(ValueError):
            MultiPixelAttack(norms, n_pixels=2, direction="oracle")

    def test_invalid_direction(self, attack_setup):
        _, _, norms = attack_setup
        with pytest.raises(ValueError):
            MultiPixelAttack(norms, n_pixels=2, direction="sideways")

    def test_too_many_pixels(self, attack_setup):
        _, _, norms = attack_setup
        with pytest.raises(ValueError):
            MultiPixelAttack(norms, n_pixels=len(norms) + 1)

    def test_random_direction_efficacy_decreases_with_n(self, attack_setup):
        """The paper's observation: guessing N directions succeeds with prob (1/2)^N,
        so random-direction multi-pixel attacks get *weaker* per-pixel as N grows
        relative to the oracle-direction upper bound."""
        network, dataset, norms = attack_setup
        inputs, targets = dataset.test_inputs, dataset.test_targets
        strength = 6.0
        gaps = []
        for n_pixels in (1, 4):
            random_dir = MultiPixelAttack(norms, n_pixels=n_pixels, direction="random", random_state=0)
            oracle_dir = MultiPixelAttack(
                norms, n_pixels=n_pixels, direction="oracle", network=network
            )
            acc_random = accuracy_under_attack(network, random_dir, inputs, targets, strength)
            acc_oracle = accuracy_under_attack(network, oracle_dir, inputs, targets, strength)
            gaps.append(acc_random - acc_oracle)
        assert gaps[1] > gaps[0] - 0.02  # the guess penalty does not shrink with N
