"""Multi-tenant placement, rail-ledger, and cross-tenant attack suite.

The coalescing service's multi-tenant contract has two halves, and this
module pins both:

* **Bit-identity** — tenancy and placement decide *which rows ride
  together*, never the physics: every response is byte-for-byte what the
  same request would have produced alone (the grouping half of the contract
  lives in ``test_batch_invariance.py``'s mixed-tenant class).
* **The side channel is real and the defences order correctly** — a
  co-resident attacker recovers victim column norms from shared-tick rail
  power under ``shared`` placement, recovers strictly less under
  ``partitioned``, and nothing at all under ``tile-isolated``; the
  ``noise_budget`` dummy draw degrades recovery without touching responses.
"""

import asyncio
import math

import numpy as np
import pytest

from repro.attacks.oracle import Oracle
from repro.experiments.config import (
    SCALES,
    TENANT_PRESET_CONFIGS,
    TENANT_SWEEP_GRIDS,
)
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.scenario import get_scenario, list_scenarios
from repro.experiments.sweep import SWEEPS, SweepSpec
from repro.netservice.server import TenantServiceStats
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.service import QueryService, ServiceConfig
from repro.service.coalescer import _Pending
from repro.sidechannel.coresident import (
    estimate_victim_norms,
    run_coresident_attack,
    visible_ticks,
)
from repro.utils.rng import derive_request_seeds

pytestmark = pytest.mark.tenant

N_FEATURES = 12
N_CLASSES = 4


def _network():
    return Sequential(
        [Dense(N_FEATURES, N_CLASSES, activation="softmax", random_state=0)]
    )


def _oracle(**kwargs):
    kwargs.setdefault("expose_power", True)
    return Oracle(_network(), random_state=0, **kwargs)


def _rows(n, seed=3):
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(n, N_FEATURES))


def _config(**kwargs):
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait_ms", 50.0)
    return ServiceConfig(**kwargs)


def _serve(config, submissions, target=None):
    """Submit ``(tenant, row)`` pairs concurrently; return (results, service).

    Each entry becomes one single-row ``submit_traced`` call; the calls are
    gathered in list order, so request ids (and therefore noise seeds) are
    deterministic across runs and placement policies.
    """
    backend = target if target is not None else _oracle()

    async def drive():
        async with QueryService(backend, config) as service:
            results = await asyncio.gather(
                *(
                    service.submit_traced(row[np.newaxis, :], tenant=tenant)
                    for tenant, row in submissions
                )
            )
        return results, service

    return asyncio.run(drive())


def _interleaved(tenants, rows_per_tenant, seed=3):
    rows = _rows(rows_per_tenant * len(tenants), seed=seed)
    return [
        (tenants[i % len(tenants)], rows[i])
        for i in range(rows_per_tenant * len(tenants))
    ]


class TestPlacementGrouping:
    """The placement policy governs tick composition, nothing else."""

    def test_shared_mixes_tenants(self):
        _, service = _serve(
            _config(placement="shared"), _interleaved(("alice", "bob"), 6)
        )
        assert any(len(tick.tenants) > 1 for tick in service.tick_trace)

    def test_partitioned_never_mixes_and_still_coalesces(self):
        _, service = _serve(
            _config(placement="partitioned"), _interleaved(("alice", "bob"), 6)
        )
        assert service.tick_trace  # traffic was actually served
        assert all(len(tick.tenants) == 1 for tick in service.tick_trace)
        # same-tenant rows still ride together: isolation is not unbatching
        assert any(tick.rows > 1 for tick in service.tick_trace)

    def test_full_group_dispatches_alone_mid_round(self):
        """A flooding tenant's full groups peel off as their own ticks."""
        submissions = [("attacker", row) for row in _rows(8)]
        submissions.append(("victim", _rows(1, seed=9)[0]))
        _, service = _serve(_config(placement="partitioned", max_batch=4), submissions)
        attacker_ticks = [
            tick for tick in service.tick_trace if tick.tenants == ("attacker",)
        ]
        assert sum(1 for tick in attacker_ticks if tick.rows == 4) == 2
        assert all(len(tick.tenants) == 1 for tick in service.tick_trace)
        assert sum(
            tick.rows for tick in service.tick_trace if "victim" in tick.tenants
        ) == 1

    def test_tile_isolated_sets_bank_and_visibility(self):
        _, service = _serve(
            _config(placement="tile-isolated"), _interleaved(("alice", "bob"), 4)
        )
        assert service.tick_trace
        for tick in service.tick_trace:
            assert len(tick.tenants) == 1
            assert tick.bank == tick.tenants[0]
            assert tick.visible_to(tick.bank)
            other = "bob" if tick.bank == "alice" else "alice"
            assert not tick.visible_to(other)
        alice_view = visible_ticks(service.tick_trace, "alice")
        assert alice_view
        assert all(tick.bank == "alice" for tick in alice_view)

    def test_shared_bank_is_visible_to_every_tenant(self):
        _, service = _serve(
            _config(placement="shared"), _interleaved(("alice", "bob"), 4)
        )
        for tick in service.tick_trace:
            assert tick.bank is None
            assert tick.visible_to("alice")
            assert tick.visible_to("bob")
            assert tick.visible_to(None)

    def test_responses_bit_identical_across_placements(self):
        """Placement only regroups rows; every response stays byte-identical.

        Uses an accelerator-backed oracle: the bitwise batch-invariance
        guarantee belongs to the accelerator traversal (pinned per scenario
        in ``test_batch_invariance.py``), and placement changes batch
        composition, which is exactly what that guarantee covers.
        """
        submissions = _interleaved(("alice", "bob"), 5)
        reference = None
        for placement in ("shared", "partitioned", "tile-isolated"):
            target = get_scenario("paper/mnist-softmax").build_accelerator(
                _network(), random_state=0
            )
            results, _ = _serve(
                _config(placement=placement),
                submissions,
                target=Oracle(target, expose_power=True, random_state=0),
            )
            if reference is None:
                reference = results
                continue
            for (ref_id, ref), (got_id, got) in zip(reference, results):
                assert ref_id == got_id
                np.testing.assert_array_equal(ref.outputs, got.outputs)
                np.testing.assert_array_equal(ref.power, got.power)
                np.testing.assert_array_equal(ref.labels, got.labels)


class TestRailLedger:
    """The tick ledger records the physical rail, outside every response."""

    def test_rail_power_sums_batch_mates(self):
        rows = _rows(10)
        tick_of = {}

        async def drive():
            async with QueryService(_oracle(), _config()) as service:
                def recorder(index):
                    return lambda tick_id: tick_of.__setitem__(index, tick_id)

                results = await asyncio.gather(
                    *(
                        service.submit_traced(
                            row[np.newaxis, :],
                            tenant="alice",
                            on_dispatch=recorder(index),
                        )
                        for index, row in enumerate(rows)
                    )
                )
            return results, service

        results, service = asyncio.run(drive())
        for tick in service.tick_trace:
            members = [
                float(results[index][1].power[0])
                for index, tick_id in tick_of.items()
                if tick_id == tick.tick_id
            ]
            assert len(members) == tick.rows
            assert tick.rail_power == pytest.approx(sum(members), rel=1e-9)

    def test_noise_budget_jams_ledger_not_responses(self):
        submissions = _interleaved(("alice", "bob"), 4)
        clean_results, clean_service = _serve(_config(noise_budget=0.0), submissions)
        noisy_results, noisy_service = _serve(_config(noise_budget=5.0), submissions)
        for (_, clean), (_, noisy) in zip(clean_results, noisy_results):
            np.testing.assert_array_equal(clean.outputs, noisy.outputs)
            np.testing.assert_array_equal(clean.power, noisy.power)
        clean_rail = [tick.rail_power for tick in clean_service.tick_trace]
        noisy_rail = [tick.rail_power for tick in noisy_service.tick_trace]
        assert len(clean_rail) == len(noisy_rail)
        assert clean_rail != noisy_rail

    def test_noise_budget_ledger_replays_bit_identically(self):
        submissions = _interleaved(("alice", "bob"), 4)
        _, first = _serve(_config(noise_budget=5.0), submissions)
        _, second = _serve(_config(noise_budget=5.0), submissions)
        assert [tick.rail_power for tick in first.tick_trace] == [
            tick.rail_power for tick in second.tick_trace
        ]

    def test_no_power_backend_records_no_rail(self):
        results, service = _serve(
            _config(),
            _interleaved(("alice", "bob"), 3),
            target=Oracle(_network(), expose_power=False, random_state=0),
        )
        assert service.tick_trace
        assert all(tick.rail_power is None for tick in service.tick_trace)
        # a probe has nothing to integrate: the attacker's view is empty
        assert visible_ticks(service.tick_trace, "alice") == []


class TestDroppedRequests:
    """Regression: cancelled batch-mates are counted, not silently skipped."""

    def test_cancelled_request_is_counted_and_skipped(self):
        async def drive():
            oracle = _oracle()
            service = QueryService(oracle, _config())
            await service.start()
            loop = asyncio.get_running_loop()
            dead = loop.create_future()
            dead.cancel()
            live = loop.create_future()
            rows = _rows(2)
            service._dispatch(
                [
                    _Pending(rows[:1], derive_request_seeds(0, 0, 1), dead, None, "a"),
                    _Pending(rows[1:], derive_request_seeds(0, 1, 1), live, None, "b"),
                ]
            )
            await service.stop()
            return service, oracle, live

        service, oracle, live = asyncio.run(drive())
        assert service.stats.n_dropped_requests == 1
        assert service.stats.n_requests == 1
        assert service.stats.n_rows == 1
        assert oracle.queries_used == 1  # the dropped row never ran
        assert live.result().outputs.shape == (1, N_CLASSES)
        # the ledger records only the rows that physically ran
        assert service.tick_trace[-1].tenants == ("b",)
        assert service.stats.to_dict()["n_dropped_requests"] == 1

    def test_fully_cancelled_tick_dispatches_nothing(self):
        async def drive():
            oracle = _oracle()
            service = QueryService(oracle, _config())
            await service.start()
            loop = asyncio.get_running_loop()
            pendings = []
            for index in range(2):
                future = loop.create_future()
                future.cancel()
                pendings.append(
                    _Pending(
                        _rows(1, seed=index),
                        derive_request_seeds(0, index, 1),
                        future,
                        None,
                        "a",
                    )
                )
            service._dispatch(pendings)
            await service.stop()
            return service, oracle

        service, oracle = asyncio.run(drive())
        assert service.stats.n_dropped_requests == 2
        assert service.stats.n_ticks == 0
        assert oracle.queries_used == 0
        assert service.tick_trace == []


class TestTenantStatsCoalescingFactor:
    """Regression: the per-tenant factor only amortises dispatched requests."""

    def test_factor_excludes_deduped_requests(self):
        stats = TenantServiceStats(tenant="alice", weight=1.0)
        stats.n_received = 7
        stats.n_requests = 4
        stats.n_deduped = 3
        stats.tick_ids.update({3, 9})
        # 4 dispatched requests over 2 ticks; the 3 cache hits never joined
        # a tick and must not inflate the factor to 3.5
        assert stats.coalescing_factor == 2.0

    def test_factor_nan_when_received_but_no_ticks(self):
        stats = TenantServiceStats(tenant="alice", weight=1.0)
        stats.n_received = 5
        assert math.isnan(stats.coalescing_factor)
        assert math.isnan(stats.to_dict()["coalescing_factor"])

    def test_factor_zero_for_idle_tenant(self):
        stats = TenantServiceStats(tenant="alice", weight=1.0)
        assert stats.coalescing_factor == 0.0
        assert stats.to_dict()["n_received"] == 0


class TestPerTileAttribution:
    """Per-tile currents stay bitwise row-attributable under coalescing."""

    def _sharded_target(self):
        # the tile-isolated preset carries the per-tenant-bank tile geometry
        return get_scenario("tenant-tile-isolated").build_accelerator(
            _network(), random_state=0
        )

    def test_current_for_prefix_sums_group_columns(self):
        target = self._sharded_target()
        _, report = target.forward_with_power(_rows(5))
        assert report.tile_labels is not None and len(report.tile_labels) > 1
        grouped = report.current_for("layer0")
        columns = [
            index
            for index, label in enumerate(report.tile_labels)
            if label == "layer0" or label.startswith("layer0/")
        ]
        np.testing.assert_array_equal(
            grouped, report.per_tile_current[:, columns].sum(axis=1)
        )
        for index, label in enumerate(report.tile_labels):
            np.testing.assert_array_equal(
                report.current_for(label), report.per_tile_current[:, index]
            )
        np.testing.assert_allclose(
            report.per_tile_current.sum(axis=1), report.total_current
        )

    def test_coalesced_sharded_rows_attribute_bitwise(self):
        """Each request's per-tile slice matches a direct seeded traversal."""
        oracle = Oracle(
            self._sharded_target(),
            expose_power=True,
            expose_per_tile_power=True,
            random_state=0,
        )
        chunks = [_rows(1, seed=0), _rows(2, seed=1), _rows(3, seed=2)]

        async def drive():
            async with QueryService(oracle, _config()) as service:
                results = await asyncio.gather(
                    *(
                        service.submit_traced(chunk, tenant="alice")
                        for chunk in chunks
                    )
                )
            return results, service

        results, service = asyncio.run(drive())
        assert service.stats.max_tick_rows == 6  # the requests really fused
        direct = Oracle(
            self._sharded_target(),
            expose_power=True,
            expose_per_tile_power=True,
            random_state=0,
        )
        for chunk, (request_id, response) in zip(chunks, results):
            alone = direct.query(
                chunk, seeds=service.seeds_for(request_id, len(chunk))
            )
            np.testing.assert_array_equal(response.outputs, alone.outputs)
            np.testing.assert_array_equal(response.power, alone.power)
            np.testing.assert_array_equal(
                response.per_tile_power, alone.per_tile_power
            )

    def test_tick_per_tile_power_sums_member_rows(self):
        oracle = Oracle(
            self._sharded_target(),
            expose_power=True,
            expose_per_tile_power=True,
            random_state=0,
        )
        results, service = _serve(
            _config(), _interleaved(("alice", "bob"), 3), target=oracle
        )
        assert len(service.tick_trace) == 1
        tick = service.tick_trace[0]
        summed = np.sum(
            np.concatenate([response.per_tile_power for _, response in results]),
            axis=0,
        )
        np.testing.assert_allclose(tick.per_tile_power, summed)
        assert tick.tile_labels is not None


class TestTenantPresets:
    """The tenant-* scenarios ship the configured isolation policies."""

    def test_presets_registered_with_configured_policies(self):
        for name, (placement, max_batch, noise_budget, geometry) in (
            TENANT_PRESET_CONFIGS.items()
        ):
            spec = get_scenario(name)
            assert spec.service is not None
            assert spec.service.placement == placement
            assert spec.service.max_batch == max_batch
            assert spec.service.noise_budget == noise_budget
            if geometry is None:
                assert spec.sharding is None
            else:
                assert spec.sharding is not None
                assert (
                    spec.sharding.row_shards,
                    spec.sharding.col_shards,
                    spec.sharding.reduction,
                ) == geometry

    def test_presets_join_the_scenario_suites(self):
        registered = list_scenarios()
        for name in TENANT_PRESET_CONFIGS:
            assert name in registered


class TestCoResidentAttackMechanics:
    """The channel itself, on a small victim: what each policy leaks."""

    def _attack(self, config, *, n_probe_ratio=3):
        victim_inputs = _rows(N_FEATURES + 4, seed=5)
        probe_inputs = _rows(n_probe_ratio * len(victim_inputs), seed=6)

        async def drive():
            async with QueryService(_oracle(), config) as service:
                return await run_coresident_attack(
                    service, victim_inputs, probe_inputs
                )

        trace = asyncio.run(drive())
        return estimate_victim_norms(trace, N_FEATURES)

    def _true_norms(self):
        return np.abs(_network().layers[0].weights).sum(axis=0)

    def test_shared_placement_recovers_column_norms(self):
        estimate = self._attack(_config(placement="shared", max_batch=4))
        assert estimate.mounted
        corr = np.corrcoef(estimate.column_norms, self._true_norms())[0, 1]
        assert corr > 0.9

    def test_tile_isolation_leaves_nothing_to_mount(self):
        estimate = self._attack(_config(placement="tile-isolated", max_batch=4))
        assert not estimate.mounted
        assert estimate.n_equations == 0
        assert estimate.column_norms is None

    def test_partitioning_coarsens_the_equations(self):
        fine = self._attack(_config(placement="shared", max_batch=4))
        coarse = self._attack(_config(placement="partitioned", max_batch=4))
        assert coarse.mounted  # the shared rail still leaks tick totals
        assert coarse.n_mixed_ticks == 0
        assert fine.n_mixed_ticks > 0
        assert (
            coarse.mean_victim_rows_per_equation
            > fine.mean_victim_rows_per_equation
        )
        assert coarse.n_equations < fine.n_equations

    def test_noise_budget_degrades_recovery(self):
        clean = self._attack(_config(placement="shared", max_batch=4))
        jammed = self._attack(
            _config(placement="shared", max_batch=4, noise_budget=8.0)
        )
        truth = self._true_norms()
        clean_corr = np.corrcoef(clean.column_norms, truth)[0, 1]
        jammed_corr = np.corrcoef(jammed.column_norms, truth)[0, 1]
        assert jammed_corr < clean_corr


class TestExperimentRegistration:
    """The experiment and sweeps are registered, with the right metric."""

    def test_cross_tenant_attack_is_registered(self):
        assert "cross-tenant-attack" in list_experiments()

    def test_tenant_sweeps_are_registered(self):
        registered = list_experiments()
        for name, (base, knob, values) in TENANT_SWEEP_GRIDS.items():
            assert name in registered
            assert SWEEPS[name].knob == knob
            assert SWEEPS[name].base.name == base
            assert SWEEPS[name].values == values

    def test_tenant_sweeps_assemble_the_targeting_advantage(self):
        for name in TENANT_SWEEP_GRIDS:
            assert get_experiment(name).advantage_metric == "attack_advantage"
        # the hardware sweeps keep the paper's single-pixel metric
        assert (
            get_experiment("sweep-adc-bits").advantage_metric
            == "single_pixel_attack_advantage"
        )


#: One-seed shrunken scale for the end-to-end experiment tests: the service
#: round dominates the cost (victim rows scale with the 784 mnist-like
#: features, not with the scale preset), so only runs/training are trimmed.
_TINY = SCALES["smoke"].with_overrides(
    name="tenant-tiny", n_runs=1, n_train=200, n_test=80, train_epochs=4
)


class TestCrossTenantExperimentEndToEnd:
    """The registered experiment reproduces the isolation ladder."""

    def test_isolation_ladder_holds(self):
        result = get_experiment("cross-tenant-attack").run(_TINY)
        advantage = result.summary["advantage_by_scenario"]
        assert set(advantage) == set(TENANT_PRESET_CONFIGS)
        assert result.summary["isolation_ordering_ok"] is True
        assert advantage["tenant-tile-isolated"] == 0.0
        assert advantage["tenant-shared"] > 0.0
        rows = {row["scenario"]: row for row in result.summary["rows"]}
        assert rows["tenant-shared"]["mounted"]
        assert not rows["tenant-tile-isolated"]["mounted"]
        # partitioning also blunts the raw leakage, not just the advantage
        assert (
            rows["tenant-shared"]["leakage_mean"]
            > rows["tenant-partitioned"]["leakage_mean"]
        )

    def test_noise_budget_curve_decreases_with_the_budget(self):
        from repro.experiments.cross_tenant import CrossTenantSweepExperiment

        spec = SweepSpec(
            name="sweep-tenant-noise-micro",
            base=get_scenario("tenant-shared"),
            knob="service.noise_budget",
            values=(12.0, 0.0),  # most defended -> most exposed, like the grid
        )
        result = CrossTenantSweepExperiment(spec).run(_TINY)
        curve = result.summary["curves"][0]
        assert curve["advantage_mean"][0] < curve["advantage_mean"][1]
        assert curve["leakage_mean"][0] < curve["leakage_mean"][1]
