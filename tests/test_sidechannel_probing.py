"""Tests for repro.sidechannel.probing — recovering the column 1-norms."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray
from repro.crossbar.devices import IDEAL_DEVICE, NVMDeviceModel
from repro.crossbar.mapping import ConductanceMapping
from repro.nn.gradients import weight_column_norms
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber, ProbeResult


def make_prober(weights, *, device=IDEAL_DEVICE, noise_std=0.0, measure_baseline=False, seed=0):
    array = CrossbarArray(weights, mapping=ConductanceMapping(device=device), random_state=seed)
    measurement = PowerMeasurement(array, noise_std=noise_std, random_state=seed)
    return ColumnNormProber(
        measurement, weights.shape[1], measure_baseline=measure_baseline
    ), array


class TestProbeAll:
    def test_recovers_exact_column_sums_ideal(self, rng):
        weights = rng.normal(size=(5, 8))
        prober, array = make_prober(weights)
        result = prober.probe_all()
        np.testing.assert_allclose(result.column_sums, array.column_conductance_sums, atol=1e-12)
        assert result.queries_used == 8

    def test_recovered_sums_proportional_to_1_norms(self, rng):
        """Section II-B: probing reveals the weight-column 1-norms."""
        weights = rng.normal(size=(6, 10))
        prober, _ = make_prober(weights)
        recovered = prober.probe_all().column_sums
        true_norms = weight_column_norms(weights)
        assert np.corrcoef(recovered, true_norms)[0, 1] > 1 - 1e-10

    def test_estimate_column_norms_rescaled(self, rng):
        weights = rng.normal(size=(4, 6))
        prober, _ = make_prober(weights)
        estimate = prober.estimate_column_norms(reference_weights=weights)
        true_norms = weight_column_norms(weights)
        assert estimate.max() == pytest.approx(true_norms.max())

    def test_baseline_removes_gmin_offset(self, rng):
        device = NVMDeviceModel(name="offset", g_min=0.05, g_max=1.0)
        weights = rng.normal(size=(5, 7))
        prober, array = make_prober(weights, device=device, measure_baseline=True)
        result = prober.probe_all()
        # After offset correction the ordering must match the true 1-norms.
        true_norms = weight_column_norms(weights)
        assert np.corrcoef(result.column_sums, true_norms)[0, 1] > 0.999
        assert result.queries_used == 8  # 7 probes + 1 baseline

    def test_argmax_identifies_strongest_column(self, rng):
        weights = rng.normal(size=(5, 9))
        weights[:, 4] *= 10  # make column 4 dominate
        prober, _ = make_prober(weights)
        assert prober.probe_all().argmax() == 4

    def test_noisy_probing_still_ranks_well(self, rng):
        weights = rng.normal(size=(8, 20))
        weights[:, 3] *= 5
        prober, _ = make_prober(weights, noise_std=0.02, seed=1)
        result = prober.probe_all()
        assert result.argmax() == 3


class TestProbeSubsets:
    def test_probe_indices_subset(self, rng):
        weights = rng.normal(size=(4, 10))
        prober, array = make_prober(weights)
        result = prober.probe_indices([2, 5, 7])
        np.testing.assert_allclose(
            result.column_sums, array.column_conductance_sums[[2, 5, 7]], atol=1e-12
        )
        assert result.queries_used == 3

    def test_probe_indices_validation(self, rng):
        prober, _ = make_prober(rng.normal(size=(3, 5)))
        with pytest.raises(ValueError):
            prober.probe_indices([])
        with pytest.raises(ValueError):
            prober.probe_indices([7])
        with pytest.raises(ValueError):
            prober.probe_indices([-1])

    def test_full_vector_fills_unknown(self, rng):
        prober, _ = make_prober(rng.normal(size=(3, 6)))
        result = prober.probe_indices([1, 3])
        vector = result.full_vector(6)
        assert np.isnan(vector[0]) and not np.isnan(vector[1])

    def test_ranking_descending(self, rng):
        weights = rng.normal(size=(4, 6))
        prober, _ = make_prober(weights)
        result = prober.probe_all()
        ranked_values = result.column_sums[np.argsort(result.column_sums)[::-1]]
        assert np.all(np.diff(ranked_values) <= 0)
        assert result.ranking()[0] == result.argmax()


class TestBatchedProbing:
    def test_probe_round_is_one_batched_measurement(self, rng):
        """All basis vectors plus the baseline go out as a single query."""
        weights = rng.normal(size=(4, 7))
        prober, _ = make_prober(weights, measure_baseline=True)
        calls = []
        original = prober.measurement.measure

        def counting_measure(inputs):
            calls.append(np.atleast_2d(inputs).shape)
            return original(inputs)

        prober.measurement.measure = counting_measure
        result = prober.probe_all()
        assert calls == [(8, 7)]  # 7 basis vectors + 1 baseline, one call
        assert result.queries_used == 8

    def test_per_column_reference_mode_issues_one_query_per_column(self, rng):
        weights = rng.normal(size=(4, 7))
        array = CrossbarArray(weights, random_state=0)
        measurement = PowerMeasurement(array)
        prober = ColumnNormProber(measurement, 7, measure_baseline=True, batched=False)
        calls = []
        original = measurement.measure

        def counting_measure(inputs):
            calls.append(np.atleast_2d(inputs).shape)
            return original(inputs)

        measurement.measure = counting_measure
        result = prober.probe_all()
        assert len(calls) == 8  # baseline + one call per column
        assert result.queries_used == 8
        np.testing.assert_allclose(
            result.column_sums, array.column_conductance_sums, atol=1e-12
        )


class TestProbeResultValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ProbeResult(indices=[1, 2], column_sums=[1.0], baseline=0.0, queries_used=2)

    def test_drive_voltage_scaling(self, rng):
        weights = rng.normal(size=(4, 5))
        array = CrossbarArray(weights, random_state=0)
        measurement = PowerMeasurement(array)
        low_voltage = ColumnNormProber(measurement, 5, drive_voltage=0.5)
        result = low_voltage.probe_all()
        np.testing.assert_allclose(result.column_sums, array.column_conductance_sums, atol=1e-12)

    def test_invalid_construction(self, rng):
        measurement = PowerMeasurement(CrossbarArray(rng.normal(size=(3, 4)), random_state=0))
        with pytest.raises(ValueError):
            ColumnNormProber(measurement, 0)
        with pytest.raises(ValueError):
            ColumnNormProber(measurement, 4, drive_voltage=0.0)
