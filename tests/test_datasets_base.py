"""Tests for repro.datasets.base."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, train_test_split
from repro.datasets.transforms import one_hot


def make_dataset(n_train=20, n_test=10, n_features=12, n_classes=3, image_shape=(3, 4)):
    rng = np.random.default_rng(0)
    return Dataset(
        name="toy",
        train_inputs=rng.uniform(size=(n_train, n_features)),
        train_targets=one_hot(rng.integers(0, n_classes, size=n_train), n_classes),
        test_inputs=rng.uniform(size=(n_test, n_features)),
        test_targets=one_hot(rng.integers(0, n_classes, size=n_test), n_classes),
        image_shape=image_shape,
    )


class TestDatasetValidation:
    def test_properties(self):
        ds = make_dataset()
        assert ds.n_train == 20
        assert ds.n_test == 10
        assert ds.n_features == 12
        assert ds.n_classes == 3

    def test_sample_count_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                train_inputs=np.zeros((5, 4)),
                train_targets=np.zeros((4, 2)),
                test_inputs=np.zeros((2, 4)),
                test_targets=np.zeros((2, 2)),
            )

    def test_feature_count_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                train_inputs=np.zeros((5, 4)),
                train_targets=np.zeros((5, 2)),
                test_inputs=np.zeros((2, 3)),
                test_targets=np.zeros((2, 2)),
            )

    def test_image_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_dataset(image_shape=(5, 5))

    def test_labels_derived_from_one_hot(self):
        ds = make_dataset()
        assert ds.train_labels.shape == (20,)
        assert set(np.unique(ds.train_labels)).issubset({0, 1, 2})


class TestDatasetOperations:
    def test_images_reshape(self):
        ds = make_dataset()
        assert ds.train_images().shape == (20, 3, 4)
        assert ds.test_images().shape == (10, 3, 4)

    def test_images_without_shape_raise(self):
        ds = make_dataset(image_shape=None)
        with pytest.raises(ValueError):
            ds.train_images()

    def test_batches_cover_split(self):
        ds = make_dataset()
        seen = 0
        for inputs, targets in ds.batches(7, split="train"):
            assert len(inputs) == len(targets)
            seen += len(inputs)
        assert seen == ds.n_train

    def test_batches_invalid_split(self):
        with pytest.raises(ValueError):
            list(make_dataset().batches(4, split="validation"))

    def test_batches_invalid_size(self):
        with pytest.raises(ValueError):
            list(make_dataset().batches(0))

    def test_batches_shuffle_is_deterministic_with_seed(self):
        ds = make_dataset()
        a = [x[0].copy() for x in ds.batches(5, shuffle=True, random_state=1)]
        b = [x[0].copy() for x in ds.batches(5, shuffle=True, random_state=1)]
        for batch_a, batch_b in zip(a, b):
            np.testing.assert_array_equal(batch_a, batch_b)

    def test_subset_sizes(self):
        subset = make_dataset().subset(n_train=5, n_test=3, random_state=0)
        assert subset.n_train == 5 and subset.n_test == 3
        assert subset.image_shape == (3, 4)

    def test_subset_too_large(self):
        with pytest.raises(ValueError):
            make_dataset().subset(n_train=100)
        with pytest.raises(ValueError):
            make_dataset().subset(n_test=100)

    def test_query_pool_sizes(self):
        ds = make_dataset()
        assert ds.query_pool(5, random_state=0).shape == (5, 12)
        # More queries than training samples returns the whole training set.
        assert ds.query_pool(10_000, random_state=0).shape == (20, 12)


class TestTrainTestSplit:
    def test_split_fractions(self, rng):
        inputs = rng.uniform(size=(100, 6))
        labels = rng.integers(0, 4, size=100)
        ds = train_test_split(inputs, labels, test_fraction=0.25, random_state=0)
        assert ds.n_test == 25
        assert ds.n_train == 75
        assert ds.n_classes == 4

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(rng.uniform(size=(10, 3)), np.zeros(10, dtype=int), test_fraction=1.5)

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            train_test_split(rng.uniform(size=(10, 3)), np.zeros(9, dtype=int))
