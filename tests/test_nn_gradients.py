"""Tests for repro.nn.gradients — the sensitivity analysis of Eq. 7/8."""

import numpy as np
import pytest

from repro.nn.gradients import (
    input_gradients,
    mean_sensitivity,
    sensitivity_map,
    weight_column_norms,
)
from repro.nn.losses import MeanSquaredError
from repro.nn.network import SingleLayerNetwork


def numerical_input_gradient(network, loss, single_input, single_target, eps=1e-6):
    grad = np.zeros_like(single_input)
    for i in range(single_input.size):
        plus, minus = single_input.copy(), single_input.copy()
        plus[i] += eps
        minus[i] -= eps
        value_plus = loss.value(network.predict(plus[np.newaxis, :]), single_target[np.newaxis, :])
        value_minus = loss.value(network.predict(minus[np.newaxis, :]), single_target[np.newaxis, :])
        grad[i] = (value_plus - value_minus) / (2 * eps)
    return grad


class TestInputGradients:
    @pytest.mark.parametrize("output", ["linear", "softmax"])
    def test_matches_numerical_gradient(self, output, rng):
        network = SingleLayerNetwork(6, 3, output=output, random_state=0)
        network.weights = rng.normal(scale=0.5, size=(3, 6))
        loss = network.default_loss()
        inputs = rng.uniform(0, 1, size=(4, 6))
        labels = rng.integers(0, 3, size=4)
        targets = np.eye(3)[labels]
        analytic = input_gradients(network, inputs, targets)
        for b in range(len(inputs)):
            numerical = numerical_input_gradient(network, loss, inputs[b], targets[b])
            np.testing.assert_allclose(analytic[b], numerical, atol=1e-4)

    def test_linear_mse_closed_form(self, rng):
        """For y = Wu and per-sample MSE, dL/du = (2/M) W^T (Wu - t) (Eq. 7)."""
        network = SingleLayerNetwork(5, 3, output="linear", random_state=0)
        weights = network.weights
        u = rng.uniform(0, 1, size=(1, 5))
        t = np.eye(3)[[1]]
        expected = (2.0 / 3) * (u @ weights.T - t) @ weights
        np.testing.assert_allclose(input_gradients(network, u, t), expected, atol=1e-10)

    def test_sample_count_mismatch(self, rng):
        network = SingleLayerNetwork(5, 3, output="linear", random_state=0)
        with pytest.raises(ValueError):
            input_gradients(network, rng.normal(size=(2, 5)), np.eye(3))

    def test_explicit_loss_override(self, rng):
        network = SingleLayerNetwork(5, 3, output="softmax", random_state=0)
        inputs = rng.uniform(0, 1, size=(2, 5))
        targets = np.eye(3)[[0, 1]]
        grad_ce = input_gradients(network, inputs, targets)
        grad_mse = input_gradients(network, inputs, targets, loss=MeanSquaredError())
        assert not np.allclose(grad_ce, grad_mse)

    def test_gradients_cleared_after_call(self, rng):
        network = SingleLayerNetwork(5, 3, output="linear", random_state=0)
        input_gradients(network, rng.normal(size=(2, 5)), np.eye(3)[[0, 1]])
        assert network.layers[0].grad_weights is None


class TestSensitivityBound:
    def test_paper_inequality_eq8_elementwise_activation(self, rng):
        """|dL/du_j| <= sum_i |dL/dy_i f'(s_i)| |w_ij| (Eq. 8).

        The paper states the bound for elementwise activations with
        non-negative slope; a sigmoid output with MSE loss satisfies those
        assumptions exactly.
        """
        from repro.nn.layers import Dense
        from repro.nn.network import Sequential

        network = Sequential([Dense(8, 4, activation="sigmoid", random_state=0)])
        network.layers[0].set_weights(rng.normal(scale=0.5, size=(4, 8)))
        inputs = rng.uniform(0, 1, size=(6, 8))
        labels = rng.integers(0, 4, size=6)
        targets = np.eye(4)[labels]

        gradients = np.abs(
            input_gradients(network, inputs, targets, loss=MeanSquaredError())
        )
        pre = network.layers[0].pre_activation(inputs)
        outputs = network.layers[0].activation.forward(pre)
        # per-sample MSE: dL/dy_i = 2 (y_i - t_i) / M
        dl_dy = 2.0 * (outputs - targets) / targets.shape[1]
        f_prime = network.layers[0].activation.derivative(pre)
        bound = np.abs(dl_dy * f_prime) @ np.abs(network.layers[0].weights)
        assert np.all(gradients <= bound + 1e-8)

    def test_triangle_inequality_bound_holds_for_softmax(self, rng):
        """The generic bound |dL/du_j| <= sum_i |dL/ds_i| |w_ij| always holds."""
        network = SingleLayerNetwork(8, 4, output="softmax", random_state=0)
        network.weights = rng.normal(scale=0.5, size=(4, 8))
        inputs = rng.uniform(0, 1, size=(6, 8))
        labels = rng.integers(0, 4, size=6)
        targets = np.eye(4)[labels]

        gradients = np.abs(input_gradients(network, inputs, targets))
        pre = network.layers[0].pre_activation(inputs)
        probabilities = network.layers[0].activation.forward(pre)
        # Fused softmax + CE: dL/ds = p - t (per sample).
        dl_ds = probabilities - targets
        bound = np.abs(dl_ds) @ np.abs(network.weights)
        assert np.all(gradients <= bound + 1e-8)


class TestSensitivityMaps:
    def test_sensitivity_map_is_absolute_gradient(self, rng):
        network = SingleLayerNetwork(5, 3, output="linear", random_state=0)
        inputs = rng.uniform(0, 1, size=(3, 5))
        targets = np.eye(3)[[0, 1, 2]]
        np.testing.assert_allclose(
            sensitivity_map(network, inputs, targets),
            np.abs(input_gradients(network, inputs, targets)),
        )

    def test_mean_sensitivity_shape_and_value(self, rng):
        network = SingleLayerNetwork(5, 3, output="linear", random_state=0)
        inputs = rng.uniform(0, 1, size=(10, 5))
        targets = np.eye(3)[rng.integers(0, 3, size=10)]
        mean_map = mean_sensitivity(network, inputs, targets)
        assert mean_map.shape == (5,)
        assert np.all(mean_map >= 0)


class TestWeightColumnNorms:
    def test_l1_definition(self):
        weights = np.array([[1.0, -2.0], [3.0, 0.5]])
        np.testing.assert_allclose(weight_column_norms(weights), [4.0, 2.5])

    def test_l2_and_inf(self):
        weights = np.array([[3.0, 0.0], [4.0, -2.0]])
        np.testing.assert_allclose(weight_column_norms(weights, order=2), [5.0, 2.0])
        np.testing.assert_allclose(weight_column_norms(weights, order=np.inf), [4.0, 2.0])

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            weight_column_norms(np.eye(2), order=3)

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            weight_column_norms(np.ones(4))

    def test_matches_crossbar_column_sums_for_ideal_mapping(self, rng):
        """The quantity probed through power equals the column 1-norms (Eq. 5-6)."""
        from repro.crossbar.array import CrossbarArray

        weights = rng.normal(size=(6, 9))
        array = CrossbarArray(weights, random_state=0)
        scale = array.mapping.conductance_per_unit_weight(weights)
        np.testing.assert_allclose(
            array.column_conductance_sums / scale,
            weight_column_norms(weights),
            atol=1e-10,
        )
