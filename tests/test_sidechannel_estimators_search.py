"""Tests for repro.sidechannel.estimators and repro.sidechannel.search."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray
from repro.sidechannel.estimators import (
    estimate_column_sums_least_squares,
    estimate_column_sums_nonnegative,
    estimate_column_sums_ridge,
    estimation_error,
)
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber
from repro.sidechannel.search import (
    coarse_to_fine_search,
    exhaustive_search,
    greedy_neighbourhood_search,
    random_subset_search,
)


def make_linear_system(rng, n_queries, n_features, noise=0.0):
    true_sums = np.abs(rng.normal(size=n_features)) + 0.1
    queries = rng.uniform(0, 1, size=(n_queries, n_features))
    currents = queries @ true_sums
    if noise:
        currents = currents + rng.normal(0, noise, size=n_queries)
    return queries, currents, true_sums


class TestEstimators:
    def test_least_squares_exact_when_determined(self, rng):
        queries, currents, true_sums = make_linear_system(rng, 40, 20)
        estimate = estimate_column_sums_least_squares(queries, currents)
        assert estimation_error(true_sums, estimate) < 1e-8

    def test_nonnegative_exact_when_determined(self, rng):
        queries, currents, true_sums = make_linear_system(rng, 40, 20)
        estimate = estimate_column_sums_nonnegative(queries, currents)
        assert estimation_error(true_sums, estimate) < 1e-6
        assert np.all(estimate >= 0)

    def test_nonnegative_solution_valid_when_underdetermined(self, rng):
        queries, currents, true_sums = make_linear_system(rng, 15, 40)
        plain = estimate_column_sums_least_squares(queries, currents)
        nonneg = estimate_column_sums_nonnegative(queries, currents)
        assert np.all(nonneg >= 0)
        # both estimates must explain the observed currents
        np.testing.assert_allclose(queries @ plain, currents, atol=1e-6)
        np.testing.assert_allclose(queries @ nonneg, currents, atol=1e-6)

    def test_ridge_is_stable_with_noise(self, rng):
        queries, currents, true_sums = make_linear_system(rng, 60, 20, noise=0.05)
        estimate = estimate_column_sums_ridge(queries, currents, regularization=1e-2)
        assert estimation_error(true_sums, estimate) < 0.2

    def test_ridge_regularization_validation(self, rng):
        queries, currents, _ = make_linear_system(rng, 10, 5)
        with pytest.raises(ValueError):
            estimate_column_sums_ridge(queries, currents, regularization=-1.0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            estimate_column_sums_least_squares(rng.uniform(size=(5, 3)), rng.uniform(size=4))

    def test_estimation_error_zero_reference(self):
        assert estimation_error(np.zeros(3) + 1e-300, np.zeros(3) + 1e-300) == pytest.approx(
            0.0, abs=1e-6
        )


def make_prober_with_image(rng, height, width, smooth=True, seed=0):
    """Build a crossbar whose column 1-norm map is smooth or rough."""
    n = height * width
    if smooth:
        yy, xx = np.mgrid[0:height, 0:width]
        profile = np.exp(-(((yy - height / 2) ** 2 + (xx - width / 2) ** 2) / (2 * (height / 4) ** 2)))
    else:
        profile = rng.uniform(0.1, 1.0, size=(height, width))
    weights = rng.normal(size=(5, n)) * profile.ravel()[np.newaxis, :]
    array = CrossbarArray(weights, random_state=seed)
    measurement = PowerMeasurement(array, random_state=seed)
    prober = ColumnNormProber(measurement, n)
    true_best = int(np.argmax(array.column_conductance_sums))
    return prober, true_best


class TestSearchStrategies:
    def test_exhaustive_finds_true_maximum(self, rng):
        prober, true_best = make_prober_with_image(rng, 8, 8)
        result = exhaustive_search(prober)
        assert result.best_index == true_best
        assert result.queries_used == 64

    def test_random_subset_respects_budget(self, rng):
        prober, _ = make_prober_with_image(rng, 8, 8)
        result = random_subset_search(prober, budget=20, random_state=0)
        assert result.queries_used == 20
        assert len(result.probed_indices) == 20

    def test_random_subset_budget_clipped_to_n(self, rng):
        prober, true_best = make_prober_with_image(rng, 4, 4)
        result = random_subset_search(prober, budget=100, random_state=0)
        assert result.queries_used == 16
        assert result.best_index == true_best

    def test_greedy_search_on_smooth_map_beats_random(self, rng):
        """The paper's smoothness argument: hill-climbing works when the
        1-norm map changes gradually over the image plane."""
        found_greedy, found_random = 0, 0
        for seed in range(5):
            local_rng = np.random.default_rng(seed)
            prober_g, true_best = make_prober_with_image(local_rng, 12, 12, smooth=True, seed=seed)
            greedy = greedy_neighbourhood_search(
                prober_g, (12, 12), budget=50, n_restarts=4, random_state=seed
            )
            prober_r, _ = make_prober_with_image(
                np.random.default_rng(seed), 12, 12, smooth=True, seed=seed
            )
            random_result = random_subset_search(prober_r, budget=50, random_state=seed)
            found_greedy += int(greedy.best_index == true_best)
            found_random += int(random_result.best_index == true_best)
        assert found_greedy >= found_random

    def test_greedy_respects_budget(self, rng):
        prober, _ = make_prober_with_image(rng, 10, 10)
        result = greedy_neighbourhood_search(prober, (10, 10), budget=30, random_state=0)
        assert result.queries_used <= 30 + 4  # neighbour batch may finish the last step

    def test_greedy_shape_mismatch(self, rng):
        prober, _ = make_prober_with_image(rng, 6, 6)
        with pytest.raises(ValueError):
            greedy_neighbourhood_search(prober, (5, 5), budget=10)

    def test_coarse_to_fine_on_smooth_map(self, rng):
        prober, true_best = make_prober_with_image(rng, 16, 16, smooth=True)
        result = coarse_to_fine_search(prober, (16, 16), coarse_stride=4, refine_radius=3)
        assert result.queries_used < 16 * 16
        # On a smooth unimodal map the refined search should land at (or next
        # to) the true maximum.
        best_row, best_col = divmod(result.best_index, 16)
        true_row, true_col = divmod(true_best, 16)
        assert abs(best_row - true_row) <= 1 and abs(best_col - true_col) <= 1

    def test_coarse_to_fine_shape_mismatch(self, rng):
        prober, _ = make_prober_with_image(rng, 6, 6)
        with pytest.raises(ValueError):
            coarse_to_fine_search(prober, (7, 7))

    def test_search_results_record_strategy(self, rng):
        prober, _ = make_prober_with_image(rng, 6, 6)
        assert exhaustive_search(prober).metadata["strategy"] == "exhaustive"
