"""Tests for repro.nn.network."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import CategoricalCrossEntropy, MeanSquaredError
from repro.nn.network import Sequential, SingleLayerNetwork


class TestSequential:
    def test_add_checks_dimension_compatibility(self):
        net = Sequential([Dense(4, 3, random_state=0)])
        with pytest.raises(ValueError):
            net.add(Dense(5, 2, random_state=0))

    def test_forward_composition(self, rng):
        first = Dense(4, 3, activation="relu", random_state=0)
        second = Dense(3, 2, activation="linear", random_state=1)
        net = Sequential([first, second])
        inputs = rng.normal(size=(5, 4))
        expected = second.forward(first.forward(inputs))
        np.testing.assert_allclose(net.forward(inputs), expected)

    def test_predict_labels(self, rng):
        net = Sequential([Dense(4, 3, random_state=0)])
        labels = net.predict_labels(rng.normal(size=(6, 4)))
        assert labels.shape == (6,)
        assert labels.dtype.kind == "i"

    def test_empty_network_raises(self):
        with pytest.raises(RuntimeError):
            Sequential().forward(np.zeros((1, 3)))

    def test_parameters_and_gradient_keys_align(self, rng):
        net = Sequential([Dense(4, 3, random_state=0), Dense(3, 2, random_state=1)])
        net.forward(rng.normal(size=(2, 4)), training=True)
        net.backward(rng.normal(size=(2, 2)))
        assert set(net.parameters) == set(net.gradients)

    def test_n_parameters(self):
        net = Sequential([Dense(4, 3, random_state=0), Dense(3, 2, use_bias=True, random_state=1)])
        assert net.n_parameters() == 4 * 3 + 3 * 2 + 2

    def test_save_and_load_roundtrip(self, tmp_path, rng):
        net = Sequential([Dense(4, 3, random_state=0)])
        path = tmp_path / "model.npz"
        net.save(path)
        clone = Sequential([Dense(4, 3, random_state=99)])
        clone.load(path)
        np.testing.assert_allclose(clone.layers[0].weights, net.layers[0].weights)

    def test_load_missing_layer_raises(self, tmp_path):
        net = Sequential([Dense(4, 3, random_state=0)])
        path = tmp_path / "model.npz"
        net.save(path)
        bigger = Sequential([Dense(4, 3, random_state=0), Dense(3, 2, random_state=0)])
        with pytest.raises(KeyError):
            bigger.load(path)

    def test_multilayer_backward_gradient_check(self, rng):
        """End-to-end gradient check through a two-layer network."""
        net = Sequential(
            [Dense(5, 4, activation="tanh", random_state=0), Dense(4, 3, random_state=1)]
        )
        inputs = rng.normal(size=(3, 5))
        targets = rng.normal(size=(3, 3))
        loss = MeanSquaredError()
        outputs = net.forward(inputs, training=True)
        net.backward(loss.gradient(outputs, targets))
        analytic = net.layers[0].grad_weights.copy()

        eps = 1e-6
        numerical = np.zeros_like(analytic)
        weights = net.layers[0].weights
        for index in np.ndindex(weights.shape):
            original = weights[index]
            weights[index] = original + eps
            plus = loss.value(net.forward(inputs), targets)
            weights[index] = original - eps
            minus = loss.value(net.forward(inputs), targets)
            weights[index] = original
            numerical[index] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)


class TestSingleLayerNetwork:
    def test_invalid_output_rejected(self):
        with pytest.raises(ValueError):
            SingleLayerNetwork(4, 3, output="relu")

    def test_linear_default_loss(self):
        net = SingleLayerNetwork(4, 3, output="linear", random_state=0)
        assert isinstance(net.default_loss(), MeanSquaredError)
        assert not net.uses_softmax()

    def test_softmax_default_loss(self):
        net = SingleLayerNetwork(4, 3, output="softmax", random_state=0)
        assert isinstance(net.default_loss(), CategoricalCrossEntropy)
        assert net.uses_softmax()

    def test_weights_property_roundtrip(self, rng):
        net = SingleLayerNetwork(4, 3, output="linear", random_state=0)
        new_weights = rng.normal(size=(3, 4))
        net.weights = new_weights
        np.testing.assert_allclose(net.weights, new_weights)

    def test_clone_architecture_matches_shape_but_not_values(self):
        net = SingleLayerNetwork(6, 3, output="softmax", random_state=0)
        clone = net.clone_architecture(random_state=1)
        assert clone.weights.shape == net.weights.shape
        assert clone.output_type == "softmax"
        assert not np.allclose(clone.weights, net.weights)

    def test_output_matches_paper_equation(self, rng):
        """y = f(W u) with no bias, per Eq. 4."""
        net = SingleLayerNetwork(5, 3, output="linear", random_state=0)
        u = rng.normal(size=5)
        np.testing.assert_allclose(net.predict(u)[0], net.weights @ u)
