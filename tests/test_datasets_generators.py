"""Tests for the synthetic MNIST-like and CIFAR-like dataset generators.

These tests check the statistical properties the paper's experiments rely on
(documented in DESIGN.md): value range, class balance, determinism, centre
concentration / smoothness for the digits, and spatial roughness plus low
linear separability for the objects.
"""

import numpy as np
import pytest

from repro.datasets import available_datasets, load_dataset
from repro.datasets.synthetic_digits import SyntheticDigitsGenerator, load_mnist_like
from repro.datasets.synthetic_objects import SyntheticObjectsGenerator, load_cifar_like


class TestSyntheticDigits:
    def test_shapes_and_range(self, mnist_small):
        assert mnist_small.n_features == 28 * 28
        assert mnist_small.n_classes == 10
        assert mnist_small.train_inputs.min() >= 0.0
        assert mnist_small.train_inputs.max() <= 1.0
        assert mnist_small.image_shape == (28, 28)

    def test_class_balance(self, mnist_small):
        counts = np.bincount(mnist_small.train_labels, minlength=10)
        assert counts.min() >= counts.max() - 1

    def test_deterministic_given_seed(self):
        a = load_mnist_like(n_train=50, n_test=20, random_state=7)
        b = load_mnist_like(n_train=50, n_test=20, random_state=7)
        np.testing.assert_allclose(a.train_inputs, b.train_inputs)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = load_mnist_like(n_train=50, n_test=20, random_state=1)
        b = load_mnist_like(n_train=50, n_test=20, random_state=2)
        assert not np.allclose(a.train_inputs, b.train_inputs)

    def test_energy_concentrated_in_centre(self, mnist_small):
        """Digit mass must be concentrated away from the border (MNIST-like)."""
        images = mnist_small.train_images()
        border = np.concatenate(
            [images[:, :4, :].ravel(), images[:, -4:, :].ravel(),
             images[:, :, :4].ravel(), images[:, :, -4:].ravel()]
        )
        centre = images[:, 10:18, 10:18].ravel()
        assert centre.mean() > 3 * border.mean()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticDigitsGenerator(brush_sigma=0)
        with pytest.raises(ValueError):
            SyntheticDigitsGenerator(noise_level=-1)
        with pytest.raises(ValueError):
            SyntheticDigitsGenerator(deformation=-0.1)

    def test_sample_class_bounds(self, rng):
        generator = SyntheticDigitsGenerator(random_state=0)
        with pytest.raises(ValueError):
            generator.sample_class(10, 1, rng)

    def test_prototypes_are_distinct(self):
        generator = SyntheticDigitsGenerator(random_state=0)
        flattened = generator.prototypes.reshape(10, -1)
        correlations = np.corrcoef(flattened)
        off_diagonal = correlations[~np.eye(10, dtype=bool)]
        assert off_diagonal.max() < 0.95

    def test_custom_image_size(self):
        ds = load_mnist_like(n_train=30, n_test=10, image_size=14, random_state=0)
        assert ds.n_features == 14 * 14
        assert ds.image_shape == (14, 14)


class TestSyntheticObjects:
    def test_shapes_and_range(self, cifar_small):
        assert cifar_small.n_features == 32 * 32 * 3
        assert cifar_small.image_shape == (32, 32, 3)
        assert cifar_small.train_inputs.min() >= 0.0
        assert cifar_small.train_inputs.max() <= 1.0

    def test_class_balance(self, cifar_small):
        counts = np.bincount(cifar_small.train_labels, minlength=10)
        assert counts.min() >= counts.max() - 1

    def test_deterministic_given_seed(self):
        a = load_cifar_like(n_train=30, n_test=10, random_state=3)
        b = load_cifar_like(n_train=30, n_test=10, random_state=3)
        np.testing.assert_allclose(a.train_inputs, b.train_inputs)

    def test_mean_color_carries_no_class_information(self, cifar_small):
        """Per-sample tint is class-independent, keeping the task hard."""
        images = cifar_small.train_images()
        mean_colors = images.mean(axis=(1, 2))  # (B, 3)
        labels = cifar_small.train_labels
        class_means = np.stack([mean_colors[labels == c].mean(axis=0) for c in range(10)])
        assert class_means.std(axis=0).max() < 0.03

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticObjectsGenerator(texture_strength=0)
        with pytest.raises(ValueError):
            SyntheticObjectsGenerator(noise_level=-0.1)
        with pytest.raises(ValueError):
            SyntheticObjectsGenerator(phase_jitter=-1)

    def test_class_texture_bounds(self):
        generator = SyntheticObjectsGenerator(random_state=0)
        with pytest.raises(ValueError):
            generator.class_texture(11, np.zeros(3))


class TestSeparabilityContrast:
    def test_single_layer_accuracy_gap(self, mnist_small, cifar_small):
        """MNIST-like must be much easier for a single layer than CIFAR-like.

        This is the key statistical property behind the paper's dataset
        contrast (high accuracy on MNIST, ~30-40% on CIFAR-10).
        """
        from repro.nn.trainer import train_single_layer

        _, mnist_trainer = train_single_layer(
            mnist_small, output="softmax", epochs=15, random_state=0
        )
        _, cifar_trainer = train_single_layer(
            cifar_small, output="softmax", epochs=15, random_state=0
        )
        _, mnist_acc = mnist_trainer.evaluate(mnist_small.test_inputs, mnist_small.test_targets)
        _, cifar_acc = cifar_trainer.evaluate(cifar_small.test_inputs, cifar_small.test_targets)
        assert mnist_acc > 0.8
        assert cifar_acc < 0.6
        assert mnist_acc - cifar_acc > 0.25


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert "mnist-like" in names and "cifar-like" in names

    def test_aliases(self):
        ds = load_dataset("mnist", n_train=20, n_test=10, random_state=0)
        assert ds.name == "mnist-like"
        ds = load_dataset("cifar10", n_train=20, n_test=10, random_state=0)
        assert ds.name == "cifar-like"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")
