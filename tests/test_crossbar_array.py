"""Tests for repro.crossbar.array — Eq. 3-5 correctness and non-idealities."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray
from repro.crossbar.devices import IDEAL_DEVICE
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig


class TestIdealBehaviour:
    def test_matvec_equals_weight_product(self, rng):
        """Eq. 3-4: the ideal crossbar computes s = W u exactly (up to scale)."""
        weights = rng.normal(size=(4, 7))
        array = CrossbarArray(weights, random_state=0)
        u = rng.uniform(0, 1, size=7)
        scale = array.mapping.conductance_per_unit_weight(weights)
        np.testing.assert_allclose(array.matvec(u) / scale, weights @ u, atol=1e-12)

    def test_matvec_batched(self, rng):
        weights = rng.normal(size=(3, 5))
        array = CrossbarArray(weights, random_state=0)
        batch = rng.uniform(0, 1, size=(6, 5))
        scale = array.mapping.conductance_per_unit_weight(weights)
        np.testing.assert_allclose(array.matvec(batch) / scale, batch @ weights.T, atol=1e-12)

    def test_total_current_equals_eq5(self, rng):
        """Eq. 5: i_total = sum_j v_j * G_j."""
        weights = rng.normal(size=(5, 6))
        array = CrossbarArray(weights, random_state=0)
        u = rng.uniform(0, 1, size=6)
        expected = float(u @ array.column_conductance_sums)
        assert array.total_current(u) == pytest.approx(expected)

    def test_total_current_batched_shape(self, rng):
        weights = rng.normal(size=(5, 6))
        array = CrossbarArray(weights, random_state=0)
        batch = rng.uniform(0, 1, size=(4, 6))
        assert array.total_current(batch).shape == (4,)

    def test_effective_weights_match_programmed(self, rng):
        weights = rng.normal(size=(4, 4))
        array = CrossbarArray(weights, random_state=0)
        np.testing.assert_allclose(array.effective_weights, weights, atol=1e-12)

    def test_static_power_quadratic_in_voltage(self, rng):
        weights = np.abs(rng.normal(size=(3, 4)))
        array = CrossbarArray(weights, random_state=0)
        u = rng.uniform(0, 1, size=4)
        assert array.static_power(2 * u) == pytest.approx(4 * array.static_power(u))

    def test_wrong_input_size_raises(self, rng):
        array = CrossbarArray(rng.normal(size=(3, 4)), random_state=0)
        with pytest.raises(ValueError):
            array.matvec(np.zeros(5))
        with pytest.raises(ValueError):
            array.total_current(np.zeros((2, 5)))

    def test_shape_properties(self, rng):
        array = CrossbarArray(rng.normal(size=(3, 4)), random_state=0)
        assert array.shape == (3, 4)
        assert array.n_rows == 3
        assert array.n_columns == 4


class TestNonidealities:
    def test_read_noise_makes_outputs_stochastic(self, rng):
        device = IDEAL_DEVICE.with_noise(read_noise=0.05)
        weights = rng.normal(size=(4, 6))
        array = CrossbarArray(
            weights, mapping=ConductanceMapping(device=device), random_state=0
        )
        u = rng.uniform(0, 1, size=6)
        first, second = array.matvec(u), array.matvec(u)
        assert not np.allclose(first, second)

    def test_stuck_devices_change_effective_weights(self, rng):
        weights = rng.normal(size=(10, 10))
        config = NonidealityConfig(stuck_at_off_fraction=0.3, stuck_at_on_fraction=0.1)
        array = CrossbarArray(weights, nonidealities=config, random_state=0)
        assert not np.allclose(array.effective_weights, weights)

    def test_stuck_at_on_raises_total_current(self, rng):
        weights = rng.normal(size=(8, 8))
        ideal = CrossbarArray(weights, random_state=0)
        stuck_on = CrossbarArray(
            weights,
            nonidealities=NonidealityConfig(stuck_at_on_fraction=0.5),
            random_state=0,
        )
        u = np.ones(8)
        assert stuck_on.total_current(u) > ideal.total_current(u)

    def test_ir_drop_attenuates_current(self, rng):
        weights = np.abs(rng.normal(size=(6, 6)))
        ideal = CrossbarArray(weights, random_state=0)
        lossy = CrossbarArray(
            weights,
            nonidealities=NonidealityConfig(wire_resistance=0.5),
            random_state=0,
        )
        u = np.ones(6)
        assert lossy.total_current(u) < ideal.total_current(u)
        assert np.all(np.abs(lossy.matvec(u)) <= np.abs(ideal.matvec(u)) + 1e-12)

    def test_measurement_noise_on_total_current(self, rng):
        weights = rng.normal(size=(4, 4))
        array = CrossbarArray(
            weights,
            nonidealities=NonidealityConfig(current_measurement_noise=0.05),
            random_state=0,
        )
        u = np.ones(4)
        readings = np.array([array.total_current(u) for _ in range(50)])
        assert readings.std() > 0

    def test_temperature_drift_scales_conductances(self, rng):
        weights = np.abs(rng.normal(size=(4, 4)))
        # Leave headroom below g_max so the +10% drift is not clipped.
        mapping = ConductanceMapping(weight_scale=2 * float(np.abs(weights).max()))
        nominal = CrossbarArray(weights, mapping=mapping, random_state=0)
        drifted = CrossbarArray(
            weights,
            mapping=mapping,
            nonidealities=NonidealityConfig(temperature_drift=0.1),
            random_state=0,
        )
        ratio = drifted.column_conductance_sums / nominal.column_conductance_sums
        np.testing.assert_allclose(ratio, 1.1, rtol=1e-6)

    def test_nonideality_validation(self):
        with pytest.raises(ValueError):
            NonidealityConfig(stuck_at_off_fraction=0.7, stuck_at_on_fraction=0.7)
        with pytest.raises(ValueError):
            NonidealityConfig(wire_resistance=-1.0)
        with pytest.raises(ValueError):
            NonidealityConfig(temperature_drift=-2.0)

    def test_is_ideal_flag(self):
        assert NonidealityConfig().is_ideal
        assert not NonidealityConfig(wire_resistance=1.0).is_ideal
