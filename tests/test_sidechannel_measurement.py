"""Tests for repro.sidechannel.measurement."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray
from repro.sidechannel.measurement import PowerMeasurement, QueryBudgetExceeded


class _StaticTarget:
    """A fake crossbar whose total current is a fixed linear function."""

    def __init__(self, column_sums):
        self.column_sums = np.asarray(column_sums, dtype=float)

    def total_current(self, inputs):
        return np.atleast_2d(inputs) @ self.column_sums


class TestMeasurement:
    def test_noise_free_measurement_is_exact(self, rng):
        target = _StaticTarget([1.0, 2.0, 3.0])
        measurement = PowerMeasurement(target)
        u = np.array([1.0, 1.0, 0.5])
        assert measurement.measure(u) == pytest.approx(4.5)

    def test_batch_measurement_shape(self, rng):
        target = _StaticTarget([1.0, 2.0])
        measurement = PowerMeasurement(target)
        readings = measurement.measure(rng.uniform(size=(5, 2)))
        assert readings.shape == (5,)

    def test_noise_added(self, rng):
        target = _StaticTarget([1.0, 1.0])
        measurement = PowerMeasurement(target, noise_std=0.05, random_state=0)
        readings = np.array([measurement.measure(np.ones(2)) for _ in range(200)])
        assert readings.std() > 0
        assert abs(readings.mean() - 2.0) < 0.05

    def test_averaging_reduces_noise(self):
        target = _StaticTarget([1.0, 1.0])
        single = PowerMeasurement(target, noise_std=0.2, n_averages=1, random_state=0)
        averaged = PowerMeasurement(target, noise_std=0.2, n_averages=25, random_state=0)
        u = np.ones(2)
        single_readings = np.array([single.measure(u) for _ in range(200)])
        averaged_readings = np.array([averaged.measure(u) for _ in range(200)])
        assert averaged_readings.std() < single_readings.std() / 3

    def test_query_accounting(self, rng):
        target = _StaticTarget([1.0, 1.0])
        measurement = PowerMeasurement(target, n_averages=2)
        measurement.measure(rng.uniform(size=(3, 2)))
        assert measurement.queries_used == 6
        measurement.reset_counter()
        assert measurement.queries_used == 0

    def test_query_budget_enforced(self, rng):
        target = _StaticTarget([1.0, 1.0])
        measurement = PowerMeasurement(target, query_budget=4)
        measurement.measure(rng.uniform(size=(3, 2)))
        assert measurement.queries_remaining == 1
        with pytest.raises(QueryBudgetExceeded):
            measurement.measure(rng.uniform(size=(2, 2)))

    def test_unbounded_budget(self):
        measurement = PowerMeasurement(_StaticTarget([1.0]))
        assert measurement.queries_remaining is None

    def test_invalid_parameters(self):
        target = _StaticTarget([1.0])
        with pytest.raises(ValueError):
            PowerMeasurement(target, noise_std=-0.1)
        with pytest.raises(ValueError):
            PowerMeasurement(target, n_averages=0)
        with pytest.raises(ValueError):
            PowerMeasurement(target, query_budget=0)

    def test_works_against_real_crossbar(self, rng):
        weights = rng.normal(size=(4, 6))
        array = CrossbarArray(weights, random_state=0)
        measurement = PowerMeasurement(array, random_state=0)
        u = rng.uniform(0, 1, size=6)
        assert measurement.measure(u) == pytest.approx(array.total_current(u))
