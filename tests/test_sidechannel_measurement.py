"""Tests for repro.sidechannel.measurement."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray
from repro.sidechannel.measurement import PowerMeasurement, QueryBudgetExceeded


class _StaticTarget:
    """A fake crossbar whose total current is a fixed linear function."""

    def __init__(self, column_sums):
        self.column_sums = np.asarray(column_sums, dtype=float)

    def total_current(self, inputs):
        return np.atleast_2d(inputs) @ self.column_sums


class TestMeasurement:
    def test_noise_free_measurement_is_exact(self, rng):
        target = _StaticTarget([1.0, 2.0, 3.0])
        measurement = PowerMeasurement(target)
        u = np.array([1.0, 1.0, 0.5])
        assert measurement.measure(u) == pytest.approx(4.5)

    def test_batch_measurement_shape(self, rng):
        target = _StaticTarget([1.0, 2.0])
        measurement = PowerMeasurement(target)
        readings = measurement.measure(rng.uniform(size=(5, 2)))
        assert readings.shape == (5,)

    def test_noise_added(self, rng):
        target = _StaticTarget([1.0, 1.0])
        measurement = PowerMeasurement(target, noise_std=0.05, random_state=0)
        readings = np.array([measurement.measure(np.ones(2)) for _ in range(200)])
        assert readings.std() > 0
        assert abs(readings.mean() - 2.0) < 0.05

    def test_averaging_reduces_noise(self):
        target = _StaticTarget([1.0, 1.0])
        single = PowerMeasurement(target, noise_std=0.2, n_averages=1, random_state=0)
        averaged = PowerMeasurement(target, noise_std=0.2, n_averages=25, random_state=0)
        u = np.ones(2)
        single_readings = np.array([single.measure(u) for _ in range(200)])
        averaged_readings = np.array([averaged.measure(u) for _ in range(200)])
        assert averaged_readings.std() < single_readings.std() / 3

    def test_query_accounting(self, rng):
        target = _StaticTarget([1.0, 1.0])
        measurement = PowerMeasurement(target, n_averages=2)
        measurement.measure(rng.uniform(size=(3, 2)))
        assert measurement.queries_used == 6
        measurement.reset_counter()
        assert measurement.queries_used == 0

    def test_query_budget_enforced(self, rng):
        target = _StaticTarget([1.0, 1.0])
        measurement = PowerMeasurement(target, query_budget=4)
        measurement.measure(rng.uniform(size=(3, 2)))
        assert measurement.queries_remaining == 1
        with pytest.raises(QueryBudgetExceeded):
            measurement.measure(rng.uniform(size=(2, 2)))

    def test_unbounded_budget(self):
        measurement = PowerMeasurement(_StaticTarget([1.0]))
        assert measurement.queries_remaining is None

    def test_invalid_parameters(self):
        target = _StaticTarget([1.0])
        with pytest.raises(ValueError):
            PowerMeasurement(target, noise_std=-0.1)
        with pytest.raises(ValueError):
            PowerMeasurement(target, n_averages=0)
        with pytest.raises(ValueError):
            PowerMeasurement(target, query_budget=0)
        with pytest.raises(ValueError):
            PowerMeasurement(target, quantization_bits=0)


class TestAcquisitionQuantization:
    """The attacker's acquisition ADC (quantization_bits)."""

    def test_batch_snapped_to_level_count(self, rng):
        target = _StaticTarget([1.0, 2.0])
        measurement = PowerMeasurement(target, quantization_bits=2)
        readings = measurement.measure(rng.uniform(size=(64, 2)))
        assert len(np.unique(readings)) <= 4  # 2 bits -> at most 4 levels

    def test_quantization_preserves_batch_range(self, rng):
        target = _StaticTarget([1.0, 2.0])
        batch = rng.uniform(size=(32, 2))
        exact = PowerMeasurement(target).measure(batch)
        quantized = PowerMeasurement(target, quantization_bits=3).measure(batch)
        assert quantized.min() == pytest.approx(exact.min())
        assert quantized.max() == pytest.approx(exact.max())
        assert np.all(np.abs(quantized - exact) <= (exact.max() - exact.min()) / 7)

    def test_none_bits_is_exact(self, rng):
        target = _StaticTarget([1.0, 2.0])
        batch = rng.uniform(size=(16, 2))
        np.testing.assert_array_equal(
            PowerMeasurement(target, quantization_bits=None).measure(batch),
            PowerMeasurement(target).measure(batch),
        )

    def test_zero_range_batch_passes_through(self):
        target = _StaticTarget([1.0, 1.0])
        measurement = PowerMeasurement(target, quantization_bits=4)
        batch = np.ones((5, 2))  # identical rows -> zero dynamic range
        np.testing.assert_allclose(measurement.measure(batch), 2.0)
        # single reads auto-range to a point as well
        assert measurement.measure(np.ones(2)) == pytest.approx(2.0)

    def test_one_bit_collapses_to_extremes(self, rng):
        target = _StaticTarget([1.0, 2.0])
        batch = rng.uniform(size=(32, 2))
        exact = PowerMeasurement(target).measure(batch)
        readings = PowerMeasurement(target, quantization_bits=1).measure(batch)
        assert set(np.round(np.unique(readings), 12)) <= {
            round(exact.min(), 12),
            round(exact.max(), 12),
        }

    def test_fewer_bits_degrade_column_norm_leakage(self, rng):
        """The sweep premise: coarser acquisition -> weaker correlation."""
        column_sums = rng.uniform(0.5, 2.0, size=24)
        target = _StaticTarget(column_sums)
        basis = np.eye(24)
        correlations = []
        for bits in (1, 3, None):
            readings = PowerMeasurement(target, quantization_bits=bits).measure(basis)
            correlations.append(np.corrcoef(readings, column_sums)[0, 1])
        assert correlations[0] < correlations[1] <= correlations[2]
        assert correlations[2] == pytest.approx(1.0)

    def test_fixed_range_quantization_is_batch_invariant(self, rng):
        target = _StaticTarget([1.0, 2.0])
        batch = rng.uniform(size=(32, 2))
        measurement = PowerMeasurement(
            target, quantization_bits=3, range_hint=(0.0, 3.0)
        )
        whole = measurement.measure(batch)
        alone = np.array([measurement.measure(row) for row in batch])
        np.testing.assert_array_equal(whole, alone)
        # the levels come from the configured span, not the batch
        levels = np.unique(whole)
        step = 3.0 / 7
        np.testing.assert_allclose(levels / step, np.rint(levels / step))

    def test_fixed_range_saturates_at_the_rails(self):
        target = _StaticTarget([1.0])
        measurement = PowerMeasurement(
            target, quantization_bits=4, range_hint=(0.0, 1.0)
        )
        readings = measurement.measure(np.array([[-5.0], [0.5], [9.0]]))
        assert readings[0] == pytest.approx(0.0)  # clipped low
        assert readings[2] == pytest.approx(1.0)  # clipped high

    def test_calibrate_mode_freezes_the_first_range(self, rng):
        target = _StaticTarget([1.0, 2.0])
        first = rng.uniform(size=(16, 2))
        measurement = PowerMeasurement(
            target, quantization_bits=4, range_hint="calibrate"
        )
        exact = PowerMeasurement(target).measure(first)
        measurement.measure(first)  # calibrates to this batch's span
        assert measurement._calibrated_range == (
            pytest.approx(exact.min()),
            pytest.approx(exact.max()),
        )
        # later out-of-range acquisitions saturate against the frozen span
        beyond = measurement.measure(np.array([10.0, 10.0]))
        assert beyond == pytest.approx(exact.max())

    def test_invalid_range_hint(self):
        target = _StaticTarget([1.0])
        with pytest.raises(ValueError):
            PowerMeasurement(target, range_hint="autofit")
        with pytest.raises(ValueError):
            PowerMeasurement(target, range_hint=(2.0, 1.0))
        with pytest.raises(ValueError):
            PowerMeasurement(target, range_hint=(0.0, np.inf))

    def test_works_against_real_crossbar(self, rng):
        weights = rng.normal(size=(4, 6))
        array = CrossbarArray(weights, random_state=0)
        measurement = PowerMeasurement(array, random_state=0)
        u = rng.uniform(0, 1, size=6)
        assert measurement.measure(u) == pytest.approx(array.total_current(u))
