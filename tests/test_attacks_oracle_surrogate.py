"""Tests for repro.attacks.oracle, repro.attacks.surrogate and evaluation helpers."""

import numpy as np
import pytest

from repro.attacks.evaluation import accuracy_under_attack, attack_success_rate, strength_sweep
from repro.attacks.fgsm import FastGradientSignMethod
from repro.attacks.oracle import Oracle
from repro.attacks.surrogate import (
    SurrogateAttack,
    SurrogateConfig,
    SurrogateTrainer,
)
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.nn.gradients import weight_column_norms


class TestOracle:
    def test_raw_mode_returns_raw_outputs(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
        response = oracle.query(mnist_small.test_inputs[:5])
        np.testing.assert_allclose(
            response.outputs, trained_linear.predict(mnist_small.test_inputs[:5])
        )
        assert response.output_mode == "raw"

    def test_label_mode_returns_one_hot(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, output_mode="label", random_state=0)
        response = oracle.query(mnist_small.test_inputs[:5])
        assert set(np.unique(response.outputs)).issubset({0.0, 1.0})
        np.testing.assert_array_equal(np.argmax(response.outputs, axis=1), response.labels)

    def test_power_matches_analytic_value(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
        inputs = mnist_small.test_inputs[:4]
        response = oracle.query(inputs)
        expected = inputs @ weight_column_norms(trained_linear.weights)
        np.testing.assert_allclose(response.power, expected)

    def test_power_hidden_when_disabled(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, expose_power=False, random_state=0)
        assert oracle.query(mnist_small.test_inputs[:3]).power is None

    def test_power_noise(self, trained_linear, mnist_small):
        noisy = Oracle(trained_linear, power_noise_std=0.05, random_state=0)
        clean = Oracle(trained_linear, random_state=0)
        inputs = mnist_small.test_inputs[:10]
        assert not np.allclose(noisy.query(inputs).power, clean.query(inputs).power)

    def test_accelerator_target_power_consistent_with_analytic(self, trained_linear, mnist_small):
        """For the ideal crossbar the hardware power equals the analytic one up to scale."""
        accelerator = CrossbarAccelerator(trained_linear, random_state=0)
        hardware_oracle = Oracle(accelerator, random_state=0)
        analytic_oracle = Oracle(trained_linear, random_state=0)
        inputs = mnist_small.test_inputs[:10]
        hardware_power = hardware_oracle.query(inputs).power
        analytic_power = analytic_oracle.query(inputs).power
        assert np.corrcoef(hardware_power, analytic_power)[0, 1] > 1 - 1e-10

    def test_query_counting(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, random_state=0)
        oracle.query(mnist_small.test_inputs[:7])
        oracle.query(mnist_small.test_inputs[:3])
        assert oracle.queries_used == 10
        oracle.reset_counter()
        assert oracle.queries_used == 0

    def test_predict_labels_not_counted(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, random_state=0)
        oracle.predict_labels(mnist_small.test_inputs[:5])
        assert oracle.queries_used == 0

    def test_accuracy_helper(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, random_state=0)
        value = oracle.accuracy(mnist_small.test_inputs, mnist_small.test_targets)
        assert 0.0 <= value <= 1.0

    def test_invalid_output_mode(self, trained_linear):
        with pytest.raises(ValueError):
            Oracle(trained_linear, output_mode="logits")


class TestSurrogateConfig:
    def test_defaults_valid(self):
        SurrogateConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            SurrogateConfig(power_loss_weight=-1.0)
        with pytest.raises(ValueError):
            SurrogateConfig(epochs=0)
        with pytest.raises(ValueError):
            SurrogateConfig(power_normalization="weird")
        with pytest.raises(ValueError):
            SurrogateConfig(optimizer="lbfgs")


class TestSurrogateTrainer:
    def test_output_fit_without_power(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
        queries = mnist_small.query_pool(300, random_state=0)
        response = oracle.query(queries)
        trainer = SurrogateTrainer(
            mnist_small.n_features,
            mnist_small.n_classes,
            config=SurrogateConfig(epochs=150),
            random_state=0,
        )
        surrogate = trainer.fit(response.queries, response.outputs, None)
        predictions = surrogate.predict(queries)
        assert np.mean((predictions - response.outputs) ** 2) < 1e-2

    def test_power_term_improves_column_norm_recovery(self, trained_linear, mnist_small):
        """The power loss must pull the surrogate's column 1-norms towards the victim's."""
        oracle = Oracle(trained_linear, output_mode="label", random_state=0)
        queries = mnist_small.query_pool(300, random_state=1)
        response = oracle.query(queries)
        true_norms = weight_column_norms(trained_linear.weights)

        correlations = {}
        for lam in (0.0, 0.01):
            trainer = SurrogateTrainer(
                mnist_small.n_features,
                mnist_small.n_classes,
                config=SurrogateConfig(power_loss_weight=lam, epochs=200),
                random_state=3,
            )
            surrogate = trainer.fit(response.queries, response.outputs, response.power)
            correlations[lam] = np.corrcoef(
                weight_column_norms(surrogate.weights), true_norms
            )[0, 1]
        assert correlations[0.01] > correlations[0.0] + 0.05

    def test_loss_history_recorded(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
        response = oracle.query(mnist_small.query_pool(50, random_state=0))
        trainer = SurrogateTrainer(
            mnist_small.n_features,
            mnist_small.n_classes,
            config=SurrogateConfig(epochs=20, power_loss_weight=0.01),
            random_state=0,
        )
        trainer.fit(response.queries, response.outputs, response.power)
        assert len(trainer.loss_history) == 20
        assert trainer.loss_history[-1]["output_loss"] < trainer.loss_history[0]["output_loss"]

    def test_power_ignored_when_lambda_zero(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
        response = oracle.query(mnist_small.query_pool(50, random_state=0))
        trainer = SurrogateTrainer(
            mnist_small.n_features,
            mnist_small.n_classes,
            config=SurrogateConfig(epochs=10, power_loss_weight=0.0),
            random_state=0,
        )
        trainer.fit(response.queries, response.outputs, response.power)
        assert all(entry["power_loss"] == 0.0 for entry in trainer.loss_history)

    def test_input_validation(self, mnist_small):
        trainer = SurrogateTrainer(mnist_small.n_features, mnist_small.n_classes)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((5, 3)), np.zeros((5, 10)), None)
        with pytest.raises(ValueError):
            trainer.fit(
                np.zeros((5, mnist_small.n_features)), np.zeros((4, mnist_small.n_classes)), None
            )
        with pytest.raises(ValueError):
            trainer.fit(
                np.zeros((5, mnist_small.n_features)),
                np.zeros((5, mnist_small.n_classes)),
                np.zeros(3),
            )


class TestSurrogateAttack:
    def test_end_to_end_attack_hurts_oracle(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
        attack = SurrogateAttack(
            oracle, config=SurrogateConfig(epochs=200), attack_strength=0.1, random_state=0
        )
        result = attack.run(
            mnist_small.query_pool(400, random_state=0),
            mnist_small.test_inputs,
            mnist_small.test_targets,
        )
        assert result.oracle_adversarial_accuracy < result.oracle_clean_accuracy - 0.2
        assert result.surrogate_test_accuracy > 0.5
        assert result.n_queries == 400
        assert result.accuracy_degradation > 0.2

    def test_more_queries_better_surrogate(self, trained_linear, mnist_small):
        accuracies = []
        for n_queries in (20, 400):
            oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
            attack = SurrogateAttack(
                oracle, config=SurrogateConfig(epochs=200), random_state=0
            )
            result = attack.run(
                mnist_small.query_pool(n_queries, random_state=1),
                mnist_small.test_inputs,
                mnist_small.test_targets,
            )
            accuracies.append(result.surrogate_test_accuracy)
        assert accuracies[1] > accuracies[0]


class TestEvaluationHelpers:
    def test_accuracy_under_attack_range(self, trained_softmax, mnist_small):
        attack = FastGradientSignMethod(trained_softmax)
        value = accuracy_under_attack(
            trained_softmax, attack, mnist_small.test_inputs, mnist_small.test_targets, 0.1
        )
        assert 0.0 <= value <= 1.0

    def test_attack_success_rate_counts_flips(self, trained_softmax, mnist_small):
        attack = FastGradientSignMethod(trained_softmax)
        rate = attack_success_rate(
            trained_softmax, attack, mnist_small.test_inputs, mnist_small.test_targets, 0.2
        )
        assert rate > 0.3

    def test_zero_strength_success_rate_is_zero(self, trained_softmax, mnist_small):
        attack = FastGradientSignMethod(trained_softmax)
        rate = attack_success_rate(
            trained_softmax, attack, mnist_small.test_inputs, mnist_small.test_targets, 0.0
        )
        assert rate == pytest.approx(0.0)

    def test_strength_sweep_keys(self, trained_softmax, mnist_small):
        attack = FastGradientSignMethod(trained_softmax)
        sweep = strength_sweep(
            trained_softmax,
            attack,
            mnist_small.test_inputs[:50],
            mnist_small.test_targets[:50],
            [0.0, 0.1, 0.2],
        )
        assert set(sweep) == {0.0, 0.1, 0.2}
        assert sweep[0.2] <= sweep[0.0]

    def test_strength_sweep_with_factory(self, trained_softmax, mnist_small):
        sweep = strength_sweep(
            trained_softmax,
            lambda: FastGradientSignMethod(trained_softmax),
            mnist_small.test_inputs[:30],
            mnist_small.test_targets[:30],
            [0.0, 0.3],
        )
        assert len(sweep) == 2

    def test_accelerator_as_victim(self, accelerator, trained_softmax, mnist_small):
        attack = FastGradientSignMethod(trained_softmax)
        value = accuracy_under_attack(
            accelerator, attack, mnist_small.test_inputs[:50], mnist_small.test_targets[:50], 0.1
        )
        assert 0.0 <= value <= 1.0
