"""Tests for repro.crossbar.mapping — the source of the power side channel."""

import numpy as np
import pytest

from repro.crossbar.devices import IDEAL_DEVICE, RERAM_DEVICE, NVMDeviceModel
from repro.crossbar.mapping import ConductanceMapping, MappingScheme


class TestMinPowerScheme:
    def test_positive_weight_uses_g_plus_only(self):
        mapping = ConductanceMapping(device=IDEAL_DEVICE, scheme=MappingScheme.MIN_POWER)
        weights = np.array([[0.5, -0.25]])
        g_plus, g_minus = mapping.map(weights, random_state=0)
        assert g_plus[0, 0] > 0 and g_minus[0, 0] == 0
        assert g_plus[0, 1] == 0 and g_minus[0, 1] > 0

    def test_differential_recovers_weights(self, rng):
        mapping = ConductanceMapping(device=IDEAL_DEVICE)
        weights = rng.normal(size=(4, 6))
        g_plus, g_minus = mapping.map(weights, random_state=0)
        np.testing.assert_allclose(mapping.unmap(g_plus, g_minus, weights), weights, atol=1e-12)

    def test_column_sums_proportional_to_1_norms(self, rng):
        """Eq. 5-6: G_j = scale * sum_i |w_ij| under the ideal min-power mapping."""
        mapping = ConductanceMapping(device=IDEAL_DEVICE)
        weights = rng.normal(size=(5, 7))
        g_plus, g_minus = mapping.map(weights, random_state=0)
        column_sums = mapping.column_conductance_sums(g_plus, g_minus)
        scale = mapping.conductance_per_unit_weight(weights)
        np.testing.assert_allclose(column_sums, scale * np.abs(weights).sum(axis=0), atol=1e-12)

    def test_expected_column_sums_match_actual_for_ideal_device(self, rng):
        mapping = ConductanceMapping(device=IDEAL_DEVICE)
        weights = rng.normal(size=(3, 5))
        g_plus, g_minus = mapping.map(weights, random_state=0)
        np.testing.assert_allclose(
            mapping.expected_column_sums(weights),
            mapping.column_conductance_sums(g_plus, g_minus),
            atol=1e-12,
        )

    def test_nonzero_g_min_adds_affine_offset(self, rng):
        device = NVMDeviceModel(name="d", g_min=0.1, g_max=1.0)
        mapping = ConductanceMapping(device=device)
        weights = rng.normal(size=(4, 6))
        expected = mapping.expected_column_sums(weights)
        scale = mapping.conductance_per_unit_weight(weights)
        np.testing.assert_allclose(
            expected, 2 * 4 * 0.1 + scale * np.abs(weights).sum(axis=0)
        )

    def test_min_power_uses_less_conductance_than_balanced(self, rng):
        weights = rng.normal(size=(6, 8))
        min_power = ConductanceMapping(device=IDEAL_DEVICE, scheme="min_power")
        balanced = ConductanceMapping(device=IDEAL_DEVICE, scheme="balanced")
        mp_plus, mp_minus = min_power.map(weights, random_state=0)
        b_plus, b_minus = balanced.map(weights, random_state=0)
        assert (mp_plus + mp_minus).sum() < (b_plus + b_minus).sum()


class TestBalancedScheme:
    def test_column_sums_carry_no_weight_information(self, rng):
        """The balanced mapping is the natural countermeasure: G_j is constant."""
        mapping = ConductanceMapping(device=IDEAL_DEVICE, scheme=MappingScheme.BALANCED)
        weights = rng.normal(size=(5, 9))
        g_plus, g_minus = mapping.map(weights, random_state=0)
        column_sums = mapping.column_conductance_sums(g_plus, g_minus)
        assert column_sums.std() < 1e-10

    def test_differential_still_recovers_weights(self, rng):
        mapping = ConductanceMapping(device=IDEAL_DEVICE, scheme="balanced")
        weights = rng.normal(size=(4, 6))
        g_plus, g_minus = mapping.map(weights, random_state=0)
        np.testing.assert_allclose(mapping.unmap(g_plus, g_minus, weights), weights, atol=1e-12)

    def test_expected_column_sums_constant(self, rng):
        mapping = ConductanceMapping(device=IDEAL_DEVICE, scheme="balanced")
        weights = rng.normal(size=(4, 6))
        expected = mapping.expected_column_sums(weights)
        np.testing.assert_allclose(expected, expected[0])


class TestScalingAndNoise:
    def test_explicit_weight_scale(self, rng):
        mapping = ConductanceMapping(device=IDEAL_DEVICE, weight_scale=2.0)
        weights = rng.uniform(-1, 1, size=(3, 4))
        assert mapping.resolve_weight_scale(weights) == 2.0
        assert mapping.conductance_per_unit_weight(weights) == pytest.approx(0.5)

    def test_auto_weight_scale_uses_max_abs(self, rng):
        mapping = ConductanceMapping(device=IDEAL_DEVICE)
        weights = np.array([[1.0, -4.0], [2.0, 0.5]])
        assert mapping.resolve_weight_scale(weights) == 4.0

    def test_zero_weight_matrix_handled(self):
        mapping = ConductanceMapping(device=IDEAL_DEVICE)
        g_plus, g_minus = mapping.map(np.zeros((2, 3)), random_state=0)
        np.testing.assert_allclose(g_plus, 0)
        np.testing.assert_allclose(g_minus, 0)

    def test_invalid_weight_scale(self):
        with pytest.raises(ValueError):
            ConductanceMapping(weight_scale=0.0)

    def test_programming_noise_perturbs_conductances(self, rng):
        mapping = ConductanceMapping(device=RERAM_DEVICE)
        weights = rng.normal(size=(8, 8))
        g_plus_a, _ = mapping.map(weights, random_state=1)
        g_plus_b, _ = mapping.map(weights, random_state=2)
        assert not np.allclose(g_plus_a, g_plus_b)

    def test_conductances_respect_device_range(self, rng):
        mapping = ConductanceMapping(device=RERAM_DEVICE)
        weights = rng.normal(size=(8, 8))
        g_plus, g_minus = mapping.map(weights, random_state=0)
        for g in (g_plus, g_minus):
            assert g.min() >= 0.0
            assert g.max() <= RERAM_DEVICE.g_max * (1 + 1e-9)

    def test_scheme_accepts_string(self):
        assert ConductanceMapping(scheme="balanced").scheme is MappingScheme.BALANCED
        with pytest.raises(ValueError):
            ConductanceMapping(scheme="mystery")
