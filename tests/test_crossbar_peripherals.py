"""Tests for repro.crossbar.adc_dac and repro.crossbar.power."""

import numpy as np
import pytest

from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.power import PowerModel, PowerReport


class TestDAC:
    def test_ideal_dac_only_clips(self):
        dac = DAC(n_bits=None, voltage_range=(0.0, 1.0))
        np.testing.assert_allclose(dac.convert(np.array([-0.5, 0.3, 2.0])), [0.0, 0.3, 1.0])

    def test_quantization_levels(self):
        dac = DAC(n_bits=2, voltage_range=(0.0, 1.0))
        values = dac.convert(np.linspace(0, 1, 11))
        levels = np.array([0.0, 1 / 3, 2 / 3, 1.0])
        distances = np.abs(values[:, np.newaxis] - levels[np.newaxis, :]).min(axis=1)
        assert np.all(distances < 1e-12)

    def test_n_levels(self):
        assert DAC(n_bits=4).n_levels == 16
        assert DAC(n_bits=None).n_levels is None

    def test_quantization_error_bounded(self, rng):
        dac = DAC(n_bits=8, voltage_range=(0.0, 1.0))
        values = rng.uniform(0, 1, size=100)
        error = np.abs(dac.convert(values) - values)
        assert error.max() <= 0.5 / 255 + 1e-12

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            DAC(n_bits=0)
        with pytest.raises(ValueError):
            DAC(voltage_range=(1.0, 0.0))


class TestADC:
    def test_symmetric_range(self):
        adc = ADC(n_bits=None, current_range=(-2.0, 2.0))
        np.testing.assert_allclose(adc.convert(np.array([-3.0, 0.5, 3.0])), [-2.0, 0.5, 2.0])

    def test_quantization_is_monotonic(self, rng):
        adc = ADC(n_bits=4, current_range=(-1.0, 1.0))
        values = np.sort(rng.uniform(-1, 1, size=50))
        converted = adc.convert(values)
        assert np.all(np.diff(converted) >= 0)


class TestPowerModel:
    def test_report_fields_consistent(self):
        model = PowerModel(supply_voltage=0.8, integration_time=1e-7)
        report = model.report(np.array([1.0, 2.0]))
        np.testing.assert_allclose(report.power, [0.8, 1.6])
        np.testing.assert_allclose(report.energy, [0.8e-7, 1.6e-7])
        assert report.n_samples == 2
        assert report.n_tiles == 1

    def test_report_with_per_tile_currents(self):
        model = PowerModel()
        report = model.report(np.array([3.0]), [np.array([1.0]), np.array([2.0])])
        assert report.n_tiles == 2
        np.testing.assert_allclose(report.per_tile_current, [[1.0, 2.0]])

    def test_per_tile_count_mismatch_raises(self):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.report(np.array([1.0, 2.0]), [np.array([1.0])])

    def test_combine_sums_currents(self):
        model = PowerModel()
        a = model.report(np.array([1.0, 2.0]))
        b = model.report(np.array([0.5, 0.5]))
        combined = model.combine([a, b])
        np.testing.assert_allclose(combined.total_current, [1.5, 2.5])
        assert combined.n_tiles == 2

    def test_combine_empty_raises(self):
        with pytest.raises(ValueError):
            PowerModel().combine([])

    def test_mean_power_and_total_energy(self):
        report = PowerModel(supply_voltage=1.0, integration_time=2.0).report(
            np.array([1.0, 3.0])
        )
        assert report.mean_power() == pytest.approx(2.0)
        assert report.total_energy() == pytest.approx(8.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerModel(supply_voltage=0.0)
        with pytest.raises(ValueError):
            PowerModel(integration_time=-1.0)

    def test_report_validation(self):
        with pytest.raises(ValueError):
            PowerReport(
                total_current=np.zeros((2, 2)),
                power=np.zeros(2),
                energy=np.zeros(2),
                per_tile_current=np.zeros((2, 1)),
            )

    def test_current_for_unknown_label_names_available_labels(self):
        """Regression: the KeyError must list the labels that do exist."""
        report = PowerReport(
            total_current=np.ones(2),
            power=np.ones(2),
            energy=np.ones(2),
            per_tile_current=np.ones((2, 2)),
            tile_labels=("layer0", "layer1"),
        )
        with pytest.raises(KeyError) as excinfo:
            report.current_for("layer7")
        message = str(excinfo.value)
        assert "layer7" in message
        assert "layer0" in message and "layer1" in message

    def test_current_for_without_labels(self):
        report = PowerReport(
            total_current=np.ones(2),
            power=np.ones(2),
            energy=np.ones(2),
            per_tile_current=np.ones((2, 1)),
        )
        with pytest.raises(ValueError, match="no tile labels"):
            report.current_for("layer0")
