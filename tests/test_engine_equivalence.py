"""Equivalence suite for the fused single-pass simulation engine.

Asserts that the fused/cached/batched paths introduced by the engine refactor
are *observably identical* to the legacy separate/uncached/per-sample paths:

* fused ``forward_with_power`` == separate ``forward`` + ``total_current``
  bit-for-bit on deterministic (ideal) arrays, at every layer of the stack;
* cached vs uncached ``matvec``/``total_current`` agree across all mapping
  schemes and non-ideality configurations;
* batched oracle queries and batched basis-vector probing equal their
  per-sample/per-column reference loops under a fixed seed;
* a power-exposed oracle query traverses the accelerator exactly once per
  batch (the tile-level operation counter), while the legacy two-pass engine
  needed three traversals per tile.
"""

import numpy as np
import pytest

from repro.attacks.oracle import Oracle
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.crossbar.array import CrossbarArray
from repro.crossbar.devices import IDEAL_DEVICE, NVMDeviceModel
from repro.crossbar.mapping import ConductanceMapping, MappingScheme
from repro.crossbar.nonidealities import NonidealityConfig
from repro.crossbar.tile import CrossbarTile
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber

NONIDEALITY_CONFIGS = {
    "ideal": NonidealityConfig(),
    "stuck": NonidealityConfig(stuck_at_off_fraction=0.05, stuck_at_on_fraction=0.02),
    "ir_drop": NonidealityConfig(wire_resistance=0.01),
    "drift": NonidealityConfig(temperature_drift=0.02),
}


def make_array(weights, *, scheme=MappingScheme.MIN_POWER, device=IDEAL_DEVICE,
               nonidealities=None, seed=0):
    return CrossbarArray(
        weights,
        mapping=ConductanceMapping(device=device, scheme=scheme),
        nonidealities=nonidealities,
        random_state=seed,
    )


def make_accelerator(n_inputs=12, hidden=6, n_outputs=4, *, seed=0):
    network = Sequential(
        [
            Dense(n_inputs, hidden, activation="relu", random_state=seed),
            Dense(hidden, n_outputs, activation="softmax", random_state=seed + 1),
        ]
    )
    return CrossbarAccelerator(network, random_state=seed)


class TestFusedMatchesSeparate:
    """(a) fused outputs+power == separate passes, bit-for-bit when ideal."""

    def test_array_fused_equals_separate(self, rng):
        weights = rng.normal(size=(5, 9))
        array = make_array(weights)
        voltages = rng.uniform(0, 1, size=(7, 9))
        outputs, totals = array.matvec_with_current(voltages)
        np.testing.assert_array_equal(outputs, array.matvec(voltages))
        np.testing.assert_array_equal(totals, array.total_current(voltages))

    def test_array_fused_single_vector_shapes(self, rng):
        weights = rng.normal(size=(4, 6))
        array = make_array(weights)
        u = rng.uniform(0, 1, size=6)
        outputs, total = array.matvec_with_current(u)
        assert outputs.shape == (4,)
        assert isinstance(total, float)
        np.testing.assert_array_equal(outputs, array.matvec(u))
        assert total == array.total_current(u)

    def test_tile_fused_equals_separate(self, rng):
        layer = Dense(8, 5, activation="sigmoid", random_state=3)
        tile = CrossbarTile(layer, random_state=0)
        batch = rng.uniform(0, 1, size=(6, 8))
        outputs, totals = tile.forward_with_power(batch)
        np.testing.assert_array_equal(outputs, tile.forward(batch))
        np.testing.assert_array_equal(totals, tile.total_current(batch))

        u = batch[0]
        single_out, single_total = tile.forward_with_power(u)
        assert single_out.shape == (5,)
        assert isinstance(single_total, float)
        np.testing.assert_array_equal(single_out, tile.forward(u))
        assert single_total == tile.total_current(u)

    def test_accelerator_fused_equals_separate(self, rng):
        accelerator = make_accelerator()
        batch = rng.uniform(0, 1, size=(5, 12))
        outputs, report = accelerator.forward_with_power(batch)
        np.testing.assert_array_equal(outputs, accelerator.forward(batch))
        legacy = accelerator.power_trace(batch)
        np.testing.assert_array_equal(report.total_current, legacy.total_current)
        np.testing.assert_array_equal(report.per_tile_current, legacy.per_tile_current)
        assert report.per_tile_current.shape == (5, accelerator.n_tiles)

    def test_fused_consistent_under_read_noise(self):
        """With read noise, outputs and power come from ONE realization."""
        weights = np.random.default_rng(0).normal(size=(6, 10))
        device = IDEAL_DEVICE.with_noise(read_noise=0.05)
        array = make_array(weights, device=device, seed=7)
        u = np.full(10, 0.5)
        outputs, total = array.matvec_with_current(u)
        # The realised conductances satisfy both observables simultaneously:
        # i_s = G_eff v and i_total = G_sums v must be reproducible from one
        # consistent state.  With two independent reads (legacy) the chance of
        # agreement is nil; here we verify internal consistency by checking
        # the fused call realised exactly one state.
        assert array.n_realizations == 1
        assert array.n_operations == 1
        # Separate calls realise separate states (no caching under noise).
        array.matvec(u)
        array.total_current(u)
        assert array.n_realizations == 3


class TestStateCache:
    """(b) cached vs uncached agreement across schemes and configs."""

    @pytest.mark.parametrize("scheme", list(MappingScheme))
    @pytest.mark.parametrize("config_name", sorted(NONIDEALITY_CONFIGS))
    def test_cached_matvec_matches_fresh_array(self, rng, scheme, config_name):
        weights = rng.normal(size=(6, 9))
        config = NONIDEALITY_CONFIGS[config_name]
        cached = make_array(weights, scheme=scheme, nonidealities=config, seed=11)
        fresh = make_array(weights, scheme=scheme, nonidealities=config, seed=11)
        voltages = rng.uniform(0, 1, size=(4, 9))

        cached.matvec(voltages)  # populate the cache
        assert cached.n_realizations == 1
        warm = cached.matvec(voltages)
        assert cached.n_realizations == 1  # second call hit the cache
        cold = fresh.matvec(voltages)
        np.testing.assert_array_equal(warm, cold)
        np.testing.assert_array_equal(
            cached.total_current(voltages), fresh.total_current(voltages)
        )

    @pytest.mark.parametrize("scheme", list(MappingScheme))
    def test_cache_bypassed_with_read_noise(self, rng, scheme):
        weights = rng.normal(size=(5, 7))
        array = make_array(
            weights, scheme=scheme, device=IDEAL_DEVICE.with_noise(read_noise=0.03)
        )
        u = rng.uniform(0, 1, size=7)
        array.matvec(u)
        array.matvec(u)
        assert array.n_realizations == 2

    def test_cache_with_measurement_noise_still_draws_fresh_noise(self, rng):
        weights = rng.normal(size=(5, 7))
        config = NonidealityConfig(current_measurement_noise=0.05)
        array = make_array(weights, nonidealities=config)
        u = np.full(7, 0.8)
        readings = np.array([array.total_current(u) for _ in range(20)])
        assert array.n_realizations == 1  # effective state cached
        assert readings.std() > 0  # but measurement noise is per-read

    def test_rebinding_conductances_invalidates_cache(self, rng):
        weights = rng.normal(size=(4, 6))
        array = make_array(weights)
        u = np.full(6, 1.0)
        before = array.total_current(u)
        array.g_plus = array.g_plus * 2.0  # rebind -> auto-invalidation
        after = array.total_current(u)
        assert after != before
        assert array.n_realizations == 2

    def test_in_place_mutation_requires_explicit_invalidation(self, rng):
        weights = np.abs(rng.normal(size=(4, 6)))
        array = make_array(weights)
        u = np.full(6, 1.0)
        before = array.total_current(u)
        array.g_plus *= 2.0  # in-place: the cache cannot see this
        assert array.total_current(u) == before
        array.invalidate_state_cache()
        assert array.total_current(u) != before


class TestBatchedEqualsLoop:
    """(c) batched oracle/probing == per-sample loops under a fixed seed."""

    def test_batched_oracle_query_equals_per_sample_loop(self, rng):
        accelerator = make_accelerator(seed=2)
        oracle = Oracle(accelerator, expose_power=True, random_state=0)
        batch = rng.uniform(0, 1, size=(9, 12))
        batched = oracle.query(batch)
        singles = [oracle.query(sample) for sample in batch]
        # allclose (not array_equal): BLAS may round gemm vs gemv differently.
        np.testing.assert_allclose(
            batched.outputs, np.concatenate([s.outputs for s in singles]), atol=1e-12
        )
        np.testing.assert_array_equal(
            batched.labels, np.concatenate([s.labels for s in singles])
        )
        np.testing.assert_allclose(
            batched.power, np.concatenate([s.power for s in singles]), atol=1e-12
        )
        assert oracle.queries_used == 18

    def test_batched_probing_equals_per_column_loop(self, rng):
        weights = rng.normal(size=(5, 8))
        device = NVMDeviceModel(name="offset", g_min=0.05, g_max=1.0)
        array = make_array(weights, device=device)

        def probe(batched):
            measurement = PowerMeasurement(array, random_state=0)
            prober = ColumnNormProber(
                measurement, 8, measure_baseline=True, batched=batched
            )
            return prober.probe_all()

        batched, looped = probe(True), probe(False)
        np.testing.assert_allclose(batched.column_sums, looped.column_sums, atol=1e-12)
        assert batched.baseline == pytest.approx(looped.baseline)
        assert batched.queries_used == looped.queries_used == 9


class TestSingleTraversalAccounting:
    """Acceptance criterion: one traversal per power-exposed query batch."""

    def test_power_query_is_single_pass(self, rng):
        accelerator = make_accelerator(seed=5)
        oracle = Oracle(accelerator, expose_power=True, random_state=0)
        accelerator.reset_operation_counters()
        oracle.query(rng.uniform(0, 1, size=(16, 12)))
        # One op per tile for the whole batch — not one per tile per channel.
        for tile in accelerator.tiles:
            assert tile.n_array_operations == 1
        assert accelerator.n_array_operations == accelerator.n_tiles

    def test_legacy_two_pass_costs_three_ops_per_tile(self, rng):
        """The seed engine: forward (1) + power_trace (2) per tile."""
        accelerator = make_accelerator(seed=5)
        batch = rng.uniform(0, 1, size=(4, 12))
        accelerator.reset_operation_counters()
        accelerator.forward(batch)
        activations = batch
        for tile in accelerator.tiles:  # the seed power_trace body
            tile.total_current(activations)
            activations = np.atleast_2d(tile.forward(activations))
        for tile in accelerator.tiles:
            assert tile.n_array_operations == 3

    def test_label_only_query_is_single_pass_too(self, rng):
        accelerator = make_accelerator(seed=5)
        oracle = Oracle(
            accelerator, output_mode="label", expose_power=False, random_state=0
        )
        accelerator.reset_operation_counters()
        oracle.query(rng.uniform(0, 1, size=(8, 12)))
        assert accelerator.n_array_operations == accelerator.n_tiles


class TestAcceleratorTotalCurrentTypes:
    """Satellite: total_current return types for (N,) and (B, N) inputs."""

    def test_single_input_returns_float_multi_tile(self, rng):
        accelerator = make_accelerator()
        value = accelerator.total_current(rng.uniform(0, 1, size=12))
        assert isinstance(value, float)

    def test_batch_of_one_returns_array(self, rng):
        accelerator = make_accelerator()
        value = accelerator.total_current(rng.uniform(0, 1, size=(1, 12)))
        assert isinstance(value, np.ndarray)
        assert value.shape == (1,)

    def test_batch_returns_per_sample_sums(self, rng):
        accelerator = make_accelerator()
        batch = rng.uniform(0, 1, size=(6, 12))
        value = accelerator.total_current(batch)
        assert value.shape == (6,)
        report = accelerator.power_trace(batch)
        np.testing.assert_allclose(value, report.per_tile_current.sum(axis=1))
