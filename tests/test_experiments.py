"""Tests for the repro.experiments subpackage (configs, reporting, pipelines)."""

import numpy as np
import pytest

from repro.experiments.config import (
    PAPER_CONFIGURATIONS,
    SCALES,
    DatasetConfig,
    ExperimentScale,
    TrainingConfig,
    resolve_scale,
)
from repro.experiments.figure3 import format_figure3, run_figure3
from repro.experiments.figure4 import STRATEGIES, format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.reporting import format_mapping, format_series, format_table
from repro.experiments.runner import (
    ParallelRunner,
    prepare_dataset,
    prepare_model,
    run_multi_seed,
)
from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1
from repro.utils.results import RunResult


class TestConfig:
    def test_scales_exist(self):
        assert {"smoke", "bench", "paper"} <= set(SCALES)

    def test_resolve_scale_by_name_and_instance(self):
        scale = resolve_scale("smoke")
        assert isinstance(scale, ExperimentScale)
        assert resolve_scale(scale) is scale

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            resolve_scale("gigantic")

    def test_with_overrides(self):
        scale = resolve_scale("smoke").with_overrides(n_runs=7)
        assert scale.n_runs == 7
        assert SCALES["smoke"].n_runs != 7

    def test_paper_configurations_cover_four_cases(self):
        assert len(PAPER_CONFIGURATIONS) == 4
        datasets = {d for d, _ in PAPER_CONFIGURATIONS}
        activations = {a for _, a in PAPER_CONFIGURATIONS}
        assert datasets == {"mnist-like", "cifar-like"}
        assert activations == {"linear", "softmax"}

    def test_dataset_and_training_config_validation(self):
        DatasetConfig()
        TrainingConfig()
        with pytest.raises(ValueError):
            DatasetConfig(n_train=0)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)

    def test_paper_scale_matches_paper_parameters(self):
        paper = SCALES["paper"]
        assert paper.n_runs == 10
        assert 60000 in paper.query_counts
        assert paper.attack_strengths == tuple(float(s) for s in range(11))
        assert max(paper.power_loss_weights) == pytest.approx(0.01)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["x", 3.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bbb" in lines[0]

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_format_series(self):
        text = format_series("q", [1, 2], {"curve": [0.1, 0.2], "other": [0.3, 0.4]})
        assert "curve" in text and "other" in text
        assert len(text.splitlines()) == 4

    def test_format_mapping(self):
        text = format_mapping({"alpha": 0.5, "beta": 1.0}, title="Params")
        assert text.splitlines()[0] == "Params"
        assert "alpha" in text


class TestRunner:
    def test_prepare_dataset_and_model(self):
        scale = resolve_scale("smoke")
        dataset = prepare_dataset("mnist-like", scale, random_state=0)
        assert dataset.n_train == scale.n_train
        model = prepare_model(dataset, "softmax", scale, random_state=0)
        assert model.test_accuracy > 0.5
        assert model.n_features == dataset.n_features

    def test_run_multi_seed_is_deterministic(self):
        def run_fn(run_index, seed):
            result = RunResult(name=f"run{run_index}")
            result.add_metric("seed_value", float(seed % 1000))
            return result

        a = run_multi_seed("sweep", run_fn, n_runs=3, base_seed=5)
        b = run_multi_seed("sweep", run_fn, n_runs=3, base_seed=5)
        np.testing.assert_allclose(a.metric_values("seed_value"), b.metric_values("seed_value"))
        assert len(a) == 3


def _seed_metric_run(run_index, seed):
    """Module-level run_fn so ParallelRunner's process mode can pickle it."""
    result = RunResult(name=f"run{run_index}")
    result.add_metric("seed_value", float(seed % 1000))
    return result


class TestParallelRunner:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(mode="gpu")

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_parallel_matches_serial(self, mode):
        serial = run_multi_seed("sweep", _seed_metric_run, n_runs=4, base_seed=5)
        runner = ParallelRunner(mode=mode, max_workers=2)
        parallel = runner.run_multi_seed("sweep", _seed_metric_run, n_runs=4, base_seed=5)
        np.testing.assert_allclose(
            parallel.metric_values("seed_value"), serial.metric_values("seed_value")
        )
        assert len(parallel) == 4
        for run_index, result in enumerate(parallel.runs):
            assert result.metadata["run_index"] == run_index
            assert result.metadata["seed"] == serial.runs[run_index].metadata["seed"]

    def test_process_mode_falls_back_for_closures(self):
        captured = []

        def run_fn(run_index, seed):  # closure over local state: unpicklable
            captured.append(run_index)
            return _seed_metric_run(run_index, seed)

        runner = ParallelRunner(mode="process")
        with pytest.warns(RuntimeWarning, match="not picklable"):
            sweep = runner.run_multi_seed("sweep", run_fn, n_runs=3, base_seed=1)
        assert captured == [0, 1, 2]
        assert len(sweep) == 3

    def test_map_preserves_order(self):
        runner = ParallelRunner(mode="thread", max_workers=4)
        values = runner.map(pow, [(2, i) for i in range(8)])
        assert values == [2**i for i in range(8)]


@pytest.fixture(scope="module")
def smoke_scale():
    return resolve_scale("smoke")


class TestTable1Pipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1("smoke", base_seed=0)

    def test_all_configurations_present(self, result):
        assert len(result.rows) == 4
        for dataset, activation in PAPER_CONFIGURATIONS:
            row = result.row_for(dataset, activation)
            assert "mean_correlation_test" in row

    def test_correlation_of_mean_exceeds_mean_correlation(self, result):
        """The paper's central Table I finding must hold in the reproduction."""
        for row in result.rows:
            assert row["correlation_of_mean_test"] > row["mean_correlation_test"]

    def test_correlations_positive_and_substantial(self, result):
        for row in result.rows:
            assert row["correlation_of_mean_test"] > 0.5
            assert row["mean_correlation_test"] > 0.0

    def test_paper_reference_attached(self, result):
        assert result.row_for("mnist-like", "linear")["paper"] == PAPER_TABLE1[
            ("mnist-like", "linear")
        ]

    def test_formatting(self, result):
        text = format_table1(result)
        assert "Table I" in text
        assert "mnist-like" in text and "cifar-like" in text

    def test_missing_row_raises(self, result):
        with pytest.raises(KeyError):
            result.row_for("svhn", "linear")


class TestFigure3Pipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure3("smoke", base_seed=0)

    def test_all_panels_present(self, result):
        assert set(result.maps) == set(PAPER_CONFIGURATIONS)

    def test_maps_have_image_shape(self, result):
        mnist_maps = result.panel("mnist-like", "softmax")
        assert mnist_maps.sensitivity.shape == (28, 28)
        cifar_maps = result.panel("cifar-like", "softmax")
        assert cifar_maps.sensitivity.shape == (32, 32)
        assert cifar_maps.channel == 0

    def test_maps_visibly_correlated(self, result):
        for summary in result.summaries.values():
            assert summary["map_correlation"] > 0.3

    def test_mnist_smoother_than_cifar(self, result):
        """Section III: the MNIST 1-norm map changes gradually, CIFAR rapidly."""
        mnist = result.summaries[("mnist-like", "softmax")]["norm_smoothness"]
        cifar = result.summaries[("cifar-like", "softmax")]["norm_smoothness"]
        assert mnist < cifar

    def test_formatting(self, result):
        assert "Figure 3" in format_figure3(result)


class TestFigure4Pipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4("smoke", base_seed=0)

    def test_curves_for_all_configs_and_strategies(self, result):
        assert set(result.curves) == set(PAPER_CONFIGURATIONS)
        for curves in result.curves.values():
            assert set(curves) == {s.paper_label for s in STRATEGIES}
            for curve in curves.values():
                assert len(curve) == len(result.attack_strengths)

    def test_zero_strength_equals_clean_accuracy(self, result):
        for curves in result.curves.values():
            baselines = {label: curve[0] for label, curve in curves.items()}
            assert len(set(np.round(list(baselines.values()), 6))) == 1

    def test_mnist_ordering_matches_paper(self, result):
        """Worst <= power-guided <= RP at the strongest attack (MNIST panels)."""
        for activation in ("linear", "softmax"):
            curves = result.curves[("mnist-like", activation)]
            final = {label: curve[-1] for label, curve in curves.items()}
            assert final["Worst"] <= final["RD"] + 0.05
            assert final["RD"] <= final["RP"] + 0.05
            assert final["+"] < final["RP"]

    def test_formatting(self, result):
        text = format_figure4(result)
        assert "Figure 4(a)" in text and "Figure 4(d)" in text


class TestFigure5Pipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(
            "smoke", rows=(("mnist-like", "label"),), base_seed=0, attack_strength=0.1
        )

    def test_row_structure(self, result):
        row = result.row("mnist-like", "label")
        assert row.query_counts == tuple(SCALES["smoke"].query_counts)
        assert set(row.surrogate_accuracy) == set(SCALES["smoke"].power_loss_weights)

    def test_curves_have_run_values(self, result):
        row = result.row("mnist-like", "label")
        for lam in row.power_loss_weights:
            for values in row.surrogate_accuracy[lam]:
                assert len(values) == SCALES["smoke"].n_runs

    def test_surrogate_improves_with_queries(self, result):
        row = result.row("mnist-like", "label")
        curve = row.mean_surrogate_curve(0.0)
        assert curve[-1] > curve[0]

    def test_attack_beats_clean_accuracy(self, result):
        row = result.row("mnist-like", "label")
        adversarial = row.mean_adversarial_curve(0.0)
        assert min(adversarial) < row.oracle_clean_accuracy

    def test_degradation_improvement_entries(self, result):
        row = result.row("mnist-like", "label")
        entries = row.degradation_improvement(row.power_loss_weights[-1])
        assert len(entries) == len(row.query_counts)
        for entry in entries:
            assert {"n_queries", "improvement", "p_value", "significant"} <= set(entry)

    def test_degradation_requires_baseline(self, result):
        row = result.row("mnist-like", "label")
        saved = row.adversarial_accuracy.pop(0.0)
        try:
            with pytest.raises(ValueError):
                row.degradation_improvement(row.power_loss_weights[-1])
        finally:
            row.adversarial_accuracy[0.0] = saved

    def test_formatting(self, result):
        text = format_figure5(result)
        assert "surrogate test accuracy" in text
        assert "improvement over lambda=0" in text
