"""Tests for the unified experiment API: scenarios, registry, jobs, parallel equivalence."""

import json

import numpy as np
import pytest

from repro.crossbar.nonidealities import NonidealityConfig
from repro.experiments import (
    PAPER_SCENARIOS,
    ExperimentResult,
    ParallelRunner,
    ScenarioSpec,
    get_experiment,
    get_scenario,
    list_experiments,
    list_scenarios,
    register,
    resolve_scale,
    resolve_scenarios,
    run_experiments,
)
from repro.experiments.base import Experiment, Job, _execute_job
from repro.experiments.figure5 import OUTPUT_MODES
from repro.experiments.config import PAPER_CONFIGURATIONS
from repro.experiments.registry import _REGISTRY
from repro.experiments.scenario import SCENARIOS


class TestScenarioSpec:
    def test_paper_presets_cover_paper_configurations(self):
        assert tuple(s.configuration for s in PAPER_SCENARIOS) == PAPER_CONFIGURATIONS
        for spec in PAPER_SCENARIOS:
            assert spec.is_paper_ideal

    def test_required_presets_registered(self):
        names = list_scenarios()
        for required in (
            "noisy-device",
            "quantized-adc",
            "norm-balanced-defense",
            "high-read-noise",
        ):
            assert required in names
        # at least four scenarios beyond the paper's configurations
        assert len(names) >= len(PAPER_SCENARIOS) + 4

    def test_non_paper_presets_are_not_ideal(self):
        for name in ("noisy-device", "quantized-adc", "norm-balanced-defense", "high-read-noise"):
            assert not SCENARIOS[name].is_paper_ideal

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", dataset="svhn")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", activation="relu")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", device="flash")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", mapping_scheme="exotic")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", defense="firewall")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", measurement_noise=-0.1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="")

    def test_with_overrides_revalidates(self):
        spec = get_scenario("paper/mnist-softmax")
        noisy = spec.with_overrides(measurement_noise=0.05)
        assert noisy.measurement_noise == 0.05
        assert not noisy.is_paper_ideal
        with pytest.raises(ValueError):
            spec.with_overrides(activation="tanh")

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_resolve_scenarios(self):
        assert resolve_scenarios(None) == PAPER_SCENARIOS
        assert resolve_scenarios("noisy-device") == (SCENARIOS["noisy-device"],)
        spec = ScenarioSpec(name="inline")
        assert resolve_scenarios([spec, "quantized-adc"]) == (
            spec,
            SCENARIOS["quantized-adc"],
        )

    def test_dataset_aliases_canonicalised(self):
        """Regression: 'mnist' and 'mnist-like' scenarios must agree on one name."""
        assert ScenarioSpec(name="x", dataset="mnist").dataset == "mnist-like"
        assert ScenarioSpec(name="x", dataset="CIFAR10").dataset == "cifar-like"

    def test_to_dict_is_json_serialisable(self):
        spec = ScenarioSpec(
            name="x", nonidealities=NonidealityConfig(wire_resistance=0.1)
        )
        payload = json.dumps(spec.to_dict())
        assert "wire_resistance" in payload

    def test_scenario_is_picklable_and_hashable(self):
        import pickle

        spec = SCENARIOS["high-read-noise"]
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, spec}) == 1


class TestScaleValidation:
    def test_resolve_scale_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scale"):
            resolve_scale("galactic")

    def test_resolve_scale_non_string_key(self):
        with pytest.raises(KeyError):
            resolve_scale(123)

    def test_with_overrides_unknown_field(self):
        with pytest.raises(TypeError):
            resolve_scale("smoke").with_overrides(warp_factor=9)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_train", 0),
            ("n_test", -1),
            ("n_runs", 0),
            ("train_epochs", 0),
            ("surrogate_epochs", 0),
            ("query_counts", ()),
            ("query_counts", (0,)),
            ("attack_strengths", (-1.0,)),
            ("power_loss_weights", (-0.01,)),
        ],
    )
    def test_with_overrides_invalid_values(self, field, value):
        with pytest.raises(ValueError):
            resolve_scale("smoke").with_overrides(**{field: value})

    def test_with_overrides_valid(self):
        scale = resolve_scale("smoke").with_overrides(n_runs=5)
        assert scale.n_runs == 5

    def test_list_fields_coerced_to_tuples(self):
        scale = resolve_scale("smoke").with_overrides(query_counts=[5, 10])
        assert scale.query_counts == (5, 10)


class TestRegistry:
    def test_all_paper_pipelines_registered(self):
        assert set(list_experiments()) >= {"table1", "figure3", "figure4", "figure5"}

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("figure99")

    def test_get_experiment_passthrough_and_case(self):
        experiment = get_experiment("table1")
        assert get_experiment(experiment) is experiment
        assert get_experiment("TABLE1") is experiment

    def test_duplicate_name_different_class_rejected(self):
        class Impostor(Experiment):
            name = "table1"

            run_job = staticmethod(lambda job: None)

            def assemble(self, scale, scenarios, jobs, results):
                return ExperimentResult(experiment=self.name, scale_name=scale.name)

        with pytest.raises(ValueError, match="already registered"):
            register(Impostor)

    def test_reregistering_same_class_is_idempotent(self):
        """Regression: python -m repro.experiments.table1 imports the module
        twice (package + __main__) and must not crash on re-registration."""
        existing = get_experiment("table1")
        assert register(type(existing)) is type(existing)
        assert get_experiment("table1") is existing

    def test_register_rejects_non_experiments(self):
        with pytest.raises(TypeError):
            register(object())

    def test_register_requires_name(self):
        class Nameless(Experiment):
            def build_jobs(self, scale, scenarios, *, base_seed=0, **options):
                return []

            run_job = staticmethod(lambda job: None)

            def assemble(self, scale, scenarios, jobs, results):
                return ExperimentResult(experiment="", scale_name=scale.name)

        with pytest.raises(ValueError, match="non-empty name"):
            register(Nameless)

    def test_mixed_case_names_resolve_after_registration(self):
        """Regression: registering an uppercase name must not break lookup."""

        class MixedCase(Experiment):
            name = "MyStudyForTest"
            description = "temporary"

            def build_jobs(self, scale, scenarios, *, base_seed=0, **options):
                return []

            run_job = staticmethod(lambda job: None)

            def assemble(self, scale, scenarios, jobs, results):
                return ExperimentResult(experiment=self.name, scale_name=scale.name)

        instance = register(MixedCase())
        try:
            assert get_experiment("MyStudyForTest") is instance
            assert get_experiment("mystudyfortest") is instance
            assert "mystudyfortest" in list_experiments()
        finally:
            _REGISTRY.pop("mystudyfortest")

    def test_registration_cleanup_possible(self):
        class Dummy(Experiment):
            name = "dummy-experiment-for-test"
            description = "temporary"

            def build_jobs(self, scale, scenarios, *, base_seed=0, **options):
                return []

            run_job = staticmethod(lambda job: None)

            def assemble(self, scale, scenarios, jobs, results):
                return ExperimentResult(experiment=self.name, scale_name=scale.name)

        instance = register(Dummy())
        try:
            assert get_experiment("dummy-experiment-for-test") is instance
        finally:
            _REGISTRY.pop("dummy-experiment-for-test")


class TestJobs:
    def test_job_params_lookup_and_label(self):
        scale = resolve_scale("smoke")
        job = Job(
            experiment="figure5",
            scenario=PAPER_SCENARIOS[0],
            scale=scale,
            seed=42,
            run_index=1,
            params=(("output_mode", "label"), ("attack_strength", 0.1)),
        )
        assert job.param("output_mode") == "label"
        assert job.param("missing", "fallback") == "fallback"
        assert "figure5/paper/mnist-linear" in job.label

    def test_jobs_are_picklable(self):
        import pickle

        scale = resolve_scale("smoke")
        for name in list_experiments():
            experiment = get_experiment(name)
            jobs = experiment.build_jobs(scale, PAPER_SCENARIOS, base_seed=0)
            assert jobs, f"{name} produced no jobs"
            restored = pickle.loads(pickle.dumps(jobs))
            assert [job.label for job in restored] == [job.label for job in jobs]

    def test_table1_job_count_and_seed_derivation(self):
        from repro.utils.rng import seeds_for_runs

        scale = resolve_scale("smoke")
        jobs = get_experiment("table1").build_jobs(scale, PAPER_SCENARIOS, base_seed=3)
        assert len(jobs) == len(PAPER_SCENARIOS) * scale.n_runs
        expected = seeds_for_runs(3, scale.n_runs)
        assert [job.seed for job in jobs[: scale.n_runs]] == expected

    def test_figure5_rows_derived_from_scenarios(self):
        scale = resolve_scale("smoke")
        jobs = get_experiment("figure5").build_jobs(
            scale, PAPER_SCENARIOS, base_seed=0
        )
        rows = {(job.scenario.dataset, job.param("output_mode")) for job in jobs}
        assert rows == {
            ("mnist-like", "label"),
            ("mnist-like", "raw"),
            ("cifar-like", "label"),
            ("cifar-like", "raw"),
        }
        # the two paper scenarios per dataset differ only in activation, which
        # figure5 forces to linear — they must collapse to one row pair each
        assert len(jobs) == 2 * len(OUTPUT_MODES) * scale.n_runs

    def test_figure5_keeps_distinct_scenarios_on_same_dataset(self):
        """Regression: hardware-distinct scenarios must not be silently dropped."""
        scale = resolve_scale("smoke")
        scenarios = resolve_scenarios(["paper/mnist-softmax", "noisy-device"])
        jobs = get_experiment("figure5").build_jobs(scale, scenarios, base_seed=0)
        names = {job.scenario.name for job in jobs}
        assert names == {"paper/mnist-softmax", "noisy-device"}
        assert len(jobs) == 2 * len(OUTPUT_MODES) * scale.n_runs


class _CountsPickles:
    """Module-level (hence picklable) payload that counts pickling events."""

    pickled = 0

    def __reduce__(self):
        type(self).pickled += 1
        return (type(self), ())


class TestPicklabilityProbe:
    def test_probe_serialises_single_representative_tuple(self):
        """Regression: _picklable must not pickle the whole args_list (O(data))."""
        args_list = [(_CountsPickles(),) for _ in range(16)]
        _CountsPickles.pickled = 0
        assert ParallelRunner._picklable(pow, args_list)
        assert _CountsPickles.pickled == 1

    def test_probe_empty_args_list(self):
        assert ParallelRunner._picklable(pow, [])

    def test_probe_rejects_unpicklable_fn(self):
        assert not ParallelRunner._picklable(lambda x: x, [(1,)])

    def test_process_mode_still_falls_back_for_unpicklable_fn(self):
        runner = ParallelRunner(mode="process")
        with pytest.warns(RuntimeWarning, match="not picklable"):
            values = runner.map(lambda x: x + 1, [(1,), (2,)])
        assert values == [2, 3]


@pytest.fixture(scope="module")
def fast_scale():
    """A trimmed smoke scale so the equivalence matrix stays quick."""
    return resolve_scale("smoke").with_overrides(
        n_train=200,
        n_test=60,
        n_runs=2,
        train_epochs=5,
        query_counts=(10, 25),
        attack_strengths=(0.0, 5.0),
        power_loss_weights=(0.0, 0.01),
        surrogate_epochs=30,
    )


def _assert_results_identical(a, b):
    assert len(a.sweep) == len(b.sweep)
    for run_a, run_b in zip(a.sweep, b.sweep):
        assert run_a.name == run_b.name
        assert run_a.metrics == run_b.metrics
        assert set(run_a.arrays) == set(run_b.arrays)
        for key in run_a.arrays:
            np.testing.assert_array_equal(run_a.arrays[key], run_b.arrays[key])


@pytest.mark.experiments
class TestSerialProcessEquivalence:
    """Acceptance: every registered experiment is bit-identical serial vs process."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ParallelRunner(mode="process", max_workers=2)

    @pytest.mark.parametrize("name", ["table1", "figure3", "figure4", "figure5"])
    def test_experiment_parallel_matches_serial(self, name, fast_scale, runner):
        experiment = get_experiment(name)
        scenarios = ["paper/mnist-softmax"]
        serial = experiment.run(fast_scale, scenarios=scenarios, base_seed=0)
        parallel = experiment.run(
            fast_scale, scenarios=scenarios, runner=runner, base_seed=0
        )
        _assert_results_identical(serial, parallel)


@pytest.mark.experiments
class TestRunExperimentsEndToEnd:
    def test_subset_run_and_serialization(self, fast_scale, tmp_path):
        results = run_experiments(
            ["figure3", "table1"],
            fast_scale,
            scenarios=["paper/mnist-softmax"],
            base_seed=0,
            output_dir=tmp_path,
        )
        assert list(results) == ["figure3", "table1"]
        for name, result in results.items():
            path = tmp_path / f"{name}_{fast_scale.name}.json"
            assert path.exists()
            restored = ExperimentResult.from_dict(json.loads(path.read_text()))
            assert restored.experiment == name
            assert restored.scale_name == fast_scale.name
            assert len(restored.sweep) == len(result.sweep)
            formatted = get_experiment(name).format_result(restored)
            assert "mnist-like" in formatted

    def test_unknown_run_options_raise(self, fast_scale):
        """Typo'd options must error at the run() boundary, naming the
        experiment and the options it does accept."""
        with pytest.raises(ValueError, match=r"unknown run\(\) options.*'table1'"):
            get_experiment("table1").run(fast_scale, rows=[("mnist-like", "raw")])
        with pytest.raises(
            ValueError, match=r"'figure5'.*(?:attack_strength|rows)"
        ):
            get_experiment("figure5").run(fast_scale, attack_stregth=0.3)

    def test_positional_or_keyword_options_are_accepted(self):
        """An override may declare an option as an ordinary defaulted
        parameter (positional-or-keyword) instead of keyword-only; the
        run() boundary must accept it, since build_jobs itself would."""

        class _PosOpt(Experiment):
            name = "pos-opt"

            def build_jobs(self, scale, scenarios, n_points=5, *, base_seed=0):
                return super().build_jobs(scale, scenarios, base_seed=base_seed)

            @staticmethod
            def run_job(job):
                raise NotImplementedError

            def assemble(self, scale, scenarios, jobs, results):
                raise NotImplementedError

        experiment = _PosOpt()
        assert experiment.accepted_run_options() == ["n_points"]
        experiment._validate_run_options({"n_points": 3})  # must not raise
        with pytest.raises(ValueError, match=r"unknown run\(\) options.*n_poitns"):
            experiment._validate_run_options({"n_poitns": 3})

    def test_execute_job_attaches_metadata(self, fast_scale):
        job = get_experiment("figure3").build_jobs(
            fast_scale, resolve_scenarios(["paper/mnist-softmax"]), base_seed=0
        )[0]
        result = _execute_job(job)
        assert result.metadata["experiment"] == "figure3"
        assert result.metadata["scenario"] == "paper/mnist-softmax"
        assert result.metadata["seed"] == job.seed

    def test_legacy_adapters_reject_configuration_collisions(self, fast_scale):
        """Regression: legacy (dataset, activation)-keyed results must not
        silently merge/overwrite two scenarios sharing that configuration."""
        from repro.experiments import run_figure3, run_table1

        scenarios = ["paper/mnist-softmax", "high-read-noise"]  # both mnist/softmax
        with pytest.raises(ValueError, match="scenario-keyed"):
            run_figure3(fast_scale, scenarios=scenarios)
        with pytest.raises(ValueError, match="scenario-keyed"):
            run_table1(fast_scale, scenarios=scenarios)
        # the Experiment API itself handles the same selection fine
        result = get_experiment("figure3").run(fast_scale, scenarios=scenarios)
        assert [p["scenario"] for p in result.summary["panels"]] == scenarios
        # ... including formatting: table1's format_result must not route
        # through the collision-raising legacy adapter
        t1 = get_experiment("table1").run(fast_scale, scenarios=scenarios)
        text = get_experiment("table1").format_result(t1)
        assert "high-read-noise" in text and "Scenario" in text

    def test_distinct_specs_sharing_a_name_stay_separate(self, fast_scale):
        """Regression: assemble must group by scenario object, not name."""
        base = get_scenario("paper/mnist-softmax")
        variant = base.with_overrides(measurement_noise=0.05)  # same name
        result = get_experiment("table1").run(
            fast_scale, scenarios=[base, variant], base_seed=0
        )
        assert len(result.sweep) == 2 * fast_scale.n_runs  # no double-adds
        rows = result.summary["rows"]
        assert len(rows) == 2
        # the noisy variant must not inherit the ideal scenario's statistics
        assert (
            rows[0]["correlation_of_mean_test"] != rows[1]["correlation_of_mean_test"]
        )

    def test_scenario_variants_change_results(self, fast_scale):
        """A defended scenario must actually blunt the leak vs the ideal one."""
        ideal = get_experiment("table1").run(
            fast_scale, scenarios=["paper/mnist-softmax"], base_seed=0
        )
        defended = get_experiment("table1").run(
            fast_scale,
            scenarios=[
                SCENARIOS["norm-balanced-defense"].with_overrides(
                    defense_strength=5.0
                )
            ],
            base_seed=0,
        )
        ideal_corr = ideal.summary["rows"][0]["correlation_of_mean_test"]
        defended_corr = defended.summary["rows"][0]["correlation_of_mean_test"]
        assert defended_corr < ideal_corr


class TestCLI:
    def test_list_flags(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure5" in out
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "noisy-device" in out and "paper/mnist-softmax" in out

    def test_unknown_experiment_fails_fast(self):
        from repro.experiments.cli import main

        with pytest.raises(KeyError):
            main(["figure99", "--scale", "smoke"])

    def test_unknown_scenario_fails_fast(self):
        from repro.experiments.cli import main

        with pytest.raises(KeyError):
            main(["table1", "--scale", "smoke", "--scenarios", "nope"])
