"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    Constant,
    HeNormal,
    NormalInitializer,
    UniformInitializer,
    XavierNormal,
    XavierUniform,
    Zeros,
    get_initializer,
)


class TestBasicInitializers:
    def test_zeros(self, rng):
        values = Zeros()((3, 4), rng)
        np.testing.assert_array_equal(values, np.zeros((3, 4)))

    def test_constant(self, rng):
        values = Constant(2.5)((2, 2), rng)
        np.testing.assert_array_equal(values, np.full((2, 2), 2.5))

    def test_normal_statistics(self, rng):
        values = NormalInitializer(stddev=0.5)((200, 200), rng)
        assert abs(values.mean()) < 0.02
        assert abs(values.std() - 0.5) < 0.02

    def test_normal_rejects_negative_std(self):
        with pytest.raises(ValueError):
            NormalInitializer(stddev=-1.0)

    def test_uniform_bounds(self, rng):
        values = UniformInitializer(-0.1, 0.1)((100, 100), rng)
        assert values.min() >= -0.1 and values.max() <= 0.1

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformInitializer(1.0, -1.0)


class TestVarianceScaling:
    def test_xavier_uniform_limit(self, rng):
        shape = (10, 40)
        limit = np.sqrt(6.0 / (10 + 40))
        values = XavierUniform()(shape, rng)
        assert np.all(np.abs(values) <= limit + 1e-12)

    def test_xavier_normal_std(self, rng):
        shape = (50, 150)
        values = XavierNormal()(shape, rng)
        expected = np.sqrt(2.0 / (50 + 150))
        assert abs(values.std() - expected) / expected < 0.1

    def test_he_normal_std(self, rng):
        shape = (50, 200)
        values = HeNormal()(shape, rng)
        expected = np.sqrt(2.0 / 200)
        assert abs(values.std() - expected) / expected < 0.1

    def test_1d_shape_supported(self, rng):
        assert XavierUniform()((7,), rng).shape == (7,)


class TestDeterminism:
    def test_initialize_with_seed_is_deterministic(self):
        init = XavierUniform()
        a = init.initialize((5, 5), random_state=3)
        b = init.initialize((5, 5), random_state=3)
        np.testing.assert_array_equal(a, b)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_initializer("zeros"), Zeros)
        assert isinstance(get_initializer("xavier_uniform"), XavierUniform)

    def test_passthrough(self):
        init = HeNormal()
        assert get_initializer(init) is init

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_initializer("magic")
