"""Tier-1 smoke run of the fused-engine benchmark (``@pytest.mark.engine``).

Runs ``benchmarks/bench_engine.py`` at tiny sizes so every test run proves
the fused single-pass engine is not slower than the legacy two-pass path,
and exercises ``scripts/check_bench_regression.py`` end-to-end against the
recorded timings.  Deselect with ``-m "not engine"``.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_module(path, name):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_engine = _load_module(REPO_ROOT / "benchmarks" / "bench_engine.py", "bench_engine")
check_bench = _load_module(
    REPO_ROOT / "scripts" / "check_bench_regression.py", "check_bench_regression"
)


@pytest.fixture(scope="module")
def smoke_results():
    """One tiny engine-benchmark run shared by the smoke assertions."""
    return bench_engine.run_engine_benchmark(
        n_inputs=96, n_outputs=8, batch_sizes=(1, 32, 128), repeats=7, seed=0
    )


@pytest.mark.engine
def test_fused_engine_not_slower_than_legacy(smoke_results):
    """Regression guard: the fused path must never lose to two passes.

    The hard gate is the deterministic operation count (1 traversal per
    power-exposed batch).  The wall-clock assertion is deliberately loose —
    only the *best* batch size, with margin — because these are microsecond
    workloads and tier-1 runs on arbitrarily loaded machines; the strict
    >= 2x threshold is enforced by benchmarks/bench_engine.py and
    scripts/check_bench_regression.py on dedicated bench runs.
    """
    assert smoke_results["array_ops_per_power_query_batch"] == 1
    speedups = [row["speedup"] for row in smoke_results["oracle_query"]]
    # Structural win is 3 traversals -> 1; even heavy timer noise on a
    # contended runner leaves the best-of-timings peak above break-even.
    assert max(speedups) >= 1.2


@pytest.mark.engine
def test_probing_batch_not_slower_than_loop(smoke_results):
    assert smoke_results["probing"]["speedup"] >= 1.0


@pytest.mark.engine
def test_check_bench_regression_script(smoke_results, tmp_path):
    """The CI gate passes on healthy timings and fails on a regression."""
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({"engine": smoke_results}))
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "scripts" / "check_bench_regression.py"),
            "--path",
            str(path),
            "--min-speedup",
            "0.0",
            "--min-peak-speedup",
            "1.2",
            # The ~1.0 backend ratio sits below timer noise at these tiny
            # smoke sizes; the strict 0.95 floor is for dedicated bench runs.
            "--min-backend-ratio",
            "0.5",
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

    # Synthesize a regression: fused slower than legacy at every batch size.
    regressed = json.loads(json.dumps({"engine": smoke_results}))
    for row in regressed["engine"]["oracle_query"]:
        row["speedup"] = 0.5
    failures = check_bench.check_results(regressed)
    assert failures and any("slower" in f for f in failures)

    # Missing file is reported as a distinct error code.
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "scripts" / "check_bench_regression.py"),
            "--path",
            str(tmp_path / "missing.json"),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 2
