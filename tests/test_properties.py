"""Property-based tests (hypothesis) on the library's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.correlation import pearson_correlation
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import ConductanceMapping, MappingScheme
from repro.datasets.transforms import clip_to_range, from_one_hot, one_hot
from repro.nn.activations import ReLU, Sigmoid, Softmax, Tanh
from repro.nn.gradients import weight_column_norms
from repro.nn.losses import CategoricalCrossEntropy, MeanSquaredError
from repro.sidechannel.estimators import estimate_column_sums_least_squares

# Bounded float strategies keep the numerics well-conditioned.
finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
small_shapes = st.tuples(st.integers(2, 6), st.integers(2, 8))


def weight_matrices(min_rows=2, max_rows=6, min_cols=2, max_cols=8):
    return small_shapes.flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite_floats)
    )


class TestActivationProperties:
    @given(arrays(np.float64, (3, 5), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_a_probability_distribution(self, logits):
        out = Softmax().forward(logits)
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)

    @given(arrays(np.float64, (4, 6), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_and_tanh_bounded(self, x):
        assert np.all((Sigmoid().forward(x) > 0) & (Sigmoid().forward(x) < 1))
        assert np.all(np.abs(Tanh().forward(x)) <= 1.0)

    @given(arrays(np.float64, (4, 6), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent_and_non_negative(self, x):
        relu = ReLU()
        once = relu.forward(x)
        assert np.all(once >= 0)
        np.testing.assert_array_equal(relu.forward(once), once)


class TestLossProperties:
    @given(
        arrays(np.float64, (5, 4), elements=finite_floats),
        arrays(np.float64, (5, 4), elements=finite_floats),
    )
    @settings(max_examples=40, deadline=None)
    def test_mse_non_negative_and_symmetric(self, a, b):
        loss = MeanSquaredError()
        assert loss.value(a, b) >= 0
        assert loss.value(a, b) == pytest.approx(loss.value(b, a))

    @given(arrays(np.float64, (4, 5), elements=finite_floats), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_cross_entropy_non_negative(self, logits, label):
        probabilities = Softmax().forward(logits)
        targets = np.tile(np.eye(5)[label], (4, 1))
        assert CategoricalCrossEntropy().value(probabilities, targets) >= 0


class TestOneHotProperties:
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_one_hot_roundtrip(self, labels):
        labels = np.asarray(labels)
        encoded = one_hot(labels, 10)
        assert encoded.shape == (len(labels), 10)
        np.testing.assert_array_equal(encoded.sum(axis=1), 1.0)
        np.testing.assert_array_equal(from_one_hot(encoded), labels)

    @given(
        arrays(np.float64, (6, 4), elements=finite_floats),
        st.floats(min_value=-2, max_value=0),
        st.floats(min_value=0.1, max_value=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_clip_to_range_bounds(self, data, low, high):
        clipped = clip_to_range(data, low, high)
        assert clipped.min() >= low - 1e-12
        assert clipped.max() <= high + 1e-12


class TestCrossbarProperties:
    @given(weight_matrices())
    @settings(max_examples=30, deadline=None)
    def test_min_power_mapping_roundtrip(self, weights):
        mapping = ConductanceMapping()
        g_plus, g_minus = mapping.map(weights, random_state=0)
        assert np.all(g_plus >= 0) and np.all(g_minus >= 0)
        np.testing.assert_allclose(mapping.unmap(g_plus, g_minus, weights), weights, atol=1e-9)
        # at most one of the pair is non-zero per device under min-power
        assert np.all((g_plus == 0) | (g_minus == 0))

    @given(weight_matrices())
    @settings(max_examples=30, deadline=None)
    def test_column_sums_equal_scaled_1_norms(self, weights):
        mapping = ConductanceMapping()
        g_plus, g_minus = mapping.map(weights, random_state=0)
        sums = mapping.column_conductance_sums(g_plus, g_minus)
        scale = mapping.conductance_per_unit_weight(weights)
        np.testing.assert_allclose(sums, scale * np.abs(weights).sum(axis=0), atol=1e-9)

    @given(weight_matrices())
    @settings(max_examples=30, deadline=None)
    def test_balanced_mapping_leaks_nothing(self, weights):
        mapping = ConductanceMapping(scheme=MappingScheme.BALANCED)
        g_plus, g_minus = mapping.map(weights, random_state=0)
        sums = mapping.column_conductance_sums(g_plus, g_minus)
        np.testing.assert_allclose(sums, sums[0], atol=1e-9)

    @given(weight_matrices(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_total_current_linearity(self, weights, seed):
        """Eq. 5 is linear in the input voltages: i(a u + b v) = a i(u) + b i(v)."""
        array = CrossbarArray(weights, random_state=0)
        rng = np.random.default_rng(seed)
        u = rng.uniform(0, 1, size=weights.shape[1])
        v = rng.uniform(0, 1, size=weights.shape[1])
        combined = array.total_current(0.3 * u + 0.6 * v)
        separate = 0.3 * array.total_current(u) + 0.6 * array.total_current(v)
        assert combined == pytest.approx(separate, rel=1e-9, abs=1e-12)

    @given(weight_matrices())
    @settings(max_examples=30, deadline=None)
    def test_total_current_non_negative_for_non_negative_inputs(self, weights):
        array = CrossbarArray(weights, random_state=0)
        u = np.abs(weights[0]) / (np.abs(weights[0]).max() + 1e-9)
        assert array.total_current(u) >= -1e-12


class TestSideChannelProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_basis_probing_solves_the_linear_system(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(4, 9))
        array = CrossbarArray(weights, random_state=0)
        probes = np.eye(9)
        currents = array.total_current(probes)
        estimate = estimate_column_sums_least_squares(probes, currents)
        np.testing.assert_allclose(estimate, array.column_conductance_sums, atol=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_column_norm_scale_invariance_of_correlation(self, seed):
        """The attack only needs the ordering: correlations are scale invariant."""
        rng = np.random.default_rng(seed)
        norms = np.abs(rng.normal(size=20)) + 0.01
        other = np.abs(rng.normal(size=20)) + 0.01
        original = pearson_correlation(norms, other)
        scaled = pearson_correlation(norms * 123.4, other)
        assert original == pytest.approx(scaled, abs=1e-12)

    @given(weight_matrices())
    @settings(max_examples=30, deadline=None)
    def test_weight_column_norms_triangle_inequality(self, weights):
        """||a + b||_1 <= ||a||_1 + ||b||_1 column-wise."""
        half = weights / 2.0
        combined = weight_column_norms(half + half)
        parts = weight_column_norms(half) + weight_column_norms(half)
        assert np.all(combined <= parts + 1e-9)
