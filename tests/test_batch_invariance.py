"""Batch-invariance property suite for the oracle/measurement path.

The async coalescing query service is only correct if an observation does not
depend on what else happened to be in its batch.  These tests assert exactly
that, for **every registered scenario preset**: with fixed per-request seeds,
query-by-query results are bit-identical across batch sizes ``{1, k, whole}``
on both :class:`Oracle` and :class:`PowerMeasurement`, and the
batch-composition bugs this PR fixed (batch-mean noise scale, auto-ranging
acquisition ADC, layer-0-only analytic power, charge-before-success query
accounting) stay fixed.
"""

import asyncio

import numpy as np
import pytest

from repro.attacks.oracle import Oracle
from repro.experiments.config import TENANT_PRESET_CONFIGS
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.service import QueryService
from repro.sidechannel.measurement import PowerMeasurement, QueryBudgetExceeded
from repro.experiments.scenario import SCENARIOS, list_scenarios
from repro.utils.rng import derive_request_seeds

N_FEATURES = 16
N_CLASSES = 5
N_QUERIES = 9


def _small_network():
    return Sequential(
        [Dense(N_FEATURES, N_CLASSES, activation="softmax", random_state=0)]
    )


def _build_target(name):
    """The scenario's hardware stack around a small fixed victim."""
    return SCENARIOS[name].build_accelerator(_small_network(), random_state=0)


def _query_batch():
    return np.random.default_rng(11).uniform(0.0, 1.0, size=(N_QUERIES, N_FEATURES))


def _splits():
    """Batch partitions to compare against the whole batch: singles + chunks."""
    singles = [(i, i + 1) for i in range(N_QUERIES)]
    chunks = [(0, 3), (3, 7), (7, N_QUERIES)]
    return singles + chunks


class TestOracleBatchInvariance:
    """Oracle.query with per-request seeds is invariant to batch composition."""

    @pytest.mark.parametrize("name", list_scenarios())
    def test_rows_identical_across_batch_sizes(self, name):
        target = _build_target(name)
        oracle = Oracle(
            target,
            expose_power=True,
            power_noise_std=0.04,
            random_state=5,
        )
        inputs = _query_batch()
        seeds = derive_request_seeds(0, 0, N_QUERIES)
        whole = oracle.query(inputs, seeds=seeds)
        for lo, hi in _splits():
            part = oracle.query(inputs[lo:hi], seeds=seeds[lo:hi])
            np.testing.assert_array_equal(part.outputs, whole.outputs[lo:hi])
            np.testing.assert_array_equal(part.labels, whole.labels[lo:hi])
            np.testing.assert_array_equal(part.power, whole.power[lo:hi])

    @pytest.mark.parametrize("name", list_scenarios())
    def test_per_tile_power_identical_across_batch_sizes(self, name):
        target = _build_target(name)
        oracle = Oracle(
            target,
            expose_power=True,
            expose_per_tile_power=True,
            power_noise_std=0.04,
            random_state=5,
        )
        inputs = _query_batch()
        seeds = derive_request_seeds(0, 1, N_QUERIES)
        whole = oracle.query(inputs, seeds=seeds)
        assert whole.per_tile_power is not None
        for lo, hi in _splits():
            part = oracle.query(inputs[lo:hi], seeds=seeds[lo:hi])
            np.testing.assert_array_equal(
                part.per_tile_power, whole.per_tile_power[lo:hi]
            )

    def test_different_seeds_give_different_noise(self):
        """Sanity: the seeded path is still noisy, not silently deterministic."""
        target = _build_target("paper/mnist-softmax")
        oracle = Oracle(target, power_noise_std=0.1, random_state=0)
        inputs = _query_batch()[:1]
        a = oracle.query(inputs, seeds=derive_request_seeds(0, 0, 1))
        b = oracle.query(inputs, seeds=derive_request_seeds(0, 1, 1))
        assert not np.array_equal(a.power, b.power)
        np.testing.assert_array_equal(
            a.power, oracle.query(inputs, seeds=derive_request_seeds(0, 0, 1)).power
        )


class TestMeasurementBatchInvariance:
    """PowerMeasurement with seeds + fixed-range ADC is batch-invariant."""

    @pytest.mark.parametrize("name", list_scenarios())
    def test_readings_identical_across_batch_sizes(self, name):
        target = _build_target(name)
        inputs = _query_batch()
        # A batch-independent acquisition range bracketing the real currents
        # (the fixed-range ADC mode the service relies on).
        calibration = np.atleast_1d(PowerMeasurement(target).measure(inputs))
        span = calibration.max() - calibration.min() + 1e-9
        measurement = PowerMeasurement(
            target,
            noise_std=0.05,
            n_averages=2,
            quantization_bits=6,
            range_hint=(
                float(calibration.min() - 0.5 * span),
                float(calibration.max() + 0.5 * span),
            ),
            random_state=3,
        )
        seeds = derive_request_seeds(1, 0, N_QUERIES)
        whole = measurement.measure(inputs, seeds=seeds)
        for lo, hi in _splits():
            part = np.atleast_1d(
                measurement.measure(inputs[lo:hi], seeds=seeds[lo:hi])
            )
            np.testing.assert_array_equal(part, whole[lo:hi])

    def test_auto_range_is_documented_batch_dependent(self):
        """The standalone-scope default intentionally stays auto-ranging."""
        column_sums = np.linspace(0.5, 2.0, N_FEATURES)

        class _Static:
            def total_current(self, inputs):
                return np.atleast_2d(inputs) @ column_sums

        auto = PowerMeasurement(_Static(), quantization_bits=2)
        inputs = _query_batch()
        whole = auto.measure(inputs)
        alone = np.array([auto.measure(row) for row in inputs])
        # single reads have zero dynamic range -> pass through unquantized
        assert not np.array_equal(whole, alone)


class TestNoiseScaleIsPerElement:
    """Regression: the noise magnitude must not depend on batch composition."""

    class _Static:
        def __init__(self, column_sums):
            self.column_sums = np.asarray(column_sums, dtype=float)

        def total_current(self, inputs):
            return np.atleast_2d(inputs) @ self.column_sums

    def test_measurement_noise_scale_tracks_each_element(self):
        """A tiny reading keeps tiny noise even next to a huge batch-mate."""
        target = self._Static([1.0])
        measurement = PowerMeasurement(target, noise_std=0.01, random_state=0)
        small, large = 1e-3, 1e3
        readings = np.array(
            [
                measurement.measure(np.array([[small], [large]]))[0]
                for _ in range(200)
            ]
        )
        errors = np.abs(readings - small)
        # Per-element scale: ~1% of 1e-3.  The old batch-mean scale would
        # have produced noise ~1% of ~500 — nine orders of magnitude larger.
        assert np.max(errors) < 1e-3

    def test_oracle_noise_scale_tracks_each_element(self, trained_linear):
        oracle = Oracle(trained_linear, power_noise_std=0.01, random_state=0)
        tiny = np.full((1, trained_linear.n_inputs), 1e-6)
        huge = np.full((1, trained_linear.n_inputs), 1e3)
        batch = np.concatenate([tiny, huge])
        clean = Oracle(trained_linear, random_state=0).query(batch).power
        for _ in range(50):
            noisy = oracle.query(batch).power
            assert abs(noisy[0] - clean[0]) <= abs(clean[0]) * 0.1


class TestOracleAccounting:
    """Regression: failing queries are free; budgets mirror PowerMeasurement."""

    def test_failing_forward_charges_nothing(self, trained_linear):
        oracle = Oracle(trained_linear, random_state=0)
        with pytest.raises(Exception):
            oracle.query(np.ones((3, trained_linear.n_inputs + 1)))
        assert oracle.queries_used == 0

    def test_budget_enforced_before_traversal(self, trained_linear):
        oracle = Oracle(trained_linear, query_budget=5, random_state=0)
        oracle.query(np.ones((3, trained_linear.n_inputs)))
        assert oracle.queries_remaining == 2
        with pytest.raises(QueryBudgetExceeded):
            oracle.query(np.ones((3, trained_linear.n_inputs)))
        assert oracle.queries_used == 3  # the rejected query was not charged
        oracle.query(np.ones((2, trained_linear.n_inputs)))
        assert oracle.queries_remaining == 0

    def test_unbounded_budget(self, trained_linear):
        assert Oracle(trained_linear, random_state=0).queries_remaining is None

    def test_invalid_budget(self, trained_linear):
        with pytest.raises(ValueError):
            Oracle(trained_linear, query_budget=0)

    def test_measurement_failing_read_charges_nothing(self):
        class _Broken:
            def total_current(self, inputs):
                raise RuntimeError("bus fault")

        measurement = PowerMeasurement(_Broken())
        with pytest.raises(RuntimeError):
            measurement.measure(np.ones((4, 2)))
        assert measurement.queries_used == 0


@pytest.mark.tenant
class TestMixedTenantBatchInvariance:
    """Co-resident traffic must never perturb a victim tenant's responses.

    The multi-tenant contract extends batch invariance from *batch sizes* to
    *batch-mates*: for every ``tenant-*`` isolation preset, a victim's
    responses are bit-identical whether its requests coalesced alone or
    alongside a flooding co-resident attacker.  Request ids pin the seeds —
    the victim submits first in both rounds, so requests ``0..N-1`` carry
    identical noise streams and any difference would come from the batch
    composition itself.
    """

    @pytest.mark.parametrize("name", sorted(TENANT_PRESET_CONFIGS))
    def test_victim_rows_identical_with_and_without_attacker(self, name):
        spec = SCENARIOS[name]
        victim_rows = _query_batch()
        attacker_rows = np.random.default_rng(23).uniform(
            0.0, 1.0, size=(2 * N_QUERIES, N_FEATURES)
        )

        def serve(with_attacker):
            oracle = Oracle(
                _build_target(name),
                expose_power=True,
                power_noise_std=0.04,
                random_state=5,
            )

            async def drive():
                async with QueryService(oracle, spec.service) as service:
                    submits = [
                        service.submit_traced(row[np.newaxis, :], tenant="victim")
                        for row in victim_rows
                    ]
                    if with_attacker:
                        submits += [
                            service.submit_traced(
                                row[np.newaxis, :], tenant="attacker"
                            )
                            for row in attacker_rows
                        ]
                    results = await asyncio.gather(*submits)
                return results[: len(victim_rows)], service

            return asyncio.run(drive())

        alone, _ = serve(with_attacker=False)
        mixed, service = serve(with_attacker=True)
        for (alone_id, alone_resp), (mixed_id, mixed_resp) in zip(alone, mixed):
            assert alone_id == mixed_id  # same seeds by construction
            np.testing.assert_array_equal(alone_resp.outputs, mixed_resp.outputs)
            np.testing.assert_array_equal(alone_resp.labels, mixed_resp.labels)
            np.testing.assert_array_equal(alone_resp.power, mixed_resp.power)
        # the comparison must have exercised the policy it claims to cover:
        # shared placements really mixed tenants in a tick, isolating ones
        # really never did
        if spec.service.placement == "shared":
            assert any(len(tick.tenants) > 1 for tick in service.tick_trace)
        else:
            assert all(len(tick.tenants) == 1 for tick in service.tick_trace)


class TestMultiLayerAnalyticPower:
    """Regression: the software analytic path must cover every layer."""

    def _two_layer_network(self):
        return Sequential(
            [
                Dense(6, 8, activation="relu", random_state=0),
                Dense(8, 4, activation="softmax", random_state=1),
            ]
        )

    def test_power_sums_every_layer(self):
        network = self._two_layer_network()
        oracle = Oracle(network, random_state=0)
        inputs = np.random.default_rng(2).uniform(0.0, 1.0, size=(5, 6))
        power = oracle.query(inputs).power

        first_norms = np.abs(network.layers[0].weights).sum(axis=0)
        hidden = np.atleast_2d(network.layers[0].forward(inputs))
        second_norms = np.abs(network.layers[1].weights).sum(axis=0)
        expected = inputs @ first_norms + hidden @ second_norms
        np.testing.assert_allclose(power, expected)
        # the old layer-0-only value is strictly smaller (layer currents add)
        assert np.all(power > inputs @ first_norms)

    def test_single_layer_value_unchanged(self, trained_linear, mnist_small):
        oracle = Oracle(trained_linear, random_state=0)
        inputs = mnist_small.test_inputs[:4]
        expected = inputs @ np.abs(trained_linear.layers[0].weights).sum(axis=0)
        np.testing.assert_allclose(oracle.query(inputs).power, expected)
