"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_rng,
    choice_without_replacement,
    seeds_for_runs,
    shuffled_indices,
    spawn_rngs,
)


class TestAsRng:
    def test_accepts_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_accepts_int_seed_deterministically(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**6, size=8)
        b = as_rng(2).integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_passes_generator_through(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_rejects_invalid_type(self):
        with pytest.raises(TypeError):
            as_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**6, size=10)
        b = children[1].integers(0, 10**6, size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        assert a == b

    def test_spawning_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3


class TestSeedsForRuns:
    def test_count_and_type(self):
        seeds = seeds_for_runs(0, 10)
        assert len(seeds) == 10
        assert all(isinstance(s, int) for s in seeds)

    def test_deterministic(self):
        assert seeds_for_runs(5, 6) == seeds_for_runs(5, 6)

    def test_distinct(self):
        seeds = seeds_for_runs(0, 20)
        assert len(set(seeds)) == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seeds_for_runs(0, -2)


class TestShuffleAndChoice:
    def test_shuffled_indices_is_permutation(self, rng):
        indices = shuffled_indices(10, rng)
        assert sorted(indices.tolist()) == list(range(10))

    def test_shuffled_indices_subset(self, rng):
        subset = [3, 5, 7]
        indices = shuffled_indices(10, rng, subset=subset)
        assert sorted(indices.tolist()) == subset

    def test_choice_without_replacement_distinct(self, rng):
        chosen = choice_without_replacement(rng, 20, 10)
        assert len(set(chosen.tolist())) == 10

    def test_choice_without_replacement_from_iterable(self, rng):
        chosen = choice_without_replacement(rng, [10, 20, 30, 40], 2)
        assert set(chosen.tolist()).issubset({10, 20, 30, 40})

    def test_choice_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            choice_without_replacement(rng, 3, 5)
