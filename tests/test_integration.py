"""End-to-end integration tests covering the paper's two attack scenarios."""

import numpy as np

from repro.attacks import (
    Oracle,
    SinglePixelAttack,
    SinglePixelStrategy,
    SurrogateAttack,
    SurrogateConfig,
    accuracy_under_attack,
)
from repro.crossbar import CrossbarAccelerator
from repro.nn.gradients import weight_column_norms
from repro.sidechannel import ColumnNormProber, PowerMeasurement


class TestCase1PowerOnlyAttacker:
    """Section III: the attacker sees only the power channel, not the outputs."""

    def test_full_pipeline_from_hardware_to_attack(self, trained_softmax, mnist_small):
        # 1. the victim runs on a crossbar accelerator
        accelerator = CrossbarAccelerator(trained_softmax, random_state=0)
        # 2. the attacker probes the power rail to recover the column 1-norms
        measurement = PowerMeasurement(accelerator, noise_std=0.01, random_state=1)
        prober = ColumnNormProber(measurement, mnist_small.n_features)
        probe = prober.probe_all()
        assert probe.queries_used == mnist_small.n_features
        # the leaked values must rank the columns like the true 1-norms
        true_norms = weight_column_norms(trained_softmax.weights)
        assert np.corrcoef(probe.column_sums, true_norms)[0, 1] > 0.95
        # 3. the leaked information drives a single-pixel attack that beats random
        power_attack = SinglePixelAttack(
            SinglePixelStrategy.POWER_ADD,
            column_norms=probe.column_sums,
            queries_used=probe.queries_used,
            random_state=0,
        )
        random_attack = SinglePixelAttack(SinglePixelStrategy.RANDOM_PIXEL, random_state=0)
        strength = 8.0
        power_acc = accuracy_under_attack(
            trained_softmax, power_attack, mnist_small.test_inputs, mnist_small.test_targets, strength
        )
        random_acc = accuracy_under_attack(
            trained_softmax, random_attack, mnist_small.test_inputs, mnist_small.test_targets, strength
        )
        assert power_acc < random_acc - 0.05

    def test_noisy_measurements_degrade_gracefully(self, trained_softmax, mnist_small):
        accelerator = CrossbarAccelerator(trained_softmax, random_state=0)
        heavy_noise = PowerMeasurement(accelerator, noise_std=0.5, random_state=2)
        prober = ColumnNormProber(heavy_noise, mnist_small.n_features)
        noisy_norms = prober.probe_all().column_sums
        true_norms = weight_column_norms(trained_softmax.weights)
        clean_corr = 1.0
        noisy_corr = np.corrcoef(noisy_norms, true_norms)[0, 1]
        assert noisy_corr < clean_corr
        assert np.isfinite(noisy_corr)


class TestCase2BlackBoxWithOutputs:
    """Section IV: the attacker queries the oracle and also records power."""

    def test_power_augmented_surrogate_is_at_least_as_faithful(
        self, trained_linear, mnist_small
    ):
        results = {}
        n_queries = 400
        for lam in (0.0, 0.01):
            oracle = Oracle(trained_linear, output_mode="label", random_state=0)
            attack = SurrogateAttack(
                oracle,
                config=SurrogateConfig(power_loss_weight=lam, epochs=250),
                attack_strength=0.1,
                random_state=0,
            )
            results[lam] = attack.run(
                mnist_small.query_pool(n_queries, random_state=3),
                mnist_small.test_inputs,
                mnist_small.test_targets,
            )
        # With only label feedback at a moderate query budget, the power term
        # must not hurt and typically helps (the paper's MNIST finding).
        assert (
            results[0.01].surrogate_test_accuracy
            >= results[0.0].surrogate_test_accuracy - 0.03
        )
        assert (
            results[0.01].oracle_adversarial_accuracy
            <= results[0.0].oracle_adversarial_accuracy + 0.03
        )

    def test_query_information_dominates_for_large_budgets(self, trained_linear, mnist_small):
        """With Q >= N the outputs alone pin down the weights; power adds nothing.

        This mirrors the paper's observation that the power information's
        utility drops off once the query count exceeds the input size.
        """
        n_queries = mnist_small.n_train  # >> useful range for a 600-sample set
        adv = {}
        for lam in (0.0, 0.01):
            oracle = Oracle(trained_linear, output_mode="raw", random_state=0)
            attack = SurrogateAttack(
                oracle,
                config=SurrogateConfig(power_loss_weight=lam, epochs=250),
                random_state=0,
            )
            result = attack.run(
                mnist_small.query_pool(n_queries, random_state=1),
                mnist_small.test_inputs,
                mnist_small.test_targets,
            )
            adv[lam] = result.oracle_adversarial_accuracy
        assert abs(adv[0.0] - adv[0.01]) < 0.1

    def test_crossbar_oracle_end_to_end(self, trained_linear, mnist_small):
        """The whole loop also runs against the simulated hardware oracle."""
        accelerator = CrossbarAccelerator(trained_linear, random_state=0)
        oracle = Oracle(accelerator, output_mode="raw", random_state=0)
        attack = SurrogateAttack(
            oracle,
            config=SurrogateConfig(
                power_loss_weight=0.01, epochs=150, power_normalization="relative"
            ),
            random_state=0,
        )
        result = attack.run(
            mnist_small.query_pool(200, random_state=0),
            mnist_small.test_inputs,
            mnist_small.test_targets,
        )
        assert result.oracle_adversarial_accuracy < result.oracle_clean_accuracy
        assert result.surrogate_test_accuracy > 0.4
