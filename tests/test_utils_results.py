"""Tests for repro.utils.results."""

import numpy as np
import pytest

from repro.utils.results import RunResult, SweepResult


def make_run(name="run", accuracy=0.5, dataset="mnist-like"):
    run = RunResult(name=name, metadata={"dataset": dataset})
    run.add_metric("accuracy", accuracy)
    run.add_array("curve", [1.0, 2.0, 3.0])
    return run


class TestRunResult:
    def test_add_metric_coerces_float(self):
        run = RunResult(name="r")
        run.add_metric("acc", np.float64(0.25))
        assert isinstance(run.metrics["acc"], float)

    def test_add_array_coerces_ndarray(self):
        run = RunResult(name="r")
        run.add_array("x", [1, 2, 3])
        assert isinstance(run.arrays["x"], np.ndarray)

    def test_roundtrip_dict(self):
        run = make_run()
        restored = RunResult.from_dict(run.to_dict())
        assert restored.name == run.name
        assert restored.metrics == run.metrics
        np.testing.assert_array_equal(restored.arrays["curve"], run.arrays["curve"])
        assert restored.metadata == run.metadata

    def test_to_dict_is_json_friendly(self):
        import json

        run = make_run()
        json.dumps(run.to_dict())  # must not raise


class TestSweepResult:
    def test_add_and_len(self):
        sweep = SweepResult(name="s")
        sweep.add(make_run())
        sweep.add(make_run(accuracy=0.7))
        assert len(sweep) == 2

    def test_metric_values_and_stats(self):
        sweep = SweepResult(name="s")
        for acc in (0.2, 0.4, 0.6):
            sweep.add(make_run(accuracy=acc))
        np.testing.assert_allclose(sweep.metric_values("accuracy"), [0.2, 0.4, 0.6])
        assert sweep.mean_metric("accuracy") == pytest.approx(0.4)
        assert sweep.std_metric("accuracy") == pytest.approx(np.std([0.2, 0.4, 0.6]))

    def test_missing_metric_raises(self):
        sweep = SweepResult(name="s")
        sweep.add(make_run())
        with pytest.raises(KeyError):
            sweep.mean_metric("nonexistent")

    def test_filter_by_metadata(self):
        sweep = SweepResult(name="s")
        sweep.add(make_run(dataset="mnist-like"))
        sweep.add(make_run(dataset="cifar-like"))
        filtered = sweep.filter(dataset="cifar-like")
        assert len(filtered) == 1
        assert filtered.runs[0].metadata["dataset"] == "cifar-like"

    def test_group_by(self):
        sweep = SweepResult(name="s")
        sweep.add(make_run(dataset="a"))
        sweep.add(make_run(dataset="a"))
        sweep.add(make_run(dataset="b"))
        groups = sweep.group_by("dataset")
        assert set(groups) == {"a", "b"}
        assert len(groups["a"]) == 2

    def test_roundtrip_dict(self):
        sweep = SweepResult(name="s", metadata={"scale": "smoke"})
        sweep.add(make_run())
        restored = SweepResult.from_dict(sweep.to_dict())
        assert restored.name == "s"
        assert restored.metadata == {"scale": "smoke"}
        assert len(restored) == 1

    def test_iteration(self):
        sweep = SweepResult(name="s")
        sweep.add(make_run(name="a"))
        sweep.add(make_run(name="b"))
        assert [run.name for run in sweep] == ["a", "b"]
