"""Tests for the repro.analysis subpackage."""

import numpy as np
import pytest

from repro.analysis.aggregation import Aggregate, aggregate_runs, mean_and_std
from repro.analysis.correlation import (
    correlation_of_mean,
    mean_correlation,
    pearson_correlation,
    per_sample_correlations,
    sensitivity_norm_correlations,
)
from repro.analysis.sensitivity import sensitivity_norm_maps, spatial_smoothness
from repro.analysis.statistics import independent_ttest, significance_marker
from repro.nn.gradients import weight_column_norms
from repro.utils.results import RunResult, SweepResult


class TestPearson:
    def test_perfect_correlation(self, rng):
        x = rng.normal(size=50)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_vector_returns_zero(self, rng):
        assert pearson_correlation(np.ones(10), rng.normal(size=10)) == 0.0

    def test_matches_numpy(self, rng):
        x, y = rng.normal(size=30), rng.normal(size=30)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            pearson_correlation(rng.normal(size=5), rng.normal(size=6))


class TestTable1Metrics:
    def test_per_sample_correlations_shape(self, rng):
        sensitivities = rng.uniform(size=(7, 12))
        norms = rng.uniform(size=12)
        assert per_sample_correlations(sensitivities, norms).shape == (7,)

    def test_mean_correlation_is_average(self, rng):
        sensitivities = rng.uniform(size=(5, 10))
        norms = rng.uniform(size=10)
        assert mean_correlation(sensitivities, norms) == pytest.approx(
            per_sample_correlations(sensitivities, norms).mean()
        )

    def test_correlation_of_mean_uses_average_map(self, rng):
        sensitivities = rng.uniform(size=(5, 10))
        norms = rng.uniform(size=10)
        assert correlation_of_mean(sensitivities, norms) == pytest.approx(
            pearson_correlation(sensitivities.mean(axis=0), norms)
        )

    def test_correlation_of_mean_exceeds_mean_correlation_for_noisy_samples(self, rng):
        """The paper's key Table I observation: averaging the sensitivity over
        the set yields a much higher correlation with the 1-norms than
        individual samples do."""
        norms = rng.uniform(0.1, 1.0, size=50)
        # per-sample sensitivities = noisy versions of the norms
        sensitivities = norms[np.newaxis, :] + rng.normal(0, 0.8, size=(200, 50))
        assert correlation_of_mean(sensitivities, norms) > mean_correlation(
            sensitivities, norms
        )

    def test_summary_on_trained_network(self, trained_softmax, mnist_small):
        summary = sensitivity_norm_correlations(
            trained_softmax, mnist_small.test_inputs, mnist_small.test_targets
        )
        assert summary.n_samples == mnist_small.n_test
        assert summary.correlation_of_mean > summary.mean_correlation
        assert summary.correlation_of_mean > 0.5

    def test_summary_with_external_norms(self, trained_softmax, mnist_small):
        norms = weight_column_norms(trained_softmax.weights)
        with_true = sensitivity_norm_correlations(
            trained_softmax, mnist_small.test_inputs, mnist_small.test_targets
        )
        with_external = sensitivity_norm_correlations(
            trained_softmax,
            mnist_small.test_inputs,
            mnist_small.test_targets,
            column_norms=norms * 3.0,  # scaling must not change correlations
        )
        assert with_external.mean_correlation == pytest.approx(with_true.mean_correlation)


class TestSensitivityMaps:
    def test_grayscale_maps(self, trained_softmax, mnist_small):
        maps = sensitivity_norm_maps(
            trained_softmax,
            mnist_small.test_inputs,
            mnist_small.test_targets,
            mnist_small.image_shape,
        )
        assert maps.sensitivity.shape == (28, 28)
        assert maps.column_norms.shape == (28, 28)
        assert maps.channel is None

    def test_color_maps_select_channel(self, cifar_small):
        from repro.nn.trainer import train_single_layer

        network, _ = train_single_layer(cifar_small, output="linear", epochs=3, random_state=0)
        maps = sensitivity_norm_maps(
            network,
            cifar_small.test_inputs,
            cifar_small.test_targets,
            cifar_small.image_shape,
            channel=0,
        )
        assert maps.sensitivity.shape == (32, 32)
        assert maps.channel == 0

    def test_invalid_channel(self, cifar_small):
        from repro.nn.trainer import train_single_layer

        network, _ = train_single_layer(cifar_small, output="linear", epochs=2, random_state=0)
        with pytest.raises(ValueError):
            sensitivity_norm_maps(
                network,
                cifar_small.test_inputs,
                cifar_small.test_targets,
                cifar_small.image_shape,
                channel=5,
            )

    def test_spatial_smoothness_orders_maps_correctly(self, rng):
        smooth = np.outer(np.hanning(20), np.hanning(20))
        rough = rng.uniform(size=(20, 20))
        assert spatial_smoothness(smooth) < spatial_smoothness(rough)

    def test_spatial_smoothness_constant_map(self):
        assert spatial_smoothness(np.ones((5, 5))) == 0.0

    def test_spatial_smoothness_requires_2d(self):
        with pytest.raises(ValueError):
            spatial_smoothness(np.ones(5))


class TestStatistics:
    def test_detects_clear_difference(self, rng):
        a = rng.normal(1.0, 0.1, size=30)
        b = rng.normal(0.0, 0.1, size=30)
        result = independent_ttest(a, b)
        assert result.significant
        assert result.p_value < 1e-6
        assert result.mean_difference == pytest.approx(1.0, abs=0.1)
        assert result.marker() == "*"

    def test_no_difference_not_significant(self, rng):
        a = rng.normal(0.0, 1.0, size=30)
        b = rng.normal(0.0, 1.0, size=30)
        result = independent_ttest(a, b)
        assert result.p_value > 0.01

    def test_constant_samples_handled(self):
        result = independent_ttest(np.ones(5), np.ones(5) * 2)
        assert not result.significant
        assert result.p_value == 1.0

    def test_small_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            independent_ttest(np.array([1.0]), rng.normal(size=5))

    def test_alpha_validation(self, rng):
        with pytest.raises(ValueError):
            independent_ttest(rng.normal(size=5), rng.normal(size=5), alpha=2.0)

    def test_significance_marker_helper(self, rng):
        a = rng.normal(5.0, 0.1, size=20)
        b = rng.normal(0.0, 0.1, size=20)
        assert significance_marker(a, b) == "*"
        assert significance_marker(a, a) == " "

    def test_welch_variant_runs(self, rng):
        a = rng.normal(0, 1, size=10)
        b = rng.normal(0, 5, size=40)
        result = independent_ttest(a, b, equal_variance=False)
        assert 0 <= result.p_value <= 1


class TestAggregation:
    def test_aggregate_from_values(self):
        aggregate = Aggregate.from_values([1.0, 2.0, 3.0])
        assert aggregate.mean == pytest.approx(2.0)
        assert aggregate.count == 3
        assert "±" in aggregate.format()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Aggregate.from_values([])

    def test_mean_and_std(self):
        mean, std = mean_and_std([2.0, 4.0])
        assert mean == pytest.approx(3.0)
        assert std == pytest.approx(1.0)

    def test_aggregate_runs_from_dicts(self):
        runs = [{"acc": 0.5, "loss": 1.0}, {"acc": 0.7, "loss": 0.8}]
        aggregates = aggregate_runs(runs)
        assert aggregates["acc"].mean == pytest.approx(0.6)
        assert aggregates["loss"].count == 2

    def test_aggregate_runs_from_sweep(self):
        sweep = SweepResult(name="s")
        for value in (0.1, 0.3):
            run = RunResult(name="r")
            run.add_metric("metric", value)
            sweep.add(run)
        aggregates = aggregate_runs(sweep)
        assert aggregates["metric"].mean == pytest.approx(0.2)

    def test_aggregate_runs_empty(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_aggregate_selected_keys(self):
        runs = [{"a": 1.0, "b": 2.0}]
        aggregates = aggregate_runs(runs, metric_keys=["a"])
        assert set(aggregates) == {"a"}
