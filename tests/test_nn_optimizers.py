"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import MeanSquaredError
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, Momentum, get_optimizer


def make_problem(rng, n_samples=50, n_inputs=6, n_outputs=3):
    """A small linear regression problem with a known solution."""
    true_weights = rng.normal(size=(n_outputs, n_inputs))
    inputs = rng.normal(size=(n_samples, n_inputs))
    targets = inputs @ true_weights.T
    return inputs, targets, true_weights


def run_optimizer(optimizer, inputs, targets, steps=300, seed=0):
    net = Sequential([Dense(inputs.shape[1], targets.shape[1], random_state=seed)])
    loss = MeanSquaredError()
    for _ in range(steps):
        outputs = net.forward(inputs, training=True)
        net.backward(loss.gradient(outputs, targets))
        optimizer.step(net)
        net.zero_gradients()
    return loss.value(net.forward(inputs), targets)


class TestConvergence:
    @pytest.mark.parametrize(
        "optimizer",
        [SGD(learning_rate=0.05), Momentum(learning_rate=0.02), Adam(learning_rate=0.05)],
        ids=["sgd", "momentum", "adam"],
    )
    def test_reduces_loss_on_linear_regression(self, optimizer, rng):
        inputs, targets, _ = make_problem(rng)
        final_loss = run_optimizer(optimizer, inputs, targets)
        assert final_loss < 1e-2

    def test_sgd_single_step_direction(self, rng):
        """One SGD step must move weights opposite to the gradient."""
        net = Sequential([Dense(4, 2, random_state=0)])
        inputs = rng.normal(size=(8, 4))
        targets = rng.normal(size=(8, 2))
        loss = MeanSquaredError()
        outputs = net.forward(inputs, training=True)
        net.backward(loss.gradient(outputs, targets))
        before = net.layers[0].weights.copy()
        gradient = net.layers[0].grad_weights.copy()
        SGD(learning_rate=0.1).step(net)
        np.testing.assert_allclose(net.layers[0].weights, before - 0.1 * gradient)

    def test_weight_decay_shrinks_weights(self, rng):
        net = Sequential([Dense(4, 2, random_state=0)])
        inputs = np.zeros((4, 4))
        targets = np.zeros((4, 2))
        loss = MeanSquaredError()
        before_norm = np.abs(net.layers[0].weights).sum()
        optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
        for _ in range(10):
            outputs = net.forward(inputs, training=True)
            net.backward(loss.gradient(outputs, targets))
            optimizer.step(net)
        assert np.abs(net.layers[0].weights).sum() < before_norm


class TestValidationAndState:
    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_step_without_gradients_raises(self):
        net = Sequential([Dense(4, 2, random_state=0)])
        with pytest.raises(RuntimeError):
            SGD().step(net)

    def test_reset_clears_momentum(self, rng):
        net = Sequential([Dense(4, 2, random_state=0)])
        inputs, targets = rng.normal(size=(4, 4)), rng.normal(size=(4, 2))
        loss = MeanSquaredError()
        optimizer = Momentum(learning_rate=0.01)
        outputs = net.forward(inputs, training=True)
        net.backward(loss.gradient(outputs, targets))
        optimizer.step(net)
        assert optimizer._velocity
        optimizer.reset()
        assert not optimizer._velocity

    def test_adam_reset_clears_step_count(self):
        optimizer = Adam()
        optimizer._step_count = 5
        optimizer.reset()
        assert optimizer._step_count == 0

    def test_bias_updated_when_present(self, rng):
        net = Sequential([Dense(4, 2, use_bias=True, random_state=0)])
        inputs, targets = rng.normal(size=(6, 4)), rng.normal(size=(6, 2))
        loss = MeanSquaredError()
        before = net.layers[0].bias.copy()
        outputs = net.forward(inputs, training=True)
        net.backward(loss.gradient(outputs, targets))
        Adam(learning_rate=0.1).step(net)
        assert not np.allclose(net.layers[0].bias, before)


class TestRegistry:
    def test_lookup_with_kwargs(self):
        optimizer = get_optimizer("adam", learning_rate=0.123)
        assert isinstance(optimizer, Adam)
        assert optimizer.learning_rate == pytest.approx(0.123)

    def test_passthrough(self):
        optimizer = SGD()
        assert get_optimizer(optimizer) is optimizer

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_optimizer("lion")
