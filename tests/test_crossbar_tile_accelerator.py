"""Tests for repro.crossbar.tile and repro.crossbar.accelerator."""

import numpy as np
import pytest

from repro.crossbar.accelerator import CrossbarAccelerator
from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.devices import IDEAL_DEVICE
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig
from repro.crossbar.tile import CrossbarTile
from repro.nn.gradients import weight_column_norms
from repro.nn.layers import Dense
from repro.nn.network import Sequential


class TestCrossbarTile:
    def test_ideal_tile_matches_software_layer(self, rng):
        layer = Dense(6, 4, activation="softmax", random_state=0)
        tile = CrossbarTile(layer, random_state=0)
        inputs = rng.uniform(0, 1, size=(5, 6))
        np.testing.assert_allclose(tile.forward(inputs), layer.forward(inputs), atol=1e-10)

    def test_single_vector_input(self, rng):
        layer = Dense(6, 4, activation="linear", random_state=0)
        tile = CrossbarTile(layer, random_state=0)
        u = rng.uniform(0, 1, size=6)
        assert tile.forward(u).shape == (4,)
        assert np.isscalar(tile.total_current(u))

    def test_bias_mapped_to_extra_column(self, rng):
        layer = Dense(5, 3, activation="linear", use_bias=True, random_state=0)
        layer.set_weights(rng.normal(size=(3, 5)), bias=rng.normal(size=3))
        tile = CrossbarTile(layer, random_state=0)
        assert tile.array.n_columns == 6
        inputs = rng.uniform(0, 1, size=(4, 5))
        np.testing.assert_allclose(tile.forward(inputs), layer.forward(inputs), atol=1e-10)

    def test_column_sums_exclude_bias_column(self, rng):
        layer = Dense(5, 3, activation="linear", use_bias=True, random_state=0)
        tile = CrossbarTile(layer, random_state=0)
        assert len(tile.column_conductance_sums) == 5

    def test_total_current_proportional_to_column_1_norms(self, rng):
        layer = Dense(6, 4, activation="linear", random_state=0)
        tile = CrossbarTile(layer, random_state=0)
        # probing with basis vectors recovers the per-column conductance sums
        probes = np.eye(6)
        currents = tile.total_current(probes)
        norms = weight_column_norms(layer.weights)
        correlation = np.corrcoef(currents, norms)[0, 1]
        assert correlation > 0.999999

    def test_dac_quantization_degrades_fidelity(self, rng):
        layer = Dense(8, 4, activation="linear", random_state=0)
        ideal = CrossbarTile(layer, random_state=0)
        coarse = CrossbarTile(layer, dac=DAC(n_bits=2), random_state=0)
        inputs = rng.uniform(0, 1, size=(10, 8))
        ideal_error = np.abs(ideal.forward(inputs) - layer.forward(inputs)).max()
        coarse_error = np.abs(coarse.forward(inputs) - layer.forward(inputs)).max()
        assert ideal_error < 1e-10
        assert coarse_error > ideal_error

    def test_adc_applied_to_output(self, rng):
        layer = Dense(6, 3, activation="linear", random_state=0)
        tile = CrossbarTile(layer, adc=ADC(n_bits=2, current_range=(-1, 1)), random_state=0)
        out = tile.pre_activation(rng.uniform(0, 1, size=(4, 6)))
        assert np.isfinite(out).all()

    def test_wrong_input_dimension(self, rng):
        tile = CrossbarTile(Dense(6, 3, random_state=0), random_state=0)
        with pytest.raises(ValueError):
            tile.forward(rng.uniform(size=(2, 7)))


class TestCrossbarAccelerator:
    def test_matches_software_network(self, trained_softmax, mnist_small):
        accelerator = CrossbarAccelerator(trained_softmax, random_state=0)
        inputs = mnist_small.test_inputs[:20]
        np.testing.assert_allclose(
            accelerator.forward(inputs), trained_softmax.predict(inputs), atol=1e-8
        )
        assert accelerator.fidelity(inputs) < 1e-10

    def test_predict_labels_agree(self, trained_softmax, mnist_small):
        accelerator = CrossbarAccelerator(trained_softmax, random_state=0)
        inputs = mnist_small.test_inputs[:20]
        np.testing.assert_array_equal(
            accelerator.predict_labels(inputs), trained_softmax.predict_labels(inputs)
        )

    def test_power_trace_shapes(self, accelerator, mnist_small):
        report = accelerator.power_trace(mnist_small.test_inputs[:7])
        assert report.total_current.shape == (7,)
        assert report.per_tile_current.shape == (7, 1)
        assert np.all(report.total_current > 0)

    def test_total_current_single_input(self, accelerator, mnist_small):
        value = accelerator.total_current(mnist_small.test_inputs[0])
        assert np.isscalar(value) and value > 0

    def test_multi_layer_accelerator(self, rng):
        network = Sequential(
            [Dense(10, 6, activation="relu", random_state=0), Dense(6, 3, random_state=1)]
        )
        accelerator = CrossbarAccelerator(network, random_state=0)
        assert accelerator.n_tiles == 2
        inputs = rng.uniform(0, 1, size=(4, 10))
        np.testing.assert_allclose(
            accelerator.forward(inputs), network.predict(inputs), atol=1e-8
        )
        report = accelerator.power_trace(inputs)
        assert report.per_tile_current.shape == (4, 2)
        np.testing.assert_allclose(
            report.total_current, report.per_tile_current.sum(axis=1)
        )

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            CrossbarAccelerator(Sequential())

    def test_nonideal_accelerator_diverges_from_software(self, trained_softmax, mnist_small):
        noisy = CrossbarAccelerator(
            trained_softmax,
            mapping=ConductanceMapping(device=IDEAL_DEVICE.with_noise(read_noise=0.05)),
            nonidealities=NonidealityConfig(wire_resistance=0.01),
            random_state=0,
        )
        assert noisy.fidelity(mnist_small.test_inputs[:10]) > 1e-6

    def test_balanced_mapping_hides_column_norms(self, trained_linear):
        """Ablation: with the balanced mapping the power channel leaks nothing."""
        balanced = CrossbarAccelerator(
            trained_linear,
            mapping=ConductanceMapping(scheme="balanced"),
            random_state=0,
        )
        n_features = trained_linear.layers[0].n_inputs
        probes = np.eye(n_features)
        currents = balanced.total_current(probes)
        norms = weight_column_norms(trained_linear.weights)
        correlation = abs(np.corrcoef(currents, norms)[0, 1])
        assert currents.std() / currents.mean() < 1e-6 or correlation < 0.2
