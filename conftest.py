"""Pytest bootstrap: make ``src/`` importable even without installation.

The package is normally installed with ``pip install -e . --no-build-isolation``;
this fallback keeps ``pytest`` working in environments where that step was
skipped (e.g. read-only or fully offline checkouts).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
