"""repro — reproduction of "Enhancing Adversarial Attacks on Single-Layer NVM
Crossbar-Based Neural Networks with Power Consumption Information" (SOCC 2022).

The package is organised bottom-up:

* :mod:`repro.utils` — RNG, validation, serialization, result containers.
* :mod:`repro.nn` — from-scratch numpy neural-network substrate.
* :mod:`repro.datasets` — synthetic MNIST-like / CIFAR-like datasets.
* :mod:`repro.crossbar` — behavioural NVM crossbar simulator (the hardware).
* :mod:`repro.sidechannel` — power measurement, probing and search.
* :mod:`repro.attacks` — the paper's power-aided adversarial attacks.
* :mod:`repro.analysis` — correlations, sensitivity maps, significance tests.
* :mod:`repro.experiments` — pipelines regenerating every table and figure.

Quickstart
----------
>>> from repro.datasets import load_mnist_like
>>> from repro.nn.trainer import train_single_layer
>>> from repro.crossbar import CrossbarAccelerator
>>> from repro.sidechannel import PowerMeasurement, ColumnNormProber
>>> dataset = load_mnist_like(n_train=1000, n_test=200, random_state=0)
>>> network, _ = train_single_layer(dataset, output="softmax", random_state=0)
>>> accelerator = CrossbarAccelerator(network, random_state=0)
>>> prober = ColumnNormProber(PowerMeasurement(accelerator), dataset.n_features)
>>> leaked_norms = prober.probe_all().column_sums  # the power side channel
"""

from repro._version import __version__

__all__ = ["__version__"]
