"""Surrogate-model black-box attacks with power information (Section IV).

The attacker queries the oracle with ``Q`` inputs drawn from the training set
and records, for every query, the observable output (raw vector or label) and
optionally the power measurement.  A linear single-layer surrogate is then
trained with the paper's combined loss (Eq. 9)::

    L = L_out + λ · L_power

where ``L_out`` is the MSE between surrogate and oracle outputs and
``L_power`` is the MSE between the surrogate's *predicted* power consumption
and the measured one.  Under the ideal min-power crossbar mapping the
predicted power for query ``u`` is ``Σ_j u_j Σ_i |w_ij|`` — differentiable in
the surrogate weights (almost everywhere), so the power term can be folded
into ordinary gradient descent.  Finally, FGSM adversarial examples crafted on
the surrogate are transferred to the oracle (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.fgsm import FastGradientSignMethod
from repro.attacks.oracle import Oracle, OracleResponse
from repro.nn.losses import MeanSquaredError
from repro.nn.metrics import accuracy
from repro.nn.network import SingleLayerNetwork
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class SurrogateConfig:
    """Hyper-parameters for surrogate training.

    Attributes
    ----------
    power_loss_weight:
        The λ of Eq. 9.  ``0`` disables the power term (the paper's baseline).
    epochs:
        Training epochs over the query set.
    learning_rate:
        Step size for the (full-batch) gradient descent.
    batch_size:
        Mini-batch size; query sets smaller than this are trained full-batch.
    power_normalization:
        ``"absolute"`` (default, the paper's setting) — the measured power is
        compared directly against the surrogate's predicted power
        ``Σ_j u_j Σ_i |w_ij|``; both are expressed in the paper's normalised
        units, so this is valid whenever the attacker knows the victim's
        conductance normalisation (or measures through the analytic ideal
        oracle).  ``"relative"`` — measured and predicted powers are each
        normalised by their mean before the MSE, making the loss invariant to
        an unknown conductance scale of the victim hardware at the cost of a
        much weaker training signal.
    weight_decay:
        Optional L2 regularisation on the surrogate weights.
    optimizer:
        ``"adam"`` (default) or ``"sgd"``.  Adam converges far enough for the
        power constraint to actually shape the solution within the configured
        epoch budget.
    """

    power_loss_weight: float = 0.0
    epochs: int = 300
    learning_rate: float = 0.01
    batch_size: int = 128
    power_normalization: str = "absolute"
    weight_decay: float = 0.0
    optimizer: str = "adam"

    def __post_init__(self) -> None:
        check_non_negative(self.power_loss_weight, "power_loss_weight")
        check_positive_int(self.epochs, "epochs")
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.batch_size, "batch_size")
        check_non_negative(self.weight_decay, "weight_decay")
        if self.power_normalization not in ("relative", "absolute"):
            raise ValueError(
                "power_normalization must be 'relative' or 'absolute', got "
                f"{self.power_normalization!r}"
            )
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(
                f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}"
            )


class SurrogateTrainer:
    """Trains a linear single-layer surrogate from oracle query data.

    Parameters
    ----------
    n_inputs / n_outputs:
        Dimensions of the surrogate (matching the victim's interface).
    config:
        A :class:`SurrogateConfig`.
    random_state:
        Seed for weight initialisation and mini-batch shuffling.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        *,
        config: Optional[SurrogateConfig] = None,
        random_state: RandomState = None,
    ):
        self.n_inputs = check_positive_int(n_inputs, "n_inputs")
        self.n_outputs = check_positive_int(n_outputs, "n_outputs")
        self.config = config if config is not None else SurrogateConfig()
        self._rng = as_rng(random_state)
        self.loss_history: list[Dict[str, float]] = []

    # ------------------------------------------------------------- training

    def _power_prediction(self, weights: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """Predicted total current under the ideal min-power mapping."""
        column_norms = np.abs(weights).sum(axis=0)
        return queries @ column_norms

    def _normalize(self, values: np.ndarray) -> tuple[np.ndarray, float]:
        """Return (normalised values, normalisation constant)."""
        if self.config.power_normalization == "absolute":
            return values, 1.0
        scale = float(np.mean(np.abs(values)))
        if scale == 0.0:
            return values, 1.0
        return values / scale, scale

    def fit(
        self,
        queries: np.ndarray,
        outputs: np.ndarray,
        power: Optional[np.ndarray] = None,
    ) -> SingleLayerNetwork:
        """Train and return the surrogate network.

        Parameters
        ----------
        queries:
            ``(Q, N)`` oracle query inputs.
        outputs:
            ``(Q, M)`` observed oracle outputs (raw vectors or one-hot labels).
        power:
            ``(Q,)`` measured total currents, or ``None`` when the attacker
            has no power access (the power term is then skipped regardless of
            λ).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        outputs = np.atleast_2d(np.asarray(outputs, dtype=float))
        if queries.shape[1] != self.n_inputs:
            raise ValueError(
                f"queries have {queries.shape[1]} features, expected {self.n_inputs}"
            )
        if outputs.shape != (len(queries), self.n_outputs):
            raise ValueError(
                f"outputs must have shape ({len(queries)}, {self.n_outputs}), "
                f"got {outputs.shape}"
            )
        if power is not None:
            power = np.atleast_1d(np.asarray(power, dtype=float))
            if len(power) != len(queries):
                raise ValueError("power measurements disagree with queries on count")
        use_power = (
            power is not None
            and self.config.power_loss_weight > 0
            and len(queries) > 0
        )
        if use_power:
            power_target, _ = self._normalize(power)

        surrogate = SingleLayerNetwork(
            self.n_inputs, self.n_outputs, output="linear", random_state=self._rng
        )
        weights = surrogate.weights
        config = self.config
        mse = MeanSquaredError()
        n_queries = len(queries)
        batch_size = min(config.batch_size, n_queries)
        self.loss_history = []

        # Adam moment buffers (unused when optimizer == "sgd").
        first_moment = np.zeros_like(weights)
        second_moment = np.zeros_like(weights)
        adam_step = 0
        beta1, beta2, adam_eps = 0.9, 0.999, 1e-8

        for _ in range(config.epochs):
            order = self._rng.permutation(n_queries)
            epoch_out_loss = 0.0
            epoch_power_loss = 0.0
            n_batches = 0
            for start in range(0, n_queries, batch_size):
                idx = order[start : start + batch_size]
                batch_queries = queries[idx]
                batch_outputs = outputs[idx]

                predictions = batch_queries @ weights.T
                residual = predictions - batch_outputs
                out_loss = float(np.mean(residual**2))
                grad = (2.0 / residual.size) * residual.T @ batch_queries

                power_loss = 0.0
                if use_power:
                    predicted_power = self._power_prediction(weights, batch_queries)
                    predicted_norm, predicted_scale = self._normalize(predicted_power)
                    power_residual = predicted_norm - power_target[idx]
                    power_loss = float(np.mean(power_residual**2))
                    # d predicted_norm_q / d w_ij = u_qj sign(w_ij) / predicted_scale
                    # (the normalisation constant is treated as detached).
                    coefficient = (
                        2.0 / (len(idx) * predicted_scale)
                    ) * (power_residual @ batch_queries)
                    grad = grad + config.power_loss_weight * np.sign(weights) * coefficient[
                        np.newaxis, :
                    ]

                if config.weight_decay:
                    grad = grad + config.weight_decay * weights

                if config.optimizer == "adam":
                    adam_step += 1
                    first_moment = beta1 * first_moment + (1.0 - beta1) * grad
                    second_moment = beta2 * second_moment + (1.0 - beta2) * grad**2
                    m_hat = first_moment / (1.0 - beta1**adam_step)
                    v_hat = second_moment / (1.0 - beta2**adam_step)
                    weights = weights - config.learning_rate * m_hat / (
                        np.sqrt(v_hat) + adam_eps
                    )
                else:
                    weights = weights - config.learning_rate * grad
                epoch_out_loss += out_loss
                epoch_power_loss += power_loss
                n_batches += 1

            self.loss_history.append(
                {
                    "output_loss": epoch_out_loss / n_batches,
                    "power_loss": epoch_power_loss / n_batches,
                    "total_loss": (
                        epoch_out_loss + config.power_loss_weight * epoch_power_loss
                    )
                    / n_batches,
                }
            )

        surrogate.weights = weights
        # keep mse referenced for introspection/debugging of the training loss
        self._output_loss = mse
        return surrogate


@dataclass
class SurrogateAttackResult:
    """Outcome of one surrogate-based black-box attack.

    Attributes
    ----------
    surrogate:
        The trained surrogate network.
    surrogate_test_accuracy:
        Surrogate accuracy on the victim's test set (Figure 5 left column).
    oracle_clean_accuracy:
        Victim accuracy on the clean test set.
    oracle_adversarial_accuracy:
        Victim accuracy on FGSM examples crafted on the surrogate
        (Figure 5 centre column).
    n_queries:
        Number of oracle queries used to train the surrogate.
    power_loss_weight:
        The λ used.
    attack_result:
        The FGSM :class:`~repro.attacks.base.AttackResult`.
    """

    surrogate: SingleLayerNetwork
    surrogate_test_accuracy: float
    oracle_clean_accuracy: float
    oracle_adversarial_accuracy: float
    n_queries: int
    power_loss_weight: float
    attack_result: Optional[AttackResult] = None
    metadata: dict = field(default_factory=dict)

    @property
    def accuracy_degradation(self) -> float:
        """How much the attack lowered the victim's accuracy."""
        return self.oracle_clean_accuracy - self.oracle_adversarial_accuracy


class SurrogateAttack:
    """End-to-end surrogate-based black-box FGSM attack (Figure 5 pipeline).

    Parameters
    ----------
    oracle:
        The victim :class:`~repro.attacks.oracle.Oracle`.
    config:
        Surrogate training configuration (λ lives here).
    attack_strength:
        FGSM ε used when attacking the oracle (0.1 in the paper).
    random_state:
        Seed for query sampling and surrogate initialisation.
    """

    def __init__(
        self,
        oracle: Oracle,
        *,
        config: Optional[SurrogateConfig] = None,
        attack_strength: float = 0.1,
        random_state: RandomState = None,
    ):
        self.oracle = oracle
        self.config = config if config is not None else SurrogateConfig()
        self.attack_strength = check_non_negative(attack_strength, "attack_strength")
        self._rng = as_rng(random_state)

    def run(
        self,
        query_inputs: np.ndarray,
        test_inputs: np.ndarray,
        test_targets: np.ndarray,
    ) -> SurrogateAttackResult:
        """Query, train the surrogate, attack, and evaluate on the oracle.

        Parameters
        ----------
        query_inputs:
            ``(Q, N)`` inputs the attacker sends to the oracle (typically a
            subset of the training set, as in the paper).
        test_inputs / test_targets:
            The victim's test set, used to evaluate surrogate fidelity and
            attack efficacy.
        """
        query_inputs = np.atleast_2d(np.asarray(query_inputs, dtype=float))
        test_inputs = np.atleast_2d(np.asarray(test_inputs, dtype=float))
        test_targets = np.atleast_2d(np.asarray(test_targets, dtype=float))

        response: OracleResponse = self.oracle.query(query_inputs)
        trainer = SurrogateTrainer(
            n_inputs=query_inputs.shape[1],
            n_outputs=self.oracle.n_outputs,
            config=self.config,
            random_state=self._rng,
        )
        surrogate = trainer.fit(response.queries, response.outputs, response.power)

        surrogate_test_accuracy = accuracy(surrogate.predict(test_inputs), test_targets)
        oracle_clean_accuracy = self.oracle.accuracy(test_inputs, test_targets)

        attack = FastGradientSignMethod(surrogate, loss=MeanSquaredError())
        attack_result = attack.attack(test_inputs, test_targets, self.attack_strength)
        adversarial_labels = self.oracle.predict_labels(attack_result.adversarial_inputs)
        true_labels = np.argmax(test_targets, axis=1)
        oracle_adversarial_accuracy = float(np.mean(adversarial_labels == true_labels))

        return SurrogateAttackResult(
            surrogate=surrogate,
            surrogate_test_accuracy=surrogate_test_accuracy,
            oracle_clean_accuracy=oracle_clean_accuracy,
            oracle_adversarial_accuracy=oracle_adversarial_accuracy,
            n_queries=len(query_inputs),
            power_loss_weight=self.config.power_loss_weight,
            attack_result=attack_result,
            metadata={
                "output_mode": self.oracle.output_mode,
                "attack_strength": self.attack_strength,
            },
        )
