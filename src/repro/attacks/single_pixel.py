"""Power-guided single-pixel attacks (Figure 4 of the paper).

Five strategies are compared in the paper:

``RANDOM_PIXEL`` ("RP")
    A random pixel is perturbed by ±ε with equal probability — the no-
    information baseline.
``POWER_ADD`` ("+")
    The pixel with the largest weight-column 1-norm (recovered through the
    power side channel) has ε **added**.
``POWER_SUBTRACT`` ("−")
    The same pixel has ε **subtracted**.
``POWER_RANDOM`` ("RD")
    The same pixel is perturbed by ±ε with equal probability (the attacker
    knows *where* to attack but not in which direction).
``WORST_CASE`` ("Worst")
    White-box reference: the most sensitive pixel (largest ``|∂L/∂u_j|``) is
    perturbed in the direction of increasing loss — a single-pixel FGSM.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.nn.gradients import input_gradients
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_non_negative, check_vector


class SinglePixelStrategy(str, Enum):
    """The five single-pixel attack strategies from Figure 4."""

    RANDOM_PIXEL = "random_pixel"
    POWER_ADD = "power_add"
    POWER_SUBTRACT = "power_subtract"
    POWER_RANDOM = "power_random"
    WORST_CASE = "worst_case"

    @property
    def paper_label(self) -> str:
        """The legend label used in the paper's Figure 4."""
        return {
            SinglePixelStrategy.RANDOM_PIXEL: "RP",
            SinglePixelStrategy.POWER_ADD: "+",
            SinglePixelStrategy.POWER_SUBTRACT: "-",
            SinglePixelStrategy.POWER_RANDOM: "RD",
            SinglePixelStrategy.WORST_CASE: "Worst",
        }[self]

    @property
    def needs_power_information(self) -> bool:
        """True for the strategies that require the column 1-norms."""
        return self in (
            SinglePixelStrategy.POWER_ADD,
            SinglePixelStrategy.POWER_SUBTRACT,
            SinglePixelStrategy.POWER_RANDOM,
        )

    @property
    def needs_model_gradients(self) -> bool:
        """True for the white-box worst-case strategy."""
        return self is SinglePixelStrategy.WORST_CASE


class SinglePixelAttack(Attack):
    """Perturb exactly one pixel per image according to a chosen strategy.

    Parameters
    ----------
    strategy:
        A :class:`SinglePixelStrategy` (or its string value).
    column_norms:
        The weight-column 1-norms (or any values proportional to them, e.g.
        the conductance sums recovered by
        :class:`~repro.sidechannel.probing.ColumnNormProber`).  Required by
        the power-guided strategies.
    network:
        The victim network; required by ``WORST_CASE`` (white-box reference).
    loss:
        Loss used for the worst-case gradients (defaults to the network's
        natural loss).
    queries_used:
        Number of power queries spent obtaining ``column_norms``; recorded in
        the attack result for bookkeeping.
    clip_range:
        Optional box constraint (off by default, as in the paper).
    random_state:
        Seed for the random pixel / random sign choices.
    """

    def __init__(
        self,
        strategy: SinglePixelStrategy = SinglePixelStrategy.POWER_ADD,
        *,
        column_norms: Optional[np.ndarray] = None,
        network: Optional[Sequential] = None,
        loss: Optional[Loss] = None,
        queries_used: int = 0,
        clip_range: Optional[Tuple[float, float]] = None,
        random_state: RandomState = None,
    ):
        super().__init__(clip_range)
        self.strategy = SinglePixelStrategy(strategy)
        self.column_norms = (
            check_vector(column_norms, "column_norms") if column_norms is not None else None
        )
        self.network = network
        self.loss = loss
        self.queries_used = int(queries_used)
        self._rng = as_rng(random_state)

        if self.strategy.needs_power_information and self.column_norms is None:
            raise ValueError(
                f"strategy {self.strategy.value!r} requires column_norms (power information)"
            )
        if self.strategy.needs_model_gradients and self.network is None:
            raise ValueError("strategy 'worst_case' requires the victim network")

    # ------------------------------------------------------------------ api

    def target_pixel(self) -> int:
        """The pixel index attacked by the power-guided strategies."""
        if self.column_norms is None:
            raise ValueError("no column norms available")
        return int(np.argmax(self.column_norms))

    def attack(self, inputs: np.ndarray, targets: np.ndarray, strength: float) -> AttackResult:
        check_non_negative(strength, "strength")
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if len(inputs) != len(targets):
            raise ValueError("inputs and targets disagree on sample count")
        n_samples, n_features = inputs.shape
        if self.column_norms is not None and len(self.column_norms) != n_features:
            raise ValueError(
                f"column_norms has length {len(self.column_norms)} but inputs have "
                f"{n_features} features"
            )

        perturbation = np.zeros_like(inputs)
        strategy = self.strategy

        if strategy is SinglePixelStrategy.RANDOM_PIXEL:
            pixels = self._rng.integers(0, n_features, size=n_samples)
            signs = self._rng.choice([-1.0, 1.0], size=n_samples)
            perturbation[np.arange(n_samples), pixels] = signs * strength
        elif strategy is SinglePixelStrategy.WORST_CASE:
            gradients = input_gradients(self.network, inputs, targets, loss=self.loss)
            pixels = np.argmax(np.abs(gradients), axis=1)
            signs = np.sign(gradients[np.arange(n_samples), pixels])
            signs[signs == 0] = 1.0
            perturbation[np.arange(n_samples), pixels] = signs * strength
        else:
            pixel = self.target_pixel()
            if strategy is SinglePixelStrategy.POWER_ADD:
                signs = np.ones(n_samples)
            elif strategy is SinglePixelStrategy.POWER_SUBTRACT:
                signs = -np.ones(n_samples)
            else:  # POWER_RANDOM
                signs = self._rng.choice([-1.0, 1.0], size=n_samples)
            perturbation[:, pixel] = signs * strength

        adversarial = self._finalize(inputs + perturbation)
        return AttackResult(
            adversarial_inputs=adversarial,
            original_inputs=inputs,
            strength=float(strength),
            queries_used=self.queries_used,
            metadata={"attack": "single_pixel", "strategy": strategy.value},
        )
