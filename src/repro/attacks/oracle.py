"""The attacker's interface to the victim model ("oracle").

The paper's black-box experiments assume the attacker can query the victim
accelerator with inputs of their choice and observe some combination of:

* only the predicted label (Figure 5, rows 1 and 3),
* the raw output vector (Figure 5, rows 2 and 4),
* the power side channel (total crossbar current) for each query.

:class:`Oracle` wraps either a software network or a
:class:`~repro.crossbar.accelerator.CrossbarAccelerator` and exposes exactly
those observation channels, while counting queries.

Queries run on the accelerator's fused single-pass engine: when the target is
a :class:`~repro.crossbar.accelerator.CrossbarAccelerator` and power is
exposed, :meth:`Oracle.query` calls
:meth:`~repro.crossbar.accelerator.CrossbarAccelerator.forward_with_power`
once per batch, so the observed outputs and the power trace come from the
*same* conductance realization and the hardware is traversed exactly once —
the legacy engine ran two independent passes (one for outputs, one for
power), which both doubled the cost of every power-exposed query and made
the two channels physically inconsistent under read noise.  Software
(:class:`~repro.nn.network.Sequential`) targets keep the analytic
ideal-crossbar power model.  All observation channels are batched: a single
:meth:`Oracle.query` call with ``(Q, N)`` inputs performs one traversal for
the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.crossbar.accelerator import CrossbarAccelerator
from repro.datasets.transforms import one_hot
from repro.nn.network import Sequential
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_non_negative


@dataclass
class OracleResponse:
    """What the oracle returned for a batch of queries.

    Attributes
    ----------
    queries:
        The query inputs ``(Q, N)``.
    outputs:
        The observable outputs ``(Q, M)``: raw output vectors in ``raw`` mode,
        one-hot encoded argmax labels in ``label`` mode.
    labels:
        Predicted integer labels ``(Q,)`` (always available).
    power:
        Total-current measurements ``(Q,)`` or ``None`` when the attacker
        cannot observe power.
    output_mode:
        ``"raw"`` or ``"label"``.
    per_tile_power:
        ``(Q, n_physical_tiles)`` per-rail current measurements when the
        attacker can probe each crossbar tile individually
        (``expose_per_tile_power=True`` against hardware targets); the tile
        labels are recorded under ``metadata["tile_labels"]``.  ``None``
        otherwise.
    """

    queries: np.ndarray
    outputs: np.ndarray
    labels: np.ndarray
    power: Optional[np.ndarray]
    output_mode: str
    per_tile_power: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        """Number of queried inputs."""
        return len(self.queries)


class Oracle:
    """Query interface to the victim crossbar accelerator.

    Parameters
    ----------
    target:
        A :class:`~repro.crossbar.accelerator.CrossbarAccelerator` (preferred —
        power comes from the simulated hardware) or a plain
        :class:`~repro.nn.network.Sequential` network (power is then computed
        analytically from the weight-column 1-norms, i.e. the ideal-crossbar
        value).
    output_mode:
        ``"raw"`` to reveal output vectors, ``"label"`` to reveal only the
        argmax label.
    expose_power:
        Whether queries also return the power measurement.
    expose_per_tile_power:
        Whether queries additionally reveal each physical tile's supply
        current (the paper's hardware model: every crossbar tile's rail is
        individually observable).  Only hardware targets have tiles; software
        targets ignore this flag.  Requires ``expose_power``.
    power_noise_std:
        Relative measurement noise added to the power observations.
    random_state:
        Seed for the measurement noise.
    """

    VALID_MODES = ("raw", "label")

    def __init__(
        self,
        target: Union[CrossbarAccelerator, Sequential],
        *,
        output_mode: str = "raw",
        expose_power: bool = True,
        expose_per_tile_power: bool = False,
        power_noise_std: float = 0.0,
        random_state: RandomState = None,
    ):
        output_mode = str(output_mode).lower()
        if output_mode not in self.VALID_MODES:
            raise ValueError(
                f"output_mode must be one of {self.VALID_MODES}, got {output_mode!r}"
            )
        if expose_per_tile_power and not expose_power:
            raise ValueError("expose_per_tile_power requires expose_power")
        self.target = target
        self.output_mode = output_mode
        self.expose_power = bool(expose_power)
        self.expose_per_tile_power = bool(expose_per_tile_power)
        self.power_noise_std = check_non_negative(power_noise_std, "power_noise_std")
        self._rng = as_rng(random_state)
        self._queries_used = 0

        self._n_outputs = target.n_outputs

    # ----------------------------------------------------------- accounting

    @property
    def queries_used(self) -> int:
        """Number of inputs queried so far."""
        return self._queries_used

    def reset_counter(self) -> None:
        """Reset the query counter."""
        self._queries_used = 0

    @property
    def n_outputs(self) -> int:
        """Output dimensionality of the victim."""
        return self._n_outputs

    # -------------------------------------------------------------- queries

    def _forward(self, inputs: np.ndarray) -> np.ndarray:
        if isinstance(self.target, CrossbarAccelerator):
            return np.atleast_2d(self.target.forward(inputs))
        return np.atleast_2d(self.target.predict(inputs))

    def _apply_power_noise(self, power: np.ndarray) -> np.ndarray:
        if self.power_noise_std > 0:
            scale = np.mean(np.abs(power)) if np.any(power) else 1.0
            power = power + self._rng.normal(
                0.0, self.power_noise_std * scale, size=power.shape
            )
        return power

    def _power(self, inputs: np.ndarray) -> np.ndarray:
        if isinstance(self.target, CrossbarAccelerator):
            power = np.atleast_1d(self.target.total_current(inputs))
        else:
            # Ideal-crossbar analytic value: i_total = Σ_j u_j Σ_i |w_ij|
            column_norms = np.abs(self.target.layers[0].weights).sum(axis=0)
            power = np.atleast_2d(inputs) @ column_norms
        return self._apply_power_noise(power)

    def query(self, inputs: np.ndarray) -> OracleResponse:
        """Query the oracle with a batch of inputs.

        Hardware targets with power exposed take the fused path: outputs and
        power are measured in one accelerator traversal per batch.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        self._queries_used += len(inputs)

        per_tile_power = None
        metadata = {"expose_power": self.expose_power}
        if self.expose_power and isinstance(self.target, CrossbarAccelerator):
            raw_outputs, report = self.target.forward_with_power(inputs)
            raw_outputs = np.atleast_2d(raw_outputs)
            power = self._apply_power_noise(np.atleast_1d(report.total_current))
            if self.expose_per_tile_power:
                per_tile_power = self._apply_power_noise(
                    np.atleast_2d(report.per_tile_current)
                )
                metadata["tile_labels"] = report.tile_labels
        else:
            raw_outputs = self._forward(inputs)
            power = self._power(inputs) if self.expose_power else None

        labels = np.argmax(raw_outputs, axis=1)
        if self.output_mode == "raw":
            outputs = raw_outputs
        else:
            outputs = one_hot(labels, self._n_outputs)
        return OracleResponse(
            queries=inputs,
            outputs=outputs,
            labels=labels,
            power=power,
            output_mode=self.output_mode,
            per_tile_power=per_tile_power,
            metadata=metadata,
        )

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Victim labels for evaluation purposes (not counted as attack queries)."""
        return np.argmax(self._forward(inputs), axis=1)

    def accuracy(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Victim accuracy on a labelled set (evaluation helper)."""
        labels = self.predict_labels(inputs)
        true_labels = np.argmax(np.atleast_2d(targets), axis=1)
        return float(np.mean(labels == true_labels))
