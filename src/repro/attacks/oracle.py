"""The attacker's interface to the victim model ("oracle").

The paper's black-box experiments assume the attacker can query the victim
accelerator with inputs of their choice and observe some combination of:

* only the predicted label (Figure 5, rows 1 and 3),
* the raw output vector (Figure 5, rows 2 and 4),
* the power side channel (total crossbar current) for each query.

:class:`Oracle` wraps either a software network or a
:class:`~repro.crossbar.accelerator.CrossbarAccelerator` and exposes exactly
those observation channels, while counting queries.

Queries run on the accelerator's fused single-pass engine: when the target is
a :class:`~repro.crossbar.accelerator.CrossbarAccelerator` and power is
exposed, :meth:`Oracle.query` calls
:meth:`~repro.crossbar.accelerator.CrossbarAccelerator.forward_with_power`
once per batch, so the observed outputs and the power trace come from the
*same* conductance realization and the hardware is traversed exactly once —
the legacy engine ran two independent passes (one for outputs, one for
power), which both doubled the cost of every power-exposed query and made
the two channels physically inconsistent under read noise.  Software
(:class:`~repro.nn.network.Sequential`) targets keep the analytic
ideal-crossbar power model.  All observation channels are batched: a single
:meth:`Oracle.query` call with ``(Q, N)`` inputs performs one traversal for
the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.crossbar.accelerator import CrossbarAccelerator
from repro.datasets.transforms import one_hot
from repro.nn.network import Sequential
from repro.sidechannel.measurement import QueryBudgetExceeded
from repro.utils.rng import RandomState, as_rng, sample_stream
from repro.utils.validation import check_non_negative, check_positive_int

#: Stream-path domain tag for the oracle's instrument noise.
_ORACLE_DOMAIN = 2
_TOTAL_CHANNEL = 0
_PER_TILE_CHANNEL = 1


@dataclass
class OracleResponse:
    """What the oracle returned for a batch of queries.

    Attributes
    ----------
    queries:
        The query inputs ``(Q, N)``.
    outputs:
        The observable outputs ``(Q, M)``: raw output vectors in ``raw`` mode,
        one-hot encoded argmax labels in ``label`` mode.
    labels:
        Predicted integer labels ``(Q,)`` (always available).
    power:
        Total-current measurements ``(Q,)`` or ``None`` when the attacker
        cannot observe power.
    output_mode:
        ``"raw"`` or ``"label"``.
    per_tile_power:
        ``(Q, n_physical_tiles)`` per-rail current measurements when the
        attacker can probe each crossbar tile individually
        (``expose_per_tile_power=True`` against hardware targets); the tile
        labels are recorded under ``metadata["tile_labels"]``.  ``None``
        otherwise.
    """

    queries: np.ndarray
    outputs: np.ndarray
    labels: np.ndarray
    power: Optional[np.ndarray]
    output_mode: str
    per_tile_power: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        """Number of queried inputs."""
        return len(self.queries)


class Oracle:
    """Query interface to the victim crossbar accelerator.

    Parameters
    ----------
    target:
        A :class:`~repro.crossbar.accelerator.CrossbarAccelerator` (preferred —
        power comes from the simulated hardware) or a plain
        :class:`~repro.nn.network.Sequential` network (power is then computed
        analytically from the weight-column 1-norms, i.e. the ideal-crossbar
        value).
    output_mode:
        ``"raw"`` to reveal output vectors, ``"label"`` to reveal only the
        argmax label.
    expose_power:
        Whether queries also return the power measurement.
    expose_per_tile_power:
        Whether queries additionally reveal each physical tile's supply
        current (the paper's hardware model: every crossbar tile's rail is
        individually observable).  Only hardware targets have tiles; software
        targets ignore this flag.  Requires ``expose_power``.
    power_noise_std:
        Relative measurement noise added to the power observations.  The
        noise magnitude scales with *each observation's own* magnitude
        (zero observations fall back to unit scale), never with a batch
        aggregate — so splitting or merging a batch cannot change any
        individual measurement's noise level.
    query_budget:
        Optional hard cap on the number of queried inputs; queries that would
        exceed it raise
        :class:`~repro.sidechannel.measurement.QueryBudgetExceeded` before
        touching the hardware.  Queries are charged only after a successful
        traversal — a failing forward costs the attacker nothing.
    random_state:
        Seed for the measurement noise.
    """

    VALID_MODES = ("raw", "label")

    def __init__(
        self,
        target: Union[CrossbarAccelerator, Sequential],
        *,
        output_mode: str = "raw",
        expose_power: bool = True,
        expose_per_tile_power: bool = False,
        power_noise_std: float = 0.0,
        query_budget: Optional[int] = None,
        random_state: RandomState = None,
    ):
        output_mode = str(output_mode).lower()
        if output_mode not in self.VALID_MODES:
            raise ValueError(
                f"output_mode must be one of {self.VALID_MODES}, got {output_mode!r}"
            )
        if expose_per_tile_power and not expose_power:
            raise ValueError("expose_per_tile_power requires expose_power")
        self.target = target
        self.output_mode = output_mode
        self.expose_power = bool(expose_power)
        self.expose_per_tile_power = bool(expose_per_tile_power)
        self.power_noise_std = check_non_negative(power_noise_std, "power_noise_std")
        if query_budget is not None:
            check_positive_int(query_budget, "query_budget")
        self.query_budget = query_budget
        self._rng = as_rng(random_state)
        self._queries_used = 0
        # Hardware-like targets expose the fused traversal; this also admits
        # wrappers such as PowerNoiseDefense that decorate an accelerator.
        self._hardware = isinstance(target, CrossbarAccelerator) or hasattr(
            target, "forward_with_power"
        )

        self._n_outputs = target.n_outputs

    # ----------------------------------------------------------- accounting

    @property
    def queries_used(self) -> int:
        """Number of inputs queried so far."""
        return self._queries_used

    @property
    def queries_remaining(self) -> Optional[int]:
        """Remaining budget, or ``None`` when unbounded."""
        if self.query_budget is None:
            return None
        return max(0, self.query_budget - self._queries_used)

    def _check_budget(self, n_queries: int) -> None:
        if (
            self.query_budget is not None
            and self._queries_used + n_queries > self.query_budget
        ):
            raise QueryBudgetExceeded(
                f"query of {n_queries} inputs would exceed the budget of "
                f"{self.query_budget} (already used {self._queries_used})"
            )

    def reset_counter(self) -> None:
        """Reset the query counter."""
        self._queries_used = 0

    @property
    def n_outputs(self) -> int:
        """Output dimensionality of the victim."""
        return self._n_outputs

    # -------------------------------------------------------------- queries

    def _forward(self, inputs: np.ndarray, seeds=None) -> np.ndarray:
        if self._hardware:
            if seeds is not None:
                return np.atleast_2d(self.target.forward(inputs, sample_seeds=seeds))
            return np.atleast_2d(self.target.forward(inputs))
        return np.atleast_2d(self.target.predict(inputs))

    def _apply_power_noise(
        self, power: np.ndarray, seeds=None, channel: int = _TOTAL_CHANNEL
    ) -> np.ndarray:
        """Add instrument noise scaled by each observation's own magnitude.

        The scale is per element (zero observations fall back to 1.0), so a
        measurement's noise level never depends on what else happened to be
        in the batch.  With per-request ``seeds``, row ``i``'s draw comes
        from a stream derived from ``seeds[i]`` — independent of batch
        composition and call order — instead of the oracle's generator.
        """
        if self.power_noise_std <= 0:
            return power
        scale = np.abs(power)
        scale = np.where(scale > 0, scale, 1.0)
        if seeds is None:
            noise = self._rng.normal(0.0, 1.0, size=power.shape)
        else:
            noise = np.empty(power.shape)
            for i, seed in enumerate(np.asarray(seeds, dtype=np.uint64)):
                stream = sample_stream(seed, _ORACLE_DOMAIN, channel)
                noise[i] = stream.normal(0.0, 1.0, size=power[i].shape)
        return power + self.power_noise_std * scale * noise

    def _power(self, inputs: np.ndarray, seeds=None) -> np.ndarray:
        if self._hardware:
            if seeds is not None:
                power = np.atleast_1d(
                    self.target.total_current(inputs, sample_seeds=seeds)
                )
            else:
                power = np.atleast_1d(self.target.total_current(inputs))
        else:
            power = self._analytic_power(inputs)
        return self._apply_power_noise(power, seeds)

    def _analytic_power(self, inputs: np.ndarray) -> np.ndarray:
        """Ideal-crossbar analytic power, summed over *every* layer.

        Per layer, ``i_total = Σ_j u_j Σ_i |w_ij|`` with ``u`` the layer's
        input activations; the observable supply current of a multi-layer
        accelerator is the sum of the per-layer tile currents, so the
        software model propagates activations and accumulates each layer's
        contribution (a single-layer network reduces to the historical
        ``inputs @ column_norms``).
        """
        activations = np.atleast_2d(inputs)
        total = np.zeros(len(activations))
        for layer in self.target.layers:
            column_norms = np.abs(layer.weights).sum(axis=0)
            total = total + activations @ column_norms
            activations = np.atleast_2d(layer.forward(activations))
        return total

    def query(self, inputs: np.ndarray, *, seeds=None) -> OracleResponse:
        """Query the oracle with a batch of inputs.

        Hardware targets with power exposed take the fused path: outputs and
        power are measured in one accelerator traversal per batch.

        Parameters
        ----------
        inputs:
            ``(Q, N)`` query batch (a single ``(N,)`` vector is promoted).
        seeds:
            Optional per-row noise seeds (one ``uint64`` per query), as
            derived by :func:`~repro.utils.rng.derive_request_seeds`.  When
            given, every stochastic effect along the measurement path is
            keyed on the row's seed, so against hardware targets each row's
            response is bit-identical no matter how the rows are batched —
            the contract the coalescing query service relies on.  (Software
            ``Sequential`` targets remain subject to BLAS batch-shape
            rounding in the forward pass itself.)
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if seeds is not None:
            seeds = np.asarray(seeds, dtype=np.uint64)
            if seeds.ndim != 1 or len(seeds) != len(inputs):
                raise ValueError(
                    f"seeds must be 1-D with one entry per query row "
                    f"({len(inputs)}), got shape {seeds.shape}"
                )
        self._check_budget(len(inputs))

        per_tile_power = None
        metadata = {"expose_power": self.expose_power}
        if self.expose_power and self._hardware:
            if seeds is not None:
                raw_outputs, report = self.target.forward_with_power(
                    inputs, sample_seeds=seeds
                )
            else:
                raw_outputs, report = self.target.forward_with_power(inputs)
            raw_outputs = np.atleast_2d(raw_outputs)
            power = self._apply_power_noise(np.atleast_1d(report.total_current), seeds)
            if self.expose_per_tile_power:
                per_tile_power = self._apply_power_noise(
                    np.atleast_2d(report.per_tile_current), seeds, _PER_TILE_CHANNEL
                )
                metadata["tile_labels"] = report.tile_labels
        else:
            raw_outputs = self._forward(inputs, seeds)
            power = self._power(inputs, seeds) if self.expose_power else None

        # Charge only after the traversal succeeded: a failing forward (bad
        # input width, budget-free hardware fault) must not cost the attacker.
        self._queries_used += len(inputs)

        labels = np.argmax(raw_outputs, axis=1)
        if self.output_mode == "raw":
            outputs = raw_outputs
        else:
            outputs = one_hot(labels, self._n_outputs)
        return OracleResponse(
            queries=inputs,
            outputs=outputs,
            labels=labels,
            power=power,
            output_mode=self.output_mode,
            per_tile_power=per_tile_power,
            metadata=metadata,
        )

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Victim labels for evaluation purposes (not counted as attack queries)."""
        return np.argmax(self._forward(inputs), axis=1)

    def accuracy(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Victim accuracy on a labelled set (evaluation helper)."""
        labels = self.predict_labels(inputs)
        true_labels = np.argmax(np.atleast_2d(targets), axis=1)
        return float(np.mean(labels == true_labels))
