"""Attack base classes and result containers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.datasets.transforms import clip_to_range


@dataclass
class AttackResult:
    """Adversarial examples plus bookkeeping.

    Attributes
    ----------
    adversarial_inputs:
        The perturbed inputs, same shape as the originals.
    original_inputs:
        The unmodified inputs.
    perturbations:
        ``adversarial_inputs - original_inputs``.
    strength:
        The attack strength (ε) used.
    queries_used:
        Power/oracle queries spent crafting the examples (0 for white-box).
    """

    adversarial_inputs: np.ndarray
    original_inputs: np.ndarray
    strength: float
    queries_used: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adversarial_inputs = np.atleast_2d(np.asarray(self.adversarial_inputs, dtype=float))
        self.original_inputs = np.atleast_2d(np.asarray(self.original_inputs, dtype=float))
        if self.adversarial_inputs.shape != self.original_inputs.shape:
            raise ValueError(
                "adversarial and original inputs must have the same shape, got "
                f"{self.adversarial_inputs.shape} and {self.original_inputs.shape}"
            )

    @property
    def perturbations(self) -> np.ndarray:
        """The applied perturbations ``r = u' - u``."""
        return self.adversarial_inputs - self.original_inputs

    def perturbation_norms(self, order: float = 2) -> np.ndarray:
        """Per-sample ℓp norms of the perturbations."""
        return np.linalg.norm(self.perturbations, ord=order, axis=1)

    @property
    def n_samples(self) -> int:
        """Number of attacked samples."""
        return len(self.adversarial_inputs)


class Attack(ABC):
    """Base class for evasion attacks.

    Parameters
    ----------
    clip_range:
        Optional ``(low, high)`` box constraint applied to adversarial
        examples.  The paper's single-pixel experiments do not clip (attack
        strengths up to 10 on [0, 1] pixels), so clipping defaults to off and
        is opt-in per attack.
    """

    def __init__(self, clip_range: Optional[Tuple[float, float]] = None):
        if clip_range is not None:
            low, high = float(clip_range[0]), float(clip_range[1])
            if high <= low:
                raise ValueError(f"clip_range upper bound {high} must exceed {low}")
            clip_range = (low, high)
        self.clip_range = clip_range

    def _finalize(self, adversarial: np.ndarray) -> np.ndarray:
        """Apply the box constraint (if any)."""
        if self.clip_range is None:
            return adversarial
        return clip_to_range(adversarial, *self.clip_range)

    @abstractmethod
    def attack(
        self, inputs: np.ndarray, targets: np.ndarray, strength: float
    ) -> AttackResult:
        """Craft adversarial examples for a batch of (inputs, targets)."""

    def __call__(
        self, inputs: np.ndarray, targets: np.ndarray, strength: float
    ) -> AttackResult:
        return self.attack(inputs, targets, strength)
