"""Attack-evaluation helpers: accuracy under attack and strength sweeps."""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Union

import numpy as np

from repro.attacks.base import Attack
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.nn.network import Sequential

Victim = Union[Sequential, CrossbarAccelerator]


def _victim_labels(victim: Victim, inputs: np.ndarray) -> np.ndarray:
    if isinstance(victim, CrossbarAccelerator):
        return victim.predict_labels(inputs)
    return victim.predict_labels(inputs)


def accuracy_under_attack(
    victim: Victim,
    attack: Attack,
    inputs: np.ndarray,
    targets: np.ndarray,
    strength: float,
) -> float:
    """Victim accuracy on adversarial examples crafted by ``attack``.

    The attack runs on the clean ``(inputs, targets)`` batch; the resulting
    adversarial inputs are then classified by the victim.
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    targets = np.atleast_2d(np.asarray(targets, dtype=float))
    result = attack.attack(inputs, targets, strength)
    predicted = _victim_labels(victim, result.adversarial_inputs)
    true_labels = np.argmax(targets, axis=1)
    return float(np.mean(predicted == true_labels))


def attack_success_rate(
    victim: Victim,
    attack: Attack,
    inputs: np.ndarray,
    targets: np.ndarray,
    strength: float,
) -> float:
    """Fraction of *initially correctly classified* samples that become misclassified."""
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    targets = np.atleast_2d(np.asarray(targets, dtype=float))
    true_labels = np.argmax(targets, axis=1)
    clean_predictions = _victim_labels(victim, inputs)
    correct_mask = clean_predictions == true_labels
    if not np.any(correct_mask):
        return 0.0
    result = attack.attack(inputs[correct_mask], targets[correct_mask], strength)
    adversarial_predictions = _victim_labels(victim, result.adversarial_inputs)
    flipped = adversarial_predictions != true_labels[correct_mask]
    return float(np.mean(flipped))


def strength_sweep(
    victim: Victim,
    attack_factory: Callable[[], Attack] | Attack,
    inputs: np.ndarray,
    targets: np.ndarray,
    strengths: Sequence[float],
) -> Dict[float, float]:
    """Accuracy under attack for a range of attack strengths (Figure 4 curves).

    Parameters
    ----------
    attack_factory:
        Either an :class:`~repro.attacks.base.Attack` instance reused at every
        strength, or a zero-argument callable building a fresh attack per
        strength (useful when the attack carries random state that should be
        re-drawn).
    """
    accuracies: Dict[float, float] = {}
    for strength in strengths:
        attack = attack_factory() if callable(attack_factory) and not isinstance(attack_factory, Attack) else attack_factory
        accuracies[float(strength)] = accuracy_under_attack(
            victim, attack, inputs, targets, float(strength)
        )
    return accuracies
