"""Fast gradient sign method (FGSM) and fast gradient value (FGV) attacks.

These are the white-box gradient attacks of Eq. 2: one step in the direction
of increasing loss.  In the paper FGSM is used both as the "Worst" reference
in the single-pixel experiments and as the attack crafted on the surrogate
model in the black-box experiments (with attack strength 0.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.nn.gradients import input_gradients
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.utils.validation import check_non_negative


def fgsm_perturbation(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    strength: float,
    *,
    loss: Optional[Loss] = None,
) -> np.ndarray:
    """The FGSM perturbation ``ε · sgn(∇_u L)`` for a batch of inputs."""
    check_non_negative(strength, "strength")
    gradients = input_gradients(network, inputs, targets, loss=loss)
    return strength * np.sign(gradients)


class FastGradientSignMethod(Attack):
    """One-step FGSM attack: ``u' = u + ε · sgn(∇_u L)``.

    Parameters
    ----------
    network:
        The (white-box or surrogate) model whose gradients guide the attack.
    loss:
        Loss to differentiate; defaults to the network's natural loss.
    clip_range:
        Optional box constraint for the adversarial examples.
    """

    def __init__(
        self,
        network: Sequential,
        *,
        loss: Optional[Loss] = None,
        clip_range: Optional[Tuple[float, float]] = None,
    ):
        super().__init__(clip_range)
        self.network = network
        self.loss = loss

    def attack(self, inputs: np.ndarray, targets: np.ndarray, strength: float) -> AttackResult:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        perturbation = fgsm_perturbation(
            self.network, inputs, targets, strength, loss=self.loss
        )
        adversarial = self._finalize(inputs + perturbation)
        return AttackResult(
            adversarial_inputs=adversarial,
            original_inputs=inputs,
            strength=float(strength),
            metadata={"attack": "fgsm"},
        )


class FastGradientValueMethod(Attack):
    """FGV attack: step along the (normalised) gradient value instead of its sign.

    ``u' = u + ε · ∇_u L / max_j |∇_u L|_j`` per sample, so the largest pixel
    change equals ε, matching the FGSM perturbation budget in ℓ∞.
    """

    def __init__(
        self,
        network: Sequential,
        *,
        loss: Optional[Loss] = None,
        clip_range: Optional[Tuple[float, float]] = None,
    ):
        super().__init__(clip_range)
        self.network = network
        self.loss = loss

    def attack(self, inputs: np.ndarray, targets: np.ndarray, strength: float) -> AttackResult:
        check_non_negative(strength, "strength")
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        gradients = input_gradients(self.network, inputs, targets, loss=self.loss)
        scales = np.abs(gradients).max(axis=1, keepdims=True)
        scales[scales == 0] = 1.0
        perturbation = strength * gradients / scales
        adversarial = self._finalize(inputs + perturbation)
        return AttackResult(
            adversarial_inputs=adversarial,
            original_inputs=inputs,
            strength=float(strength),
            metadata={"attack": "fgv"},
        )
