"""Multi-pixel extension of the power-guided attack.

Section III of the paper notes that attacking the pixels associated with the
top-N column 1-norms becomes *less* effective as N grows when the attacker
must guess each perturbation direction (probability ``(1/2)^N`` of guessing
all of them right).  This module implements that attack so the claim can be
reproduced, plus the oracle-direction variant that serves as its upper bound.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.nn.gradients import input_gradients
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_non_negative, check_positive_int, check_vector


class MultiPixelAttack(Attack):
    """Perturb the pixels with the top-N column 1-norms.

    Parameters
    ----------
    column_norms:
        Power-derived column 1-norms (or values proportional to them).
    n_pixels:
        How many of the highest-norm pixels to perturb.
    direction:
        ``"random"`` — each chosen pixel gets ±ε with equal probability (the
        realistic power-only attacker, matching the paper's discussion);
        ``"add"`` / ``"subtract"`` — all chosen pixels move the same way;
        ``"oracle"`` — each pixel moves in the direction of the true loss
        gradient (requires ``network``), providing the upper bound.
    network / loss:
        Needed only for the ``"oracle"`` direction.
    clip_range:
        Optional box constraint.
    random_state:
        Seed for the random directions.
    """

    VALID_DIRECTIONS = ("random", "add", "subtract", "oracle")

    def __init__(
        self,
        column_norms: np.ndarray,
        n_pixels: int = 2,
        *,
        direction: str = "random",
        network: Optional[Sequential] = None,
        loss: Optional[Loss] = None,
        queries_used: int = 0,
        clip_range: Optional[Tuple[float, float]] = None,
        random_state: RandomState = None,
    ):
        super().__init__(clip_range)
        self.column_norms = check_vector(column_norms, "column_norms")
        self.n_pixels = check_positive_int(n_pixels, "n_pixels")
        if self.n_pixels > len(self.column_norms):
            raise ValueError(
                f"n_pixels ({self.n_pixels}) exceeds the number of inputs "
                f"({len(self.column_norms)})"
            )
        direction = str(direction).lower()
        if direction not in self.VALID_DIRECTIONS:
            raise ValueError(
                f"direction must be one of {self.VALID_DIRECTIONS}, got {direction!r}"
            )
        if direction == "oracle" and network is None:
            raise ValueError("direction 'oracle' requires the victim network")
        self.direction = direction
        self.network = network
        self.loss = loss
        self.queries_used = int(queries_used)
        self._rng = as_rng(random_state)

    def target_pixels(self) -> np.ndarray:
        """Indices of the ``n_pixels`` largest column 1-norms (descending)."""
        order = np.argsort(self.column_norms)[::-1]
        return order[: self.n_pixels]

    def attack(self, inputs: np.ndarray, targets: np.ndarray, strength: float) -> AttackResult:
        check_non_negative(strength, "strength")
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if len(inputs) != len(targets):
            raise ValueError("inputs and targets disagree on sample count")
        n_samples = len(inputs)
        pixels = self.target_pixels()

        if self.direction == "add":
            signs = np.ones((n_samples, self.n_pixels))
        elif self.direction == "subtract":
            signs = -np.ones((n_samples, self.n_pixels))
        elif self.direction == "oracle":
            gradients = input_gradients(self.network, inputs, targets, loss=self.loss)
            signs = np.sign(gradients[:, pixels])
            signs[signs == 0] = 1.0
        else:  # random
            signs = self._rng.choice([-1.0, 1.0], size=(n_samples, self.n_pixels))

        perturbation = np.zeros_like(inputs)
        perturbation[:, pixels] = signs * strength
        adversarial = self._finalize(inputs + perturbation)
        return AttackResult(
            adversarial_inputs=adversarial,
            original_inputs=inputs,
            strength=float(strength),
            queries_used=self.queries_used,
            metadata={
                "attack": "multi_pixel",
                "n_pixels": self.n_pixels,
                "direction": self.direction,
            },
        )
