"""Adversarial attacks on crossbar-based single-layer networks.

This package contains the paper's primary contribution: evasion attacks that
exploit the crossbar power side channel.

* :mod:`repro.attacks.fgsm` — white-box FGSM / FGV gradient attacks (Eq. 2).
* :mod:`repro.attacks.single_pixel` — power-guided single-pixel attacks
  (Figure 4: RP, +, −, RD, Worst).
* :mod:`repro.attacks.multi_pixel` — the top-N extension discussed in
  Section III.
* :mod:`repro.attacks.oracle` — the attacker's view of the victim accelerator
  (label-only or raw outputs, with or without power).
* :mod:`repro.attacks.surrogate` — surrogate training with the power loss
  (Eq. 9) and the surrogate-based black-box FGSM attack (Figure 5).
"""

from repro.attacks.base import Attack, AttackResult
from repro.attacks.fgsm import FastGradientSignMethod, FastGradientValueMethod, fgsm_perturbation
from repro.attacks.oracle import Oracle, OracleResponse
from repro.attacks.single_pixel import SinglePixelAttack, SinglePixelStrategy
from repro.attacks.multi_pixel import MultiPixelAttack
from repro.attacks.surrogate import (
    SurrogateConfig,
    SurrogateTrainer,
    SurrogateAttack,
    SurrogateAttackResult,
)
from repro.attacks.evaluation import (
    accuracy_under_attack,
    attack_success_rate,
    strength_sweep,
)

__all__ = [
    "Attack",
    "AttackResult",
    "FastGradientSignMethod",
    "FastGradientValueMethod",
    "fgsm_perturbation",
    "Oracle",
    "OracleResponse",
    "SinglePixelAttack",
    "SinglePixelStrategy",
    "MultiPixelAttack",
    "SurrogateConfig",
    "SurrogateTrainer",
    "SurrogateAttack",
    "SurrogateAttackResult",
    "accuracy_under_attack",
    "attack_success_rate",
    "strength_sweep",
]
