"""Lightweight result containers used by experiments and attacks.

The experiment pipelines produce nested results (per-seed, per-configuration,
per-sweep-point).  These containers keep them structured while remaining
serialisable to plain JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping

import numpy as np


def _to_jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays inside a result to JSON-friendly types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, Mapping):
        return {key: _to_jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    return value


@dataclass
class RunResult:
    """The outcome of one experimental run (one seed, one configuration).

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"table1/mnist/softmax"``.
    metrics:
        Scalar metrics keyed by name.
    arrays:
        Larger array-valued outputs (sensitivity maps, accuracy curves, ...).
    metadata:
        Configuration values, seeds, parameter settings.
    """

    name: str
    metrics: Dict[str, float] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_metric(self, key: str, value: float) -> None:
        """Record a scalar metric."""
        self.metrics[key] = float(value)

    def add_array(self, key: str, value) -> None:
        """Record an array-valued output."""
        self.arrays[key] = np.asarray(value)

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "name": self.name,
            "metrics": _to_jsonable(self.metrics),
            "arrays": _to_jsonable(self.arrays),
            "metadata": _to_jsonable(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        """Reconstruct a :class:`RunResult` produced by :meth:`to_dict`."""
        result = cls(name=str(payload["name"]))
        result.metrics = {k: float(v) for k, v in payload.get("metrics", {}).items()}
        result.arrays = {
            k: np.asarray(v) for k, v in payload.get("arrays", {}).items()
        }
        result.metadata = dict(payload.get("metadata", {}))
        return result


@dataclass
class SweepResult:
    """A collection of :class:`RunResult` objects from a parameter sweep."""

    name: str
    runs: List[RunResult] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add(self, run: RunResult) -> None:
        """Append a run to the sweep."""
        self.runs.append(run)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.runs)

    def filter(self, **metadata_filters: Any) -> "SweepResult":
        """Return the subset of runs whose metadata matches all filters."""
        matched = [
            run
            for run in self.runs
            if all(run.metadata.get(key) == value for key, value in metadata_filters.items())
        ]
        subset = SweepResult(name=self.name, metadata=dict(self.metadata))
        subset.runs = matched
        return subset

    def metric_values(self, key: str) -> np.ndarray:
        """Collect one metric across all runs (missing values are skipped)."""
        values = [run.metrics[key] for run in self.runs if key in run.metrics]
        return np.asarray(values, dtype=float)

    def mean_metric(self, key: str) -> float:
        """Mean of a metric across runs."""
        values = self.metric_values(key)
        if values.size == 0:
            raise KeyError(f"no run contains metric {key!r}")
        return float(values.mean())

    def std_metric(self, key: str) -> float:
        """Standard deviation of a metric across runs."""
        values = self.metric_values(key)
        if values.size == 0:
            raise KeyError(f"no run contains metric {key!r}")
        return float(values.std())

    def group_by(self, metadata_key: str) -> Dict[Any, "SweepResult"]:
        """Partition the sweep by one metadata field."""
        groups: Dict[Any, SweepResult] = {}
        for run in self.runs:
            key = run.metadata.get(metadata_key)
            if key not in groups:
                groups[key] = SweepResult(
                    name=f"{self.name}[{metadata_key}={key}]",
                    metadata=dict(self.metadata),
                )
            groups[key].add(run)
        return groups

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "name": self.name,
            "metadata": _to_jsonable(self.metadata),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResult":
        """Reconstruct a :class:`SweepResult` produced by :meth:`to_dict`."""
        sweep = cls(name=str(payload["name"]), metadata=dict(payload.get("metadata", {})))
        sweep.runs = [RunResult.from_dict(entry) for entry in payload.get("runs", [])]
        return sweep
