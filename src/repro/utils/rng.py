"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`as_rng` normalises all of
those to a ``Generator`` so components never share hidden global state, and
:func:`spawn_rngs` derives independent child generators for multi-run
experiments so that runs are reproducible individually and collectively.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

#: The union of things accepted wherever a random source is required.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        "random_state must be None, int, SeedSequence or Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators.

    The derivation is deterministic given ``random_state``: calling this twice
    with the same seed yields identical child streams, which is what the
    multi-seed experiment runner relies on.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.Generator):
        # Use the generator itself to produce child seeds deterministically
        # with respect to its current state.
        seeds = random_state.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(seed)) for seed in seeds]
    seq = (
        random_state
        if isinstance(random_state, np.random.SeedSequence)
        else np.random.SeedSequence(random_state)
    )
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def seeds_for_runs(base_seed: Optional[int], n_runs: int) -> list[int]:
    """Produce a list of integer seeds, one per independent run.

    Unlike :func:`spawn_rngs` this returns plain integers, which are easier to
    record in result metadata and to replay individually.
    """
    if n_runs < 0:
        raise ValueError(f"n_runs must be non-negative, got {n_runs}")
    seq = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n_runs)]


def shuffled_indices(
    n: int, rng: np.random.Generator, subset: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Return a random permutation of ``range(n)`` (or of ``subset``)."""
    if subset is None:
        return rng.permutation(n)
    indices = np.asarray(list(subset), dtype=int)
    return rng.permutation(indices)


def choice_without_replacement(
    rng: np.random.Generator, population: Union[int, Iterable[int]], size: int
) -> np.ndarray:
    """Sample ``size`` distinct items from ``population`` (int = range)."""
    if isinstance(population, (int, np.integer)):
        n = int(population)
    else:
        population = np.asarray(list(population))
        n = len(population)
    if size > n:
        raise ValueError(f"cannot sample {size} items from population of {n}")
    idx = rng.choice(n, size=size, replace=False)
    if isinstance(population, np.ndarray):
        return population[idx]
    return idx
