"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`as_rng` normalises all of
those to a ``Generator`` so components never share hidden global state, and
:func:`spawn_rngs` derives independent child generators for multi-run
experiments so that runs are reproducible individually and collectively.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

#: The union of things accepted wherever a random source is required.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        "random_state must be None, int, SeedSequence or Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators.

    The derivation is deterministic given ``random_state``: calling this twice
    with the same seed yields identical child streams, which is what the
    multi-seed experiment runner relies on.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.Generator):
        # Use the generator itself to produce child seeds deterministically
        # with respect to its current state.
        seeds = random_state.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(seed)) for seed in seeds]
    seq = (
        random_state
        if isinstance(random_state, np.random.SeedSequence)
        else np.random.SeedSequence(random_state)
    )
    return [np.random.default_rng(child) for child in seq.spawn(count)]


#: Mask folding arbitrary Python ints into the non-negative range
#: :class:`numpy.random.SeedSequence` accepts as one entropy word.
_UINT64_MASK = (1 << 64) - 1


_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MUL1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MUL2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """splitmix64 finaliser (the standard xoshiro seeding mixer), plain ints.

    Deliberately implemented on Python integers: the service derives seeds
    per request for typically one-row inputs, where int arithmetic is an
    order of magnitude faster than numpy uint64 scalar ops.
    """
    x = (x + _SPLITMIX_GAMMA) & _UINT64_MASK
    x ^= x >> 30
    x = (x * _SPLITMIX_MUL1) & _UINT64_MASK
    x ^= x >> 27
    x = (x * _SPLITMIX_MUL2) & _UINT64_MASK
    x ^= x >> 31
    return x


def derive_request_seeds(
    base_seed: int, request_id: int, n_rows: int
) -> np.ndarray:
    """Per-row noise seeds for one service request, derived deterministically.

    The async query service assigns every submitted request a sequence number
    and derives one ``uint64`` seed per input row from ``(base_seed,
    request_id)``.  Each row's seed depends only on those two values — never
    on how the request is later batched — which is what makes a coalesced
    response bit-identical to the same request measured alone: every noise
    draw along the measurement path is keyed on the row's seed via
    :func:`sample_stream`.

    The derivation is a counter-mode splitmix64 chain rather than a
    :class:`~numpy.random.SeedSequence` because it sits on the service's
    per-request hot path (SeedSequence construction costs microseconds per
    request; this is tens of nanoseconds); the mixer is the standard xoshiro
    seeding finaliser, so distinct ``(base_seed, request_id, row)`` triples
    map to statistically independent seeds.
    """
    if n_rows < 1:
        raise ValueError(f"n_rows must be >= 1, got {n_rows}")
    root = _splitmix64(
        _splitmix64(int(base_seed) & _UINT64_MASK)
        ^ (int(request_id) & _UINT64_MASK)
    )
    return np.array(
        [
            _splitmix64((root + _SPLITMIX_GAMMA * row) & _UINT64_MASK)
            for row in range(1, n_rows + 1)
        ],
        dtype=np.uint64,
    )


def sample_stream(seed: int, *path: int) -> np.random.Generator:
    """An independent generator for one (seed, consumer-path) pair.

    ``path`` identifies the consumer — e.g. ``(domain, tile, channel)`` — so
    distinct noise sources never share a stream even when they share the
    per-row ``seed``.  The derivation is stateless: the same arguments always
    yield the same stream, regardless of call order or batch shape.
    """
    entropy = [int(seed) & _UINT64_MASK]
    entropy.extend(int(part) & _UINT64_MASK for part in path)
    return np.random.default_rng(np.random.SeedSequence(entropy))


def seeded_noise_factors(seeds, *path: int, std: float) -> np.ndarray:
    """Per-row multiplicative noise factors ``1 + N(0, std)``, one per seed.

    The backend-agnostic counter-based sampler of the seeded measurement
    path: row ``i``'s factor is drawn from the stateless
    :func:`sample_stream` keyed on ``(seeds[i], *path)`` — exactly the
    stream the scalar per-row loop historically used — so the realizations
    are a pure function of the counter-derived seeds, independent of batch
    composition, call order, and compute backend.  Generation happens on
    the host (seeds and streams never live on a device); array backends
    receive the factors via one ``asarray`` transfer and apply them with an
    elementwise multiply, which keeps the seeded path bit-identical within
    each backend.
    """
    return np.array(
        [1.0 + sample_stream(int(seed), *path).normal(0.0, std) for seed in seeds]
    )


def fold_seed(seed: int, *path: int) -> int:
    """Derive a child ``uint64`` seed from ``seed`` and a consumer path.

    Used where a per-row seed must branch again (e.g. one sub-seed per
    repeated read of an averaging instrument) while staying in plain-integer
    form so it can be handed onwards as a ``sample_seeds`` entry.
    """
    entropy = [int(seed) & _UINT64_MASK]
    entropy.extend(int(part) & _UINT64_MASK for part in path)
    return int(np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint64)[0])


def seeds_for_runs(base_seed: Optional[int], n_runs: int) -> list[int]:
    """Produce a list of integer seeds, one per independent run.

    Unlike :func:`spawn_rngs` this returns plain integers, which are easier to
    record in result metadata and to replay individually.
    """
    if n_runs < 0:
        raise ValueError(f"n_runs must be non-negative, got {n_runs}")
    seq = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n_runs)]


def shuffled_indices(
    n: int, rng: np.random.Generator, subset: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Return a random permutation of ``range(n)`` (or of ``subset``)."""
    if subset is None:
        return rng.permutation(n)
    indices = np.asarray(list(subset), dtype=int)
    return rng.permutation(indices)


def choice_without_replacement(
    rng: np.random.Generator, population: Union[int, Iterable[int]], size: int
) -> np.ndarray:
    """Sample ``size`` distinct items from ``population`` (int = range)."""
    if isinstance(population, (int, np.integer)):
        n = int(population)
    else:
        population = np.asarray(list(population))
        n = len(population)
    if size > n:
        raise ValueError(f"cannot sample {size} items from population of {n}")
    idx = rng.choice(n, size=size, replace=False)
    if isinstance(population, np.ndarray):
        return population[idx]
    return idx
