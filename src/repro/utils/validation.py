"""Input-validation helpers shared across the library.

These raise consistent, descriptive errors so that user mistakes surface at
API boundaries rather than deep inside numerical code.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def check_array(
    value,
    name: str,
    *,
    ndim: Optional[int] = None,
    dtype=float,
    allow_empty: bool = True,
) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate its dimensionality."""
    array = np.asarray(value, dtype=dtype)
    if ndim is not None and array.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if not allow_empty and array.size == 0:
        raise ValueError(f"{name} must not be empty")
    if np.issubdtype(array.dtype, np.floating) and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return array


def check_vector(value, name: str, *, length: Optional[int] = None) -> np.ndarray:
    """Validate a 1-D float array, optionally of an exact length."""
    vector = check_array(value, name, ndim=1, allow_empty=False)
    if length is not None and vector.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {vector.shape[0]}")
    return vector


def check_matrix(
    value, name: str, *, shape: Optional[Tuple[Optional[int], Optional[int]]] = None
) -> np.ndarray:
    """Validate a 2-D float array, optionally against a (rows, cols) template.

    ``None`` in either position of ``shape`` means "any size".
    """
    matrix = check_array(value, name, ndim=2, allow_empty=False)
    if shape is not None:
        rows, cols = shape
        if rows is not None and matrix.shape[0] != rows:
            raise ValueError(f"{name} must have {rows} rows, got {matrix.shape[0]}")
        if cols is not None and matrix.shape[1] != cols:
            raise ValueError(f"{name} must have {cols} columns, got {matrix.shape[1]}")
    return matrix


def check_probability(value: float, name: str) -> float:
    """Validate a scalar probability in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate a strictly positive scalar."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate a scalar >= 0."""
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate ``low <= value <= high``."""
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_same_length(a: Sequence, b: Sequence, name_a: str, name_b: str) -> None:
    """Validate that two sequences have the same length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def check_positive_int(value: int, name: str) -> int:
    """Validate a strictly positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate an integer >= 0."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)
