"""Serialization helpers for models and experiment results."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj):  # noqa: D102 - documented by base class
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.bool_):
            return bool(obj)
        return super().default(obj)


def save_json(payload: Mapping[str, Any], path: PathLike, *, indent: int = 2) -> Path:
    """Write ``payload`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, cls=_NumpyJSONEncoder)
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON document written by :func:`save_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_npz(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a dictionary of arrays as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(val) for key, val in arrays.items()})
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` archive into a plain dictionary of arrays."""
    path = Path(path)
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
