"""Shared utilities: RNG management, validation, serialization, results."""

from repro.utils.rng import RandomState, spawn_rngs, as_rng
from repro.utils.validation import (
    check_array,
    check_matrix,
    check_vector,
    check_probability,
    check_positive,
    check_non_negative,
    check_in_range,
    check_same_length,
)
from repro.utils.results import RunResult, SweepResult
from repro.utils.serialization import save_json, load_json, save_npz, load_npz

__all__ = [
    "RandomState",
    "spawn_rngs",
    "as_rng",
    "check_array",
    "check_matrix",
    "check_vector",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_same_length",
    "RunResult",
    "SweepResult",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
]
