"""Input DAC and output ADC models.

The crossbar is an analogue block; in a real accelerator the digital inputs
pass through a DAC to become line voltages and the output currents pass
through an ADC before the digital activation function.  Both converters are
simple uniform quantizers over a configurable range.  Infinite resolution
(``n_bits=None``) reproduces the paper's ideal analysis.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive_int


class _UniformQuantizer:
    """Shared implementation of a clipping uniform quantizer."""

    def __init__(self, n_bits: Optional[int], value_range: Tuple[float, float]):
        if n_bits is not None:
            check_positive_int(n_bits, "n_bits")
        low, high = float(value_range[0]), float(value_range[1])
        if high <= low:
            raise ValueError(f"range upper bound {high} must exceed lower bound {low}")
        self.n_bits = n_bits
        self.low = low
        self.high = high

    @property
    def n_levels(self) -> Optional[int]:
        """Number of representable levels, or None when unquantized."""
        if self.n_bits is None:
            return None
        return 2**self.n_bits

    def convert(self, values: np.ndarray) -> np.ndarray:
        """Clip to range and (if quantized) snap to the nearest level."""
        values = np.asarray(values, dtype=float)
        clipped = np.clip(values, self.low, self.high)
        if self.n_bits is None:
            return clipped
        span = self.high - self.low
        steps = self.n_levels - 1
        indices = np.rint((clipped - self.low) / span * steps)
        return self.low + indices * span / steps


class DAC(_UniformQuantizer):
    """Digital-to-analogue converter for crossbar input voltages.

    Parameters
    ----------
    n_bits:
        Resolution in bits; ``None`` for an ideal (continuous) DAC.
    voltage_range:
        The output voltage range (defaults to the normalised ``[0, 1]`` used
        throughout the paper).
    """

    def __init__(self, n_bits: Optional[int] = None, voltage_range: Tuple[float, float] = (0.0, 1.0)):
        super().__init__(n_bits, voltage_range)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAC(n_bits={self.n_bits}, range=({self.low}, {self.high}))"


class ADC(_UniformQuantizer):
    """Analogue-to-digital converter for crossbar output currents.

    Parameters
    ----------
    n_bits:
        Resolution in bits; ``None`` for an ideal (continuous) ADC.
    current_range:
        Full-scale input current range.  The tile computes a sensible default
        from the programmed conductances when none is given.
    """

    def __init__(
        self,
        n_bits: Optional[int] = None,
        current_range: Tuple[float, float] = (-1.0, 1.0),
    ):
        super().__init__(n_bits, current_range)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ADC(n_bits={self.n_bits}, range=({self.low}, {self.high}))"
