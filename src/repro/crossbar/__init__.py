"""Behavioural NVM crossbar simulator.

Implements the hardware substrate from Section II-B of the paper: the
weight-to-conductance mapping, the ideal crossbar matrix-vector product
(Eq. 3-4), the total-current / power model (Eq. 5), and the peripheral
circuitry (DAC/ADC) needed to run a neural-network layer on the array.
Non-idealities (programming noise, read noise, conductance quantization,
stuck devices, IR drop) are available as opt-in extensions corresponding to
the paper's stated future work.
"""

from repro.crossbar.devices import NVMDeviceModel, RERAM_DEVICE, PCM_DEVICE, IDEAL_DEVICE
from repro.crossbar.nonidealities import NonidealityConfig
from repro.crossbar.mapping import (
    ConductanceMapping,
    MappingScheme,
    ShardingSpec,
    reduce_partial_sums,
)
from repro.crossbar.array import CrossbarArray
from repro.crossbar.shard import (
    NonPicklableShardError,
    ShardProgram,
    run_shard,
    run_shard_matvec,
    run_shard_total_current,
)
from repro.crossbar.adc_dac import DAC, ADC
from repro.crossbar.power import PowerModel, PowerReport
from repro.crossbar.tile import CrossbarTile, ShardedTileGroup, build_tile
from repro.crossbar.accelerator import CrossbarAccelerator

__all__ = [
    "NVMDeviceModel",
    "RERAM_DEVICE",
    "PCM_DEVICE",
    "IDEAL_DEVICE",
    "NonidealityConfig",
    "ConductanceMapping",
    "MappingScheme",
    "ShardingSpec",
    "reduce_partial_sums",
    "CrossbarArray",
    "NonPicklableShardError",
    "ShardProgram",
    "run_shard",
    "run_shard_matvec",
    "run_shard_total_current",
    "DAC",
    "ADC",
    "PowerModel",
    "PowerReport",
    "CrossbarTile",
    "ShardedTileGroup",
    "build_tile",
    "CrossbarAccelerator",
]
