"""NVM device models.

A device model captures the conductance range and stochastic behaviour of one
NVM technology (ReRAM, PCM, ...).  The paper's analysis assumes ideal ohmic
devices; :data:`IDEAL_DEVICE` reproduces that exactly (conductance equals the
normalised weight magnitude, no noise), while :data:`RERAM_DEVICE` and
:data:`PCM_DEVICE` provide representative physical parameter sets for the
non-ideality studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class NVMDeviceModel:
    """Parameters of one NVM device technology.

    Attributes
    ----------
    name:
        Technology label.
    g_min / g_max:
        Minimum ("off") and maximum ("on") programmable conductance in siemens.
    programming_noise:
        Relative standard deviation of the conductance programming error
        (lognormal-style multiplicative noise), applied once when the weight
        matrix is written to the array.
    read_noise:
        Relative standard deviation of per-read conductance fluctuation.
    n_levels:
        Number of discrete programmable conductance levels, or ``None`` for a
        continuously programmable device.
    """

    name: str
    g_min: float
    g_max: float
    programming_noise: float = 0.0
    read_noise: float = 0.0
    n_levels: Optional[int] = None

    def __post_init__(self) -> None:
        if self.g_min < 0:
            raise ValueError(f"g_min must be >= 0, got {self.g_min}")
        if self.g_max <= self.g_min:
            raise ValueError(
                f"g_max ({self.g_max}) must exceed g_min ({self.g_min})"
            )
        if self.programming_noise < 0:
            raise ValueError(f"programming_noise must be >= 0, got {self.programming_noise}")
        if self.read_noise < 0:
            raise ValueError(f"read_noise must be >= 0, got {self.read_noise}")
        if self.n_levels is not None and self.n_levels < 2:
            raise ValueError(f"n_levels must be >= 2, got {self.n_levels}")

    @property
    def conductance_range(self) -> float:
        """Programmable conductance span ``g_max - g_min``."""
        return self.g_max - self.g_min

    @property
    def on_off_ratio(self) -> float:
        """``g_max / g_min`` (infinite for an ideal device with g_min = 0)."""
        if self.g_min == 0:
            return float("inf")
        return self.g_max / self.g_min

    def quantize(self, conductances: np.ndarray) -> np.ndarray:
        """Snap conductances to the nearest programmable level (if discrete)."""
        conductances = np.asarray(conductances, dtype=float)
        if self.n_levels is None:
            return np.clip(conductances, self.g_min, self.g_max)
        levels = np.linspace(self.g_min, self.g_max, self.n_levels)
        clipped = np.clip(conductances, self.g_min, self.g_max)
        indices = np.rint(
            (clipped - self.g_min) / self.conductance_range * (self.n_levels - 1)
        ).astype(int)
        return levels[indices]

    def apply_programming_noise(
        self, conductances: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply multiplicative write noise and clip to the valid range."""
        conductances = np.asarray(conductances, dtype=float)
        if self.programming_noise == 0:
            return np.clip(conductances, self.g_min, self.g_max)
        noisy = conductances * (
            1.0 + rng.normal(0.0, self.programming_noise, size=conductances.shape)
        )
        return np.clip(noisy, self.g_min, self.g_max)

    def apply_read_noise(
        self, conductances: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply per-read multiplicative fluctuation (not clipped below g_min=0)."""
        conductances = np.asarray(conductances, dtype=float)
        if self.read_noise == 0:
            return conductances
        noisy = conductances * (
            1.0 + rng.normal(0.0, self.read_noise, size=conductances.shape)
        )
        return np.clip(noisy, 0.0, self.g_max)

    def with_noise(
        self,
        *,
        programming_noise: Optional[float] = None,
        read_noise: Optional[float] = None,
        n_levels: Optional[int] = None,
    ) -> "NVMDeviceModel":
        """Return a copy with modified noise parameters."""
        changes = {}
        if programming_noise is not None:
            changes["programming_noise"] = programming_noise
        if read_noise is not None:
            changes["read_noise"] = read_noise
        if n_levels is not None:
            changes["n_levels"] = n_levels
        return replace(self, **changes)


#: Ideal, normalised device: conductance equals the weight magnitude exactly.
IDEAL_DEVICE = NVMDeviceModel(name="ideal", g_min=0.0, g_max=1.0)

#: Representative HfO2 ReRAM parameters (order-of-magnitude values from the literature).
RERAM_DEVICE = NVMDeviceModel(
    name="reram",
    g_min=1e-6,
    g_max=1e-4,
    programming_noise=0.05,
    read_noise=0.01,
    n_levels=64,
)

#: Representative phase-change-memory parameters.
PCM_DEVICE = NVMDeviceModel(
    name="pcm",
    g_min=5e-7,
    g_max=5e-5,
    programming_noise=0.08,
    read_noise=0.02,
    n_levels=32,
)
