"""Configuration of crossbar non-idealities.

The paper's analysis is for an *ideal* crossbar; this module collects the
non-ideal effects named as future work (and common in the crossbar
literature) so they can be switched on individually to study their impact on
the power side channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class NonidealityConfig:
    """Which non-ideal effects a :class:`~repro.crossbar.array.CrossbarArray` applies.

    Attributes
    ----------
    stuck_at_off_fraction:
        Fraction of devices stuck at ``g_min`` (cannot be programmed).
    stuck_at_on_fraction:
        Fraction of devices stuck at ``g_max``.
    wire_resistance:
        Per-cell line resistance in ohms used by the IR-drop approximation.
        ``0`` disables IR drop.  The approximation attenuates each column's
        contribution by ``1 / (1 + R_wire * G_col * distance)`` which captures
        the first-order effect of current flowing through shared wires.
    wire_resistance_ohm:
        Per-unit-cell wire resistance (ohms) of the full two-dimensional
        IR-drop model.  ``0`` disables it bitwise.  Unlike
        :attr:`wire_resistance` (a per-column attenuation), this models the
        voltage droop a cell at grid position ``(i, j)`` sees along *both*
        the column wire feeding it (``i`` cells deep, loaded by the column's
        total conductance) and the row wire collecting its current (``j``
        cells long, loaded by the row's total conductance):
        ``1 / (1 + R * (G_col[j] * (i+1) + G_row[i] * (j+1)))``.
        The droop therefore scales with the *physical* array dimensions —
        sharding a layer across smaller tiles shortens the wires and shrinks
        the per-wire load, so the same ``wire_resistance_ohm`` hurts a
        monolithic array far more than a finely sharded one.
    current_measurement_noise:
        Standard deviation of additive noise on the *total current*
        measurement (the power side channel), relative to the measured value.
    temperature_drift:
        Relative conductance drift applied uniformly to all devices
        (e.g. 0.02 = +2%); models a temperature offset between programming
        and inference.
    """

    stuck_at_off_fraction: float = 0.0
    stuck_at_on_fraction: float = 0.0
    wire_resistance: float = 0.0
    wire_resistance_ohm: float = 0.0
    current_measurement_noise: float = 0.0
    temperature_drift: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.stuck_at_off_fraction, "stuck_at_off_fraction")
        check_probability(self.stuck_at_on_fraction, "stuck_at_on_fraction")
        if self.stuck_at_off_fraction + self.stuck_at_on_fraction > 1.0:
            raise ValueError("stuck-at fractions must sum to at most 1")
        check_non_negative(self.wire_resistance, "wire_resistance")
        check_non_negative(self.wire_resistance_ohm, "wire_resistance_ohm")
        check_non_negative(self.current_measurement_noise, "current_measurement_noise")
        if self.temperature_drift < -1.0:
            raise ValueError(
                f"temperature_drift must be >= -1, got {self.temperature_drift}"
            )

    @property
    def is_ideal(self) -> bool:
        """True when every non-ideal effect is disabled."""
        return (
            self.stuck_at_off_fraction == 0.0
            and self.stuck_at_on_fraction == 0.0
            and self.wire_resistance == 0.0
            and self.wire_resistance_ohm == 0.0
            and self.current_measurement_noise == 0.0
            and self.temperature_drift == 0.0
        )


#: Shared default: the ideal configuration assumed throughout the paper.
IDEAL_NONIDEALITIES = NonidealityConfig()
