"""A full crossbar accelerator: a trained network mapped tile-by-tile.

The accelerator is the attack target ("oracle hardware") in the paper's
experiments: it exposes exactly the interfaces an attacker might have —
classification outputs, raw output vectors, and the power side channel.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig
from repro.crossbar.power import PowerModel, PowerReport
from repro.crossbar.tile import CrossbarTile
from repro.nn.network import Sequential
from repro.utils.rng import RandomState, spawn_rngs


class CrossbarAccelerator:
    """Maps every layer of a trained network onto crossbar tiles.

    Parameters
    ----------
    network:
        The trained :class:`~repro.nn.network.Sequential` network.
    mapping:
        Conductance mapping shared by all tiles (default ideal min-power).
    nonidealities:
        Optional non-ideal effects shared by all tiles.
    dac / adc:
        Converter models shared by all tiles.
    power_model:
        Converts currents into power/energy reports.
    random_state:
        Seed; each tile receives an independent child generator.
    """

    def __init__(
        self,
        network: Sequential,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        dac: Optional[DAC] = None,
        adc: Optional[ADC] = None,
        power_model: Optional[PowerModel] = None,
        random_state: RandomState = None,
    ):
        if not network.layers:
            raise ValueError("cannot build an accelerator from an empty network")
        self.network = network
        self.power_model = power_model if power_model is not None else PowerModel()
        rngs = spawn_rngs(random_state, len(network.layers))
        self.tiles: List[CrossbarTile] = [
            CrossbarTile(
                layer,
                mapping=mapping,
                nonidealities=nonidealities,
                dac=dac,
                adc=adc,
                random_state=rng,
            )
            for layer, rng in zip(network.layers, rngs)
        ]

    # ----------------------------------------------------------- properties

    @property
    def n_inputs(self) -> int:
        """Input dimensionality of the first tile."""
        return self.tiles[0].n_inputs

    @property
    def n_outputs(self) -> int:
        """Output dimensionality of the last tile."""
        return self.tiles[-1].n_outputs

    @property
    def n_tiles(self) -> int:
        """Number of crossbar tiles (one per layer)."""
        return len(self.tiles)

    # -------------------------------------------------------------- compute

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run inputs through every tile in sequence."""
        single = np.asarray(inputs).ndim == 1
        activations = np.atleast_2d(np.asarray(inputs, dtype=float))
        for tile in self.tiles:
            activations = np.atleast_2d(tile.forward(activations))
        return activations[0] if single else activations

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward`."""
        return self.forward(inputs)

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class labels from the accelerator outputs."""
        outputs = np.atleast_2d(self.forward(inputs))
        return np.argmax(outputs, axis=1)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ---------------------------------------------------------- power channel

    def power_trace(self, inputs: np.ndarray) -> PowerReport:
        """Measure the power side channel for a batch of inputs.

        The report contains the per-tile and summed total currents that an
        attacker probing the supply rail would observe while the batch is
        processed.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        per_tile_currents = []
        activations = inputs
        for tile in self.tiles:
            per_tile_currents.append(np.atleast_1d(tile.total_current(activations)))
            activations = np.atleast_2d(tile.forward(activations))
        total = np.sum(per_tile_currents, axis=0)
        return self.power_model.report(total, per_tile_currents)

    def total_current(self, inputs: np.ndarray) -> np.ndarray:
        """Summed total current per input (convenience wrapper)."""
        single = np.asarray(inputs).ndim == 1
        report = self.power_trace(inputs)
        return float(report.total_current[0]) if single else report.total_current

    def fidelity(self, inputs: np.ndarray) -> float:
        """Mean absolute difference between accelerator and software outputs.

        A sanity metric: zero for the ideal crossbar, growing with enabled
        non-idealities.
        """
        hardware = np.atleast_2d(self.forward(inputs))
        software = np.atleast_2d(self.network.predict(inputs))
        return float(np.mean(np.abs(hardware - software)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarAccelerator(n_tiles={self.n_tiles}, n_inputs={self.n_inputs}, "
            f"n_outputs={self.n_outputs})"
        )
