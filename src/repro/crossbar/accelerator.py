"""A full crossbar accelerator: a trained network mapped tile-by-tile.

The accelerator is the attack target ("oracle hardware") in the paper's
experiments: it exposes exactly the interfaces an attacker might have —
classification outputs, raw output vectors, and the power side channel.

The compute spine is a fused single-pass engine.  :meth:`forward_with_power`
streams a batch through every tile exactly once, collecting the layer
activations *and* each physical tile's supply current from the same
conductance realization (via :meth:`CrossbarTile.forward_with_power_shards`),
so the functional outputs and the power trace an attacker observes are
physically consistent and the accelerator is traversed once per batch instead
of twice.  :meth:`power_trace` and :meth:`total_current` are thin wrappers
over that fused path; :meth:`forward` streams batches through the tiles in
2-D form without per-layer re-wrapping.  On deterministic (read-noise-free)
arrays each tile additionally reuses its cached effective state, so repeated
queries cost one matrix product per tile and nothing else.

Multi-tile sharding: passing a
:class:`~repro.crossbar.mapping.ShardingSpec` (one spec for every layer, or a
per-layer sequence) places layers on
:class:`~repro.crossbar.tile.ShardedTileGroup` grids instead of single tiles.
The :class:`~repro.crossbar.power.PowerReport` then carries one current
column per *physical* tile — labelled ``layer<i>/r<r>c<c>`` — so tile-count
and placement scenarios from the paper's hardware discussion are observable,
while the summed total current is the partial-sum reduction the digital
backend would perform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import get_backend
from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.mapping import ConductanceMapping, ShardingSpec
from repro.crossbar.nonidealities import NonidealityConfig
from repro.crossbar.power import PowerModel, PowerReport
from repro.crossbar.tile import CrossbarTile, build_tile
from repro.nn.network import Sequential
from repro.utils.rng import RandomState, spawn_rngs


def _resolve_layer_sharding(
    sharding: Union[None, ShardingSpec, Sequence[Optional[ShardingSpec]]],
    n_layers: int,
) -> List[Optional[ShardingSpec]]:
    """Normalise the sharding argument to one optional spec per layer."""
    if sharding is None:
        return [None] * n_layers
    if isinstance(sharding, ShardingSpec):
        return [sharding] * n_layers
    specs = list(sharding)
    if len(specs) != n_layers:
        raise ValueError(
            f"per-layer sharding needs {n_layers} entries, got {len(specs)}"
        )
    for spec in specs:
        if spec is not None and not isinstance(spec, ShardingSpec):
            raise TypeError(
                f"sharding entries must be ShardingSpec or None, "
                f"got {type(spec).__name__}"
            )
    return specs


class CrossbarAccelerator:
    """Maps every layer of a trained network onto crossbar tiles.

    Parameters
    ----------
    network:
        The trained :class:`~repro.nn.network.Sequential` network.
    mapping:
        Conductance mapping shared by all tiles (default ideal min-power).
    nonidealities:
        Optional non-ideal effects shared by all tiles.
    dac / adc:
        Converter models shared by all tiles.
    power_model:
        Converts currents into power/energy reports.
    sharding:
        ``None`` (one tile per layer, the historical placement), a single
        :class:`~repro.crossbar.mapping.ShardingSpec` applied to every layer,
        or a per-layer sequence of specs/``None``.
    shard_runner:
        Optional :class:`~repro.experiments.runner.ParallelRunner` executing
        the shard kernels of sharded layers concurrently.  ``thread`` mode
        maps host arrays in-process; ``process`` mode ships picklable
        :class:`~repro.crossbar.shard.ShardProgram` snapshots to worker
        processes (bitwise-identical for seeded/deterministic execution;
        rejected with :class:`~repro.crossbar.shard.NonPicklableShardError`
        for device-resident backends such as cupy).
    random_state:
        Seed; each tile receives an independent child generator.
    backend / dtype / batch_invariant:
        Compute-backend knobs shared by every tile: a backend name
        (``"numpy"``/``"torch"``/``"cupy"``/``"auto"``) or instance, the
        kernel dtype (``"float64"`` reference, ``"float32"`` fast path), and
        the opt-in batch-invariant einsum kernels for unseeded queries.  The
        backend is resolved **once** here and the shared instance handed to
        every physical array.
    """

    def __init__(
        self,
        network: Sequential,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        dac: Optional[DAC] = None,
        adc: Optional[ADC] = None,
        power_model: Optional[PowerModel] = None,
        sharding: Union[None, ShardingSpec, Sequence[Optional[ShardingSpec]]] = None,
        shard_runner=None,
        random_state: RandomState = None,
        backend=None,
        dtype="float64",
        batch_invariant: bool = False,
    ):
        if not network.layers:
            raise ValueError("cannot build an accelerator from an empty network")
        self.network = network
        self.power_model = power_model if power_model is not None else PowerModel()
        self.backend = get_backend(backend)
        self.dtype = self.backend.dtype_name(self.backend.dtype(dtype))
        self.batch_invariant = bool(batch_invariant)
        layer_sharding = _resolve_layer_sharding(sharding, len(network.layers))
        rngs = spawn_rngs(random_state, len(network.layers))
        self.tiles: List[CrossbarTile] = [
            build_tile(
                layer,
                sharding=spec,
                mapping=mapping,
                nonidealities=nonidealities,
                dac=dac,
                adc=adc,
                runner=shard_runner,
                random_state=rng,
                backend=self.backend,
                dtype=self.dtype,
                batch_invariant=self.batch_invariant,
            )
            for layer, rng, spec in zip(network.layers, rngs, layer_sharding)
        ]
        self._tile_labels = self._build_tile_labels()
        # Distinct per-physical-array noise tags (label order), so seeded
        # queries derive statistically independent streams per tile even
        # though every tile shares the request's per-row seeds.
        for tag, array in enumerate(self.physical_arrays):
            array.noise_tag = tag

    # ----------------------------------------------------------- properties

    @property
    def n_inputs(self) -> int:
        """Input dimensionality of the first tile."""
        return self.tiles[0].n_inputs

    @property
    def n_outputs(self) -> int:
        """Output dimensionality of the last tile."""
        return self.tiles[-1].n_outputs

    @property
    def n_tiles(self) -> int:
        """Number of logical tiles (one per layer; sharded groups count once)."""
        return len(self.tiles)

    @property
    def n_physical_tiles(self) -> int:
        """Number of physical crossbar arrays across all layers."""
        return sum(tile.n_physical_tiles for tile in self.tiles)

    @property
    def tile_labels(self) -> Tuple[str, ...]:
        """One label per physical tile, in power-report column order.

        Unsharded layers are labelled ``layer<i>``; shards of a sharded layer
        ``layer<i>/r<row>c<col>`` in row-major shard order.  Tile placement is
        fixed at construction, so the tuple is built once and reused on every
        power report.
        """
        return self._tile_labels

    def _build_tile_labels(self) -> Tuple[str, ...]:
        labels: List[str] = []
        for index, tile in enumerate(self.tiles):
            spec = tile.sharding
            if spec.is_trivial:
                labels.append(f"layer{index}")
                continue
            for r in range(spec.row_shards):
                for c in range(spec.col_shards):
                    labels.append(f"layer{index}/r{r}c{c}")
        return tuple(labels)

    @property
    def physical_arrays(self) -> List:
        """Every physical :class:`~repro.crossbar.array.CrossbarArray`, in
        power-report column order (matches :attr:`tile_labels`)."""
        return [array for tile in self.tiles for array in tile.physical_arrays]

    @property
    def n_array_operations(self) -> int:
        """Summed analogue array traversals across all physical tiles."""
        return sum(tile.n_array_operations for tile in self.tiles)

    def reset_operation_counters(self) -> None:
        """Reset the per-tile array operation counters."""
        for tile in self.tiles:
            tile.reset_operation_counters()

    # -------------------------------------------------------------- compute

    def _as_batch(self, inputs: np.ndarray) -> Tuple[np.ndarray, bool]:
        inputs = np.asarray(inputs, dtype=float)
        return np.atleast_2d(inputs), inputs.ndim == 1

    def forward(self, inputs: np.ndarray, *, sample_seeds=None) -> np.ndarray:
        """Run inputs through every tile in sequence.

        ``sample_seeds`` (one seed per batch row) keys every tile's noise on
        the row's seed instead of the tile generators, making row outputs
        independent of batch composition — see
        :meth:`~repro.crossbar.array.CrossbarArray.matvec_with_current`.
        """
        activations, single = self._as_batch(inputs)
        for tile in self.tiles:
            activations = tile.forward_batch(activations, sample_seeds=sample_seeds)
        return activations[0] if single else activations

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward`."""
        return self.forward(inputs)

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class labels from the accelerator outputs."""
        outputs = np.atleast_2d(self.forward(inputs))
        return np.argmax(outputs, axis=1)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ---------------------------------------------------------- power channel

    def forward_with_power(
        self, inputs: np.ndarray, *, sample_seeds=None
    ) -> Tuple[np.ndarray, PowerReport]:
        """Fused forward pass + power measurement in a single traversal.

        Each physical tile is visited exactly once; its activations and
        supply current are derived from the same conductance realization, so
        the returned outputs and :class:`~repro.crossbar.power.PowerReport`
        describe one consistent physical inference.  The report carries one
        current column per physical tile (see :attr:`tile_labels`); each
        layer's contribution to the summed total current is the partial-sum
        reduction its sharding spec declares.

        Returns
        -------
        (outputs, report):
            ``outputs`` follows the :meth:`forward` shape convention
            (``(M,)`` for a 1-D input, ``(B, M)`` for a batch); ``report``
            always covers the whole batch.
        """
        activations, single = self._as_batch(inputs)
        per_tile_currents: List[np.ndarray] = []
        layer_currents: List[np.ndarray] = []
        for tile in self.tiles:
            activations, shard_currents = tile.forward_with_power_shards(
                activations, sample_seeds=sample_seeds
            )
            per_tile_currents.extend(
                shard_currents[:, k] for k in range(shard_currents.shape[1])
            )
            layer_currents.append(tile.reduce_shard_currents(shard_currents))
        total = np.sum(layer_currents, axis=0)
        report = self.power_model.report(
            total, per_tile_currents, labels=self.tile_labels
        )
        return (activations[0] if single else activations), report

    def power_trace(self, inputs: np.ndarray, *, sample_seeds=None) -> PowerReport:
        """Measure the power side channel for a batch of inputs.

        The report contains the per-physical-tile and summed total currents
        that an attacker probing the supply rails would observe while the
        batch is processed.  Implemented on the fused path: the tiles are
        traversed once (not once for power and once for activations as in
        the legacy two-pass engine).
        """
        _, report = self.forward_with_power(inputs, sample_seeds=sample_seeds)
        return report

    def total_current(self, inputs: np.ndarray, *, sample_seeds=None) -> np.ndarray:
        """Summed total current per input (convenience wrapper).

        Returns
        -------
        float or np.ndarray
            A ``float`` for a single ``(N,)`` input; a ``(B,)`` array for a
            ``(B, N)`` batch (including ``B == 1``).  The value is the sum of
            the per-tile currents for each sample, regardless of the number
            of tiles.
        """
        single = np.asarray(inputs).ndim == 1
        report = self.power_trace(inputs, sample_seeds=sample_seeds)
        if single:
            return float(report.total_current[0])
        return report.total_current

    def fidelity(self, inputs: np.ndarray) -> float:
        """Mean absolute difference between accelerator and software outputs.

        A sanity metric: zero for the ideal crossbar, growing with enabled
        non-idealities.
        """
        hardware = np.atleast_2d(self.forward(inputs))
        software = np.atleast_2d(self.network.predict(inputs))
        return float(np.mean(np.abs(hardware - software)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarAccelerator(n_tiles={self.n_tiles}, n_inputs={self.n_inputs}, "
            f"n_outputs={self.n_outputs})"
        )
