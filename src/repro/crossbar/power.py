"""Power model and measurement reports for the crossbar accelerator.

The "power information" in the paper is the total steady-state current drawn
by the array for a given input (Eq. 5).  :class:`PowerModel` converts that
current into the quantities an attacker could realistically record —
instantaneous power at the supply voltage and energy per inference — and
bundles them into :class:`PowerReport` objects.

With multi-tile sharding each physical tile's supply rail is individually
observable: :attr:`PowerReport.per_tile_current` carries one column per
physical tile and :attr:`PowerReport.tile_labels` names them
(``layer<i>`` for unsharded layers, ``layer<i>/r<r>c<c>`` for shards), so
attacks and analyses can select any subset of rails.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive

#: The accelerator's tile-label grammar: ``layer<i>`` for unsharded layers,
#: ``layer<i>/r<row>c<col>`` for shards of a sharded layer.
_TILE_LABEL_RE = re.compile(r"^layer(?P<layer>\d+)(?:/r(?P<row>\d+)c(?P<col>\d+))?$")


def parse_tile_label(label: str) -> Tuple[int, Optional[Tuple[int, int]]]:
    """Split a tile label into ``(layer_index, shard_position)``.

    ``shard_position`` is the ``(row, col)`` grid coordinate for sharded
    labels and ``None`` for a whole-layer tile.  Raises ``ValueError`` for
    labels outside the accelerator's grammar.
    """
    match = _TILE_LABEL_RE.match(str(label))
    if match is None:
        raise ValueError(f"unrecognised tile label {label!r}")
    layer = int(match.group("layer"))
    if match.group("row") is None:
        return layer, None
    return layer, (int(match.group("row")), int(match.group("col")))


def layer_rail_grid(
    labels: Sequence[str], layer: int
) -> Tuple[Tuple[int, int], np.ndarray]:
    """Map one layer's rails back onto its shard grid.

    Given the per-tile labels of a power report (or oracle response), returns
    ``((row_shards, col_shards), columns)`` where ``columns[r, c]`` is the
    report-column index of shard ``(r, c)``.  An unsharded layer yields a
    ``1 x 1`` grid.  Raises ``KeyError`` when the layer has no rails and
    ``ValueError`` when its shard labels do not form a complete grid.
    """
    positions = {}
    for index, label in enumerate(labels):
        label_layer, shard = parse_tile_label(label)
        if label_layer != layer:
            continue
        positions[(0, 0) if shard is None else shard] = index
    if not positions:
        raise KeyError(f"no rails labelled for layer {layer} in {tuple(labels)}")
    row_shards = max(r for r, _ in positions) + 1
    col_shards = max(c for _, c in positions) + 1
    if len(positions) != row_shards * col_shards:
        raise ValueError(
            f"layer {layer} rails do not form a complete "
            f"{row_shards}x{col_shards} grid: {sorted(positions)}"
        )
    columns = np.empty((row_shards, col_shards), dtype=int)
    for (r, c), index in positions.items():
        columns[r, c] = index
    return (row_shards, col_shards), columns


@dataclass(frozen=True)
class PowerReport:
    """Power-channel observations for a batch of inputs.

    Attributes
    ----------
    total_current:
        ``(B,)`` total crossbar current per input (the paper's side channel).
    power:
        ``(B,)`` dissipated power ``Vdd * i_total``.
    energy:
        ``(B,)`` energy per inference, ``power * integration_time``.
    per_tile_current:
        ``(B, n_tiles)`` currents, one column per *physical* crossbar tile.
        Unsharded accelerators have one column per layer; sharded layers
        contribute one column per shard (row-major shard order).
    tile_labels:
        Optional names for the current columns (``None`` when the producer
        does not label its tiles).
    """

    total_current: np.ndarray
    power: np.ndarray
    energy: np.ndarray
    per_tile_current: np.ndarray
    tile_labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for name in ("total_current", "power", "energy"):
            value = getattr(self, name)
            if np.asarray(value).ndim != 1:
                raise ValueError(f"{name} must be 1-D, got shape {np.shape(value)}")
        if np.asarray(self.per_tile_current).ndim != 2:
            raise ValueError(
                f"per_tile_current must be 2-D, got shape {np.shape(self.per_tile_current)}"
            )
        if self.tile_labels is not None:
            labels = tuple(str(label) for label in self.tile_labels)
            object.__setattr__(self, "tile_labels", labels)
            if len(labels) != np.shape(self.per_tile_current)[1]:
                raise ValueError(
                    f"{len(labels)} tile labels for "
                    f"{np.shape(self.per_tile_current)[1]} current columns"
                )

    @property
    def n_samples(self) -> int:
        """Number of measured inputs."""
        return len(self.total_current)

    @property
    def n_tiles(self) -> int:
        """Number of physical crossbar tiles contributing to the measurement."""
        return self.per_tile_current.shape[1]

    def current_for(self, label: str) -> np.ndarray:
        """``(B,)`` current of one labelled tile, or the summed currents of a
        labelled group (prefix match on ``"<label>/"``, e.g. ``"layer1"``
        selects every shard of layer 1)."""
        if self.tile_labels is None:
            raise ValueError("this report carries no tile labels")
        if label in self.tile_labels:
            return self.per_tile_current[:, self.tile_labels.index(label)]
        columns = [
            index
            for index, name in enumerate(self.tile_labels)
            if name.startswith(f"{label}/")
        ]
        if not columns:
            raise KeyError(f"no tile labelled {label!r} in {self.tile_labels}")
        return self.per_tile_current[:, columns].sum(axis=1)

    def mean_power(self) -> float:
        """Average dissipated power over the batch."""
        return float(np.mean(self.power))

    def total_energy(self) -> float:
        """Total energy over the batch."""
        return float(np.sum(self.energy))


class PowerModel:
    """Converts total currents into power/energy figures.

    Parameters
    ----------
    supply_voltage:
        The read voltage Vdd applied to active lines (normalised to 1 V by
        default, matching the paper's normalised formulation).
    integration_time:
        The time the read voltage is applied per inference, in seconds, used
        to report energy.
    """

    def __init__(self, supply_voltage: float = 1.0, integration_time: float = 100e-9):
        self.supply_voltage = check_positive(supply_voltage, "supply_voltage")
        self.integration_time = check_positive(integration_time, "integration_time")

    def report(
        self,
        total_currents: np.ndarray,
        per_tile_currents: Optional[Sequence[np.ndarray]] = None,
        *,
        labels: Optional[Sequence[str]] = None,
    ) -> PowerReport:
        """Build a :class:`PowerReport` from raw current measurements.

        Parameters
        ----------
        total_currents:
            ``(B,)`` summed currents across all tiles.
        per_tile_currents:
            Optional sequence of ``(B,)`` arrays, one per physical tile.
            Defaults to a single tile carrying the whole current.
        labels:
            Optional tile names, one per entry of ``per_tile_currents``.
        """
        total_currents = np.atleast_1d(np.asarray(total_currents, dtype=float))
        if per_tile_currents is None:
            per_tile = total_currents[:, np.newaxis]
        else:
            per_tile = np.stack(
                [np.atleast_1d(np.asarray(c, dtype=float)) for c in per_tile_currents],
                axis=1,
            )
            if per_tile.shape[0] != total_currents.shape[0]:
                raise ValueError(
                    "per-tile currents disagree with total currents on sample count"
                )
        power = self.supply_voltage * total_currents
        energy = power * self.integration_time
        return PowerReport(
            total_current=total_currents,
            power=power,
            energy=energy,
            per_tile_current=per_tile,
            tile_labels=tuple(labels) if labels is not None else None,
        )

    def combine(self, reports: List[PowerReport]) -> PowerReport:
        """Sum several single-tile reports into one accelerator-level report."""
        if not reports:
            raise ValueError("cannot combine an empty list of reports")
        total = np.sum([r.total_current for r in reports], axis=0)
        per_tile = np.concatenate([r.per_tile_current for r in reports], axis=1)
        labels: Optional[Tuple[str, ...]] = None
        if all(r.tile_labels is not None for r in reports):
            labels = tuple(label for r in reports for label in r.tile_labels)
        power = self.supply_voltage * total
        energy = power * self.integration_time
        return PowerReport(
            total_current=total,
            power=power,
            energy=energy,
            per_tile_current=per_tile,
            tile_labels=labels,
        )
