"""The crossbar array: differential MVM and total-current measurement.

Implements the ideal behaviour of Eq. 3-5 of the paper plus the opt-in
non-idealities configured through
:class:`~repro.crossbar.nonidealities.NonidealityConfig`.

Fused single-pass engine
------------------------
Every analogue operation starts from the array's *effective state* — the
IR-drop-attenuated differential matrix ``(G+ - G-) * a`` and the attenuated
column conductance sums ``Σ_i (G+ + G-) * a`` — realised from one conductance
read.  Three properties of that state drive the engine:

* **Fusion.**  :meth:`matvec_with_current` computes the output currents
  (Eq. 3) *and* the total supply current (Eq. 5) from a *single* conductance
  realization, so the functional outputs and the power side channel observed
  by an attacker are physically consistent (one read, one noise draw) and the
  array is traversed once instead of twice.
* **Caching.**  When the device has no read noise the effective state is
  deterministic, so it is computed lazily once and reused by every subsequent
  :meth:`matvec` / :meth:`total_current` / :meth:`matvec_with_current` call.
  The cache is invalidated whenever ``g_plus`` / ``g_minus`` are rebound (it
  is keyed on the identity of both arrays); code that mutates the conductance
  matrices *in place* must call :meth:`invalidate_state_cache` afterwards.
  With read noise enabled the cache is bypassed and every operation draws a
  fresh realization, exactly as before.
* **Accounting.**  :attr:`n_operations` counts analogue array traversals and
  :attr:`n_realizations` counts physical conductance reads (cache hits
  realise nothing).  Tests and benchmarks use these to prove the fused path
  traverses the array exactly once per batch.

Measurement noise (``current_measurement_noise``) is applied *after* the
cached dot product, so repeated total-current reads remain independently
noisy even when the effective state is cached.

Compute backends
----------------
All hot-path math goes through a pluggable
:class:`~repro.backend.ArrayBackend` (``backend="numpy"|"torch"|"cupy"|
"auto"``).  The cached effective-state operands are kept *device-resident* —
one host→device transfer per program/invalidate, not per query — while the
public methods keep accepting and returning host numpy arrays.  Seeded noise
is always generated host-side from the stateless counter-keyed streams and
shipped to the device, so within any one backend the seeded path stays a
bitwise pure function of ``(inputs, seeds)``; the numpy/float64 default
performs exactly the historical operations and is bit-identical to the
pre-backend engine.  ``dtype="float32"`` selects the fast path (documented
~1e-6 relative tolerance vs the float64 reference), and
``batch_invariant=True`` routes the *unseeded* path through the same
fixed-reduction-order einsum kernel family as the seeded path, trading BLAS
throughput for bitwise batch-size invariance without seeds.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.crossbar.devices import NVMDeviceModel
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig
from repro.utils.rng import RandomState, as_rng, sample_stream, seeded_noise_factors
from repro.utils.validation import check_matrix

#: Stream-path domain tag for array-level noise (see :func:`sample_stream`).
_ARRAY_DOMAIN = 1
#: Channel tags within the array domain.
_READ_CHANNEL = 0
_RAIL_CHANNEL = 1


class _EffectiveState(NamedTuple):
    """One realised view of the array, shared by outputs and power.

    ``g_plus`` / ``g_minus`` are the *programmed* arrays the state was built
    from (identity-checked on cache lookup); ``effective`` and ``column_sums``
    are the host-side attenuated differential matrix and conductance sums,
    and ``effective_dev`` / ``column_sums_dev`` their device-resident
    counterparts in the backend's compute dtype (the same objects on the
    numpy/float64 reference path — no copy is made).
    """

    g_plus: np.ndarray
    g_minus: np.ndarray
    effective: np.ndarray
    column_sums: np.ndarray
    effective_dev: object
    column_sums_dev: object


class CrossbarArray:
    """A programmed NVM crossbar holding one weight matrix.

    The array is created by programming a weight matrix through a
    :class:`~repro.crossbar.mapping.ConductanceMapping`; afterwards it exposes
    the analogue operations the paper uses:

    * :meth:`matvec` — the differential matrix-vector product
      ``i_s = (G+ - G-) v_u`` (Eq. 3).
    * :meth:`total_current` — the summed current through all devices
      ``i_total = Σ_j v_j Σ_i (G+_ij + G-_ij)`` (Eq. 5), i.e. the power side
      channel.
    * :meth:`matvec_with_current` — both of the above fused into one pass
      over a single conductance realization (see the module docstring).

    Parameters
    ----------
    weights:
        The weight matrix ``(M, N)`` to program.
    mapping:
        Conductance mapping (device model + scheme).  Defaults to the ideal
        min-power mapping assumed in the paper.
    nonidealities:
        Optional non-ideal effects.
    random_state:
        Seed for programming noise, stuck devices and read noise.
    backend:
        Compute backend for the hot-path kernels: ``None``/``"numpy"`` (the
        bit-exact reference), ``"torch"``/``"cupy"`` (optional device
        backends), ``"auto"`` (best available), or an
        :class:`~repro.backend.ArrayBackend` instance.
    dtype:
        Compute dtype, ``"float64"`` (reference) or ``"float32"`` (fast
        path, ~1e-6 relative tolerance).
    batch_invariant:
        Route the *unseeded* path through the seeded path's fixed-shape
        einsum kernels so unseeded results are bitwise batch-size invariant
        (slower than BLAS; default off).
    """

    def __init__(
        self,
        weights: np.ndarray,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        random_state: RandomState = None,
        backend: Union[None, str, ArrayBackend] = None,
        dtype: Union[str, np.dtype] = "float64",
        batch_invariant: bool = False,
    ):
        weights = check_matrix(weights, "weights")
        self.mapping = mapping if mapping is not None else ConductanceMapping()
        self.nonidealities = (
            nonidealities if nonidealities is not None else NonidealityConfig()
        )
        self._rng = as_rng(random_state)
        self._reference_weights = weights.copy()
        self._init_backend(backend, dtype, batch_invariant)
        self._state_cache: Optional[_EffectiveState] = None
        self._n_operations = 0
        self._n_realizations = 0
        self.noise_tag = 0

        self.g_plus, self.g_minus = self.mapping.map(weights, random_state=self._rng)
        self._apply_static_nonidealities()

    def _init_backend(self, backend, dtype, batch_invariant) -> None:
        self.backend = get_backend(backend)
        self._dtype = self.backend.dtype(dtype)
        self.dtype = self.backend.dtype_name(self._dtype)
        self.batch_invariant = bool(batch_invariant)

    @classmethod
    def from_conductances(
        cls,
        g_plus: np.ndarray,
        g_minus: np.ndarray,
        *,
        mapping: ConductanceMapping,
        nonidealities: Optional[NonidealityConfig] = None,
        reference_weights: Optional[np.ndarray] = None,
        random_state: RandomState = None,
        backend: Union[None, str, ArrayBackend] = None,
        dtype: Union[str, np.dtype] = "float64",
        batch_invariant: bool = False,
    ) -> "CrossbarArray":
        """Build an array from already-programmed conductance matrices.

        Multi-tile sharding programs a logical weight matrix *once* (so the
        physical devices are identical to the single-tile placement) and then
        hands each shard its slice of ``G+`` / ``G-`` through this
        constructor.  Programming noise, quantization and static
        non-idealities are therefore **not** re-applied here — they already
        happened on the full matrix; only dynamic effects (read noise, IR
        drop, measurement noise) act per sub-array.

        ``mapping`` must carry an explicit ``weight_scale`` (the full-matrix
        scale) so :attr:`effective_weights` and the current-to-logical
        conversion agree with the unsharded array; ``reference_weights``
        defaults to the unmapped conductance difference.
        """
        if mapping.weight_scale is None:
            raise ValueError(
                "from_conductances requires a mapping with an explicit "
                "weight_scale (the scale resolved on the full weight matrix)"
            )
        g_plus = check_matrix(np.array(g_plus, dtype=float, copy=True), "g_plus")
        g_minus = check_matrix(np.array(g_minus, dtype=float, copy=True), "g_minus")
        if g_plus.shape != g_minus.shape:
            raise ValueError(
                f"g_plus shape {g_plus.shape} != g_minus shape {g_minus.shape}"
            )
        array = cls.__new__(cls)
        array.mapping = mapping
        array.nonidealities = (
            nonidealities if nonidealities is not None else NonidealityConfig()
        )
        array._rng = as_rng(random_state)
        array._init_backend(backend, dtype, batch_invariant)
        array.g_plus = g_plus
        array.g_minus = g_minus
        if reference_weights is None:
            reference_weights = mapping.unmap(g_plus, g_minus, g_plus)
        array._reference_weights = np.asarray(reference_weights, dtype=float).copy()
        array._state_cache = None
        array._n_operations = 0
        array._n_realizations = 0
        array.noise_tag = 0
        return array

    def program(self, weights: np.ndarray) -> None:
        """Re-program the array with a new weight matrix.

        Runs the full programming path — mapping, programming noise, static
        non-idealities — on ``weights`` using the array's own generator, and
        drops the cached effective state (including the device-resident
        operands) so the next operation realises the new devices.
        """
        weights = check_matrix(weights, "weights")
        self._reference_weights = weights.copy()
        self.g_plus, self.g_minus = self.mapping.map(weights, random_state=self._rng)
        self._apply_static_nonidealities()

    # ----------------------------------------------------------- properties

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) = (outputs, inputs)."""
        return self.g_plus.shape

    @property
    def n_rows(self) -> int:
        """Number of output rows M."""
        return self.g_plus.shape[0]

    @property
    def n_columns(self) -> int:
        """Number of input columns N."""
        return self.g_plus.shape[1]

    @property
    def device(self) -> NVMDeviceModel:
        """The underlying device model."""
        return self.mapping.device

    @property
    def effective_weights(self) -> np.ndarray:
        """The weights actually implemented after programming non-idealities."""
        return self.mapping.unmap(self.g_plus, self.g_minus, self._reference_weights)

    @property
    def column_conductance_sums(self) -> np.ndarray:
        """``G_j`` for every column — the quantity leaked by the power channel."""
        return self.mapping.column_conductance_sums(self.g_plus, self.g_minus)

    # ------------------------------------------------------------ accounting

    @property
    def n_operations(self) -> int:
        """Analogue array traversals performed (fused ops count once)."""
        return self._n_operations

    @property
    def n_realizations(self) -> int:
        """Physical conductance reads realised (cache hits realise none)."""
        return self._n_realizations

    def reset_counters(self) -> None:
        """Reset the operation/realization counters."""
        self._n_operations = 0
        self._n_realizations = 0

    def record_offloaded_traversal(self, *, realizations: int = 1) -> None:
        """Account for a traversal executed outside this host object.

        When a shard's physics runs in a worker process (a materialised
        :class:`~repro.crossbar.shard.ShardProgram`), the worker traverses
        its own copy of the devices; the host array records the traversal
        here so :attr:`n_operations` / :attr:`n_realizations` keep describing
        the physical array regardless of where the kernel ran.
        """
        self._n_operations += 1
        self._n_realizations += int(realizations)

    # -------------------------------------------------- static non-idealities

    def _apply_static_nonidealities(self) -> None:
        config = self.nonidealities
        if config.stuck_at_off_fraction > 0 or config.stuck_at_on_fraction > 0:
            total = self.g_plus.size + self.g_minus.size
            n_off = int(round(config.stuck_at_off_fraction * total))
            n_on = int(round(config.stuck_at_on_fraction * total))
            flat_indices = self._rng.permutation(total)
            off_idx = flat_indices[:n_off]
            on_idx = flat_indices[n_off : n_off + n_on]
            stacked = np.concatenate([self.g_plus.ravel(), self.g_minus.ravel()])
            stacked[off_idx] = self.device.g_min
            stacked[on_idx] = self.device.g_max
            split = self.g_plus.size
            self.g_plus = stacked[:split].reshape(self.g_plus.shape)
            self.g_minus = stacked[split:].reshape(self.g_minus.shape)
        if config.temperature_drift:
            factor = 1.0 + config.temperature_drift
            self.g_plus = np.clip(self.g_plus * factor, 0.0, self.device.g_max)
            self.g_minus = np.clip(self.g_minus * factor, 0.0, self.device.g_max)
        self.invalidate_state_cache()

    # ------------------------------------------------------------- dynamics

    def invalidate_state_cache(self) -> None:
        """Drop the cached effective state (and its device-resident operands).

        Required after mutating ``g_plus`` / ``g_minus`` *in place*; rebinding
        either attribute to a new array is detected automatically.  The next
        operation re-realises the state and pays one host→device transfer.
        """
        self._state_cache = None

    def _read_conductances(self) -> tuple[np.ndarray, np.ndarray]:
        """Conductances as seen by one read operation (read noise applied)."""
        g_plus = self.device.apply_read_noise(self.g_plus, self._rng)
        g_minus = self.device.apply_read_noise(self.g_minus, self._rng)
        return g_plus, g_minus

    def _ir_drop_attenuation(self, g_plus: np.ndarray, g_minus: np.ndarray) -> np.ndarray:
        """First-order IR-drop attenuation per column.

        Columns further from the driver (higher index) see more wire
        resistance; the attenuation factor is
        ``1 / (1 + R_wire * G_col_total * position)``.
        """
        resistance = self.nonidealities.wire_resistance
        if resistance == 0:
            return np.ones(self.n_columns)
        column_g = (g_plus + g_minus).sum(axis=0)
        positions = np.arange(1, self.n_columns + 1)
        return 1.0 / (1.0 + resistance * column_g * positions)

    def _wire_droop(
        self, g_plus: np.ndarray, g_minus: np.ndarray
    ) -> Optional[np.ndarray]:
        """Per-cell voltage-droop factor of the 2-D IR-drop model, or ``None``.

        With ``wire_resistance_ohm = R`` per unit cell, the cell at grid
        position ``(i, j)`` sees its drive voltage attenuated by the column
        wire feeding it (``i + 1`` cells deep, loaded by the column's total
        conductance) and its current attenuated along the row wire collecting
        it (``j + 1`` cells long, loaded by the row's total conductance):

        ``droop[i, j] = 1 / (1 + R * (G_col[j] * (i+1) + G_row[i] * (j+1)))``

        Both loads and both distances scale with the *physical* array shape,
        so sharding a layer across smaller tiles shrinks the droop
        quadratically.  Returns ``None`` when ``R == 0`` so the default
        configuration skips the multiply entirely (bitwise old behaviour).
        """
        resistance = self.nonidealities.wire_resistance_ohm
        if resistance == 0:
            return None
        total = g_plus + g_minus
        column_g = total.sum(axis=0)
        row_g = total.sum(axis=1)
        row_depth = np.arange(1, total.shape[0] + 1, dtype=float)
        col_length = np.arange(1, total.shape[1] + 1, dtype=float)
        drop = resistance * (
            column_g[np.newaxis, :] * row_depth[:, np.newaxis]
            + row_g[:, np.newaxis] * col_length[np.newaxis, :]
        )
        return 1.0 / (1.0 + drop)

    def _realize_state(self) -> _EffectiveState:
        """One physical conductance read, shared by outputs and power.

        When the device is read-noise free the realised state is cached and
        reused until ``g_plus`` / ``g_minus`` change; otherwise each call
        draws a fresh realization.
        """
        deterministic = self.device.read_noise == 0
        if deterministic:
            cache = self._state_cache
            if (
                cache is not None
                and cache.g_plus is self.g_plus
                and cache.g_minus is self.g_minus
            ):
                return cache
        g_plus, g_minus = self._read_conductances()
        attenuation = self._ir_drop_attenuation(g_plus, g_minus)
        droop = self._wire_droop(g_plus, g_minus)
        if droop is not None:
            g_diff = (g_plus - g_minus) * droop
            g_sum = (g_plus + g_minus) * droop
        else:
            g_diff = g_plus - g_minus
            g_sum = g_plus + g_minus
        effective = g_diff * attenuation[np.newaxis, :]
        column_sums = (g_sum * attenuation[np.newaxis, :]).sum(axis=0)
        # One host->device transfer per realization; with a deterministic
        # device the state is cached, so the operands stay device-resident
        # until program()/invalidate_state_cache() and every query pays only
        # the batch transfer.  On numpy/float64 asarray is a no-copy view.
        state = _EffectiveState(
            self.g_plus,
            self.g_minus,
            effective,
            column_sums,
            self.backend.asarray(effective, self._dtype),
            self.backend.asarray(column_sums, self._dtype),
        )
        self._n_realizations += 1
        if deterministic:
            self._state_cache = state
        return state

    def _validate_batch(self, voltages: np.ndarray) -> Tuple[np.ndarray, bool]:
        voltages = np.asarray(voltages, dtype=float)
        single = voltages.ndim == 1
        batch = np.atleast_2d(voltages)
        if batch.shape[1] != self.n_columns:
            raise ValueError(
                f"expected {self.n_columns} input voltages, got {batch.shape[1]}"
            )
        return batch, single

    def _apply_measurement_noise(self, currents):
        """Multiplicative instrument noise on (host or device) currents.

        Noise factors are always drawn host-side from the array's own
        generator — exactly the draws the pre-backend engine made — and
        shipped to the device for the elementwise multiply.
        """
        noise = self.nonidealities.current_measurement_noise
        if noise > 0:
            factors = 1.0 + self._rng.normal(0.0, noise, size=tuple(currents.shape))
            currents = currents * self.backend.asarray(factors, self._dtype)
        return currents

    # ------------------------------------------------------ unseeded kernels

    def _product_kernels(self, batch: np.ndarray, state: _EffectiveState, *,
                         want_outputs: bool, want_totals: bool):
        """The unseeded hot-path products on the device-resident operands.

        Default: BLAS ``matmul`` (fastest).  With :attr:`batch_invariant`
        the same fixed-reduction-order einsum family as the seeded path is
        used instead, so a row's result is bitwise independent of the batch
        it rides in even without seeds.
        """
        vb = self.backend.asarray(batch, self._dtype)
        if self.batch_invariant:
            outputs = (
                self.backend.einsum("ij,kj->ik", vb, state.effective_dev)
                if want_outputs
                else None
            )
            totals = (
                self.backend.einsum("ij,j->i", vb, state.column_sums_dev)
                if want_totals
                else None
            )
        else:
            outputs = (
                self.backend.matmul(vb, state.effective_dev.T)
                if want_outputs
                else None
            )
            totals = (
                self.backend.matmul(vb, state.column_sums_dev)
                if want_totals
                else None
            )
        return outputs, totals

    # ------------------------------------------------------ seeded operations

    def _validate_seeds(self, sample_seeds, batch: np.ndarray) -> np.ndarray:
        seeds = np.asarray(sample_seeds, dtype=np.uint64)
        if seeds.ndim != 1 or len(seeds) != len(batch):
            raise ValueError(
                f"sample_seeds must be 1-D with one seed per batch row "
                f"({len(batch)}), got shape {seeds.shape}"
            )
        return seeds

    def _seeded_compute(
        self,
        batch: np.ndarray,
        sample_seeds: np.ndarray,
        *,
        want_outputs: bool,
        want_totals: bool,
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """One array traversal whose noise is keyed on per-row seeds.

        Every stochastic effect along the path — read-noise conductance
        realizations and rail measurement noise — is drawn from a stream
        derived from ``(row seed, noise_tag, channel)`` instead of the
        array's own generator, making row ``i``'s observables a pure function
        of ``(batch[i], sample_seeds[i])``: independent of batch composition
        and of any previous operation.  Row-noise-free arrays reuse the
        cached effective state, so the deterministic fast path is untouched.
        """
        seeds = self._validate_seeds(sample_seeds, batch)
        self._n_operations += 1
        noise = self.nonidealities.current_measurement_noise
        if self.device.read_noise == 0:
            state = self._realize_state()
            vb = self.backend.asarray(batch, self._dtype)
            # einsum, not BLAS matmul: its per-row reduction order does not
            # depend on the batch size, so a row's result is bitwise the same
            # whether it is computed alone or inside a coalesced batch (BLAS
            # gemm/gemv pick different kernels per shape and break that).
            outputs = (
                self.backend.einsum("ij,kj->ik", vb, state.effective_dev)
                if want_outputs
                else None
            )
            totals = (
                self.backend.einsum("ij,j->i", vb, state.column_sums_dev)
                if want_totals
                else None
            )
            if want_totals and noise > 0:
                factors = seeded_noise_factors(
                    seeds, _ARRAY_DOMAIN, self.noise_tag, _RAIL_CHANNEL, std=noise
                )
                totals = totals * self.backend.asarray(factors, self._dtype)
            if want_outputs:
                outputs = self.backend.to_numpy(outputs)
            if want_totals:
                totals = self.backend.to_numpy(totals)
        else:
            outputs = (
                np.empty((len(batch), self.n_rows)) if want_outputs else None
            )
            totals = np.empty(len(batch)) if want_totals else None
            for i, (row, seed) in enumerate(zip(batch, seeds)):
                rng = sample_stream(seed, _ARRAY_DOMAIN, self.noise_tag, _READ_CHANNEL)
                g_plus = self.device.apply_read_noise(self.g_plus, rng)
                g_minus = self.device.apply_read_noise(self.g_minus, rng)
                attenuation = self._ir_drop_attenuation(g_plus, g_minus)
                droop = self._wire_droop(g_plus, g_minus)
                if droop is not None:
                    g_diff = (g_plus - g_minus) * droop
                    g_sum = (g_plus + g_minus) * droop
                else:
                    g_diff = g_plus - g_minus
                    g_sum = g_plus + g_minus
                self._n_realizations += 1
                if want_outputs:
                    outputs[i] = (g_diff * attenuation) @ row
                if want_totals:
                    column_sums = (g_sum * attenuation).sum(axis=0)
                    totals[i] = row @ column_sums
            # The per-row realization loop is host-side physics (fresh noisy
            # conductances per row); its rail noise stays host-side too.
            if want_totals and noise > 0:
                totals = totals * seeded_noise_factors(
                    seeds, _ARRAY_DOMAIN, self.noise_tag, _RAIL_CHANNEL, std=noise
                )
        return outputs, totals

    def matvec(
        self, voltages: np.ndarray, *, sample_seeds=None
    ) -> np.ndarray:
        """Differential crossbar output currents for a batch of input voltages.

        Parameters
        ----------
        voltages:
            ``(N,)`` or ``(B, N)`` input voltage vector(s).
        sample_seeds:
            Optional per-row noise seeds (see :meth:`_seeded_compute`); the
            default draws from the array's own generator as before.

        Returns
        -------
        np.ndarray
            Output currents ``(M,)`` or ``(B, M)``.
        """
        batch, single = self._validate_batch(voltages)
        if sample_seeds is not None:
            currents, _ = self._seeded_compute(
                batch, sample_seeds, want_outputs=True, want_totals=False
            )
        else:
            state = self._realize_state()
            self._n_operations += 1
            currents, _ = self._product_kernels(
                batch, state, want_outputs=True, want_totals=False
            )
            currents = self.backend.to_numpy(currents)
        return currents[0] if single else currents

    def total_current(
        self, voltages: np.ndarray, *, sample_seeds=None
    ) -> np.ndarray:
        """Total steady-state current drawn for each input vector (Eq. 5).

        This is the paper's "power information": ``i_total = Σ_j v_j G_j``
        with ``G_j`` the per-column conductance sum, plus optional measurement
        noise (drawn per row from ``sample_seeds`` streams when given).
        """
        batch, single = self._validate_batch(voltages)
        if sample_seeds is not None:
            _, currents = self._seeded_compute(
                batch, sample_seeds, want_outputs=False, want_totals=True
            )
        else:
            state = self._realize_state()
            self._n_operations += 1
            _, currents = self._product_kernels(
                batch, state, want_outputs=False, want_totals=True
            )
            currents = self.backend.to_numpy(self._apply_measurement_noise(currents))
        return float(currents[0]) if single else currents

    def matvec_with_current(
        self, voltages: np.ndarray, *, sample_seeds=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused MVM + total current from a *single* conductance realization.

        Equivalent to calling :meth:`matvec` and :meth:`total_current` on the
        same inputs, except that both observables are derived from one read —
        one array traversal, and (with read noise enabled) one shared noise
        draw, so the outputs and the power channel are physically consistent.
        With ``sample_seeds`` the noise is keyed per row instead (each row's
        observables then come from its own seeded realization), which is what
        makes coalesced service batches bit-identical to per-request queries.

        Returns
        -------
        (output_currents, total_currents):
            ``(M,)`` and ``float`` for a single vector, ``(B, M)`` and
            ``(B,)`` for a batch.
        """
        batch, single = self._validate_batch(voltages)
        if sample_seeds is not None:
            outputs, totals = self._seeded_compute(
                batch, sample_seeds, want_outputs=True, want_totals=True
            )
        else:
            state = self._realize_state()
            self._n_operations += 1
            outputs, totals = self._product_kernels(
                batch, state, want_outputs=True, want_totals=True
            )
            outputs = self.backend.to_numpy(outputs)
            totals = self.backend.to_numpy(self._apply_measurement_noise(totals))
        if single:
            return outputs[0], float(totals[0])
        return outputs, totals

    def static_power(self, voltages: np.ndarray, *, supply_voltage: float = 1.0) -> np.ndarray:
        """Dissipated power ``Σ_j v_j^2 G_j`` (or ``Vdd * i_total`` when driven at Vdd)."""
        voltages = np.asarray(voltages, dtype=float)
        single = voltages.ndim == 1
        batch = np.atleast_2d(voltages)
        column_sums = self.column_conductance_sums
        power = (batch**2) @ column_sums * float(supply_voltage)
        return float(power[0]) if single else power

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarArray(shape={self.shape}, device={self.device.name!r}, "
            f"scheme={self.mapping.scheme.value!r}, ideal={self.nonidealities.is_ideal})"
        )
