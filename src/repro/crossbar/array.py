"""The crossbar array: differential MVM and total-current measurement.

Implements the ideal behaviour of Eq. 3-5 of the paper plus the opt-in
non-idealities configured through
:class:`~repro.crossbar.nonidealities.NonidealityConfig`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crossbar.devices import IDEAL_DEVICE, NVMDeviceModel
from repro.crossbar.mapping import ConductanceMapping, MappingScheme
from repro.crossbar.nonidealities import NonidealityConfig
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix


class CrossbarArray:
    """A programmed NVM crossbar holding one weight matrix.

    The array is created by programming a weight matrix through a
    :class:`~repro.crossbar.mapping.ConductanceMapping`; afterwards it exposes
    the two analogue operations the paper uses:

    * :meth:`matvec` — the differential matrix-vector product
      ``i_s = (G+ - G-) v_u`` (Eq. 3).
    * :meth:`total_current` — the summed current through all devices
      ``i_total = Σ_j v_j Σ_i (G+_ij + G-_ij)`` (Eq. 5), i.e. the power side
      channel.

    Parameters
    ----------
    weights:
        The weight matrix ``(M, N)`` to program.
    mapping:
        Conductance mapping (device model + scheme).  Defaults to the ideal
        min-power mapping assumed in the paper.
    nonidealities:
        Optional non-ideal effects.
    random_state:
        Seed for programming noise, stuck devices and read noise.
    """

    def __init__(
        self,
        weights: np.ndarray,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        random_state: RandomState = None,
    ):
        weights = check_matrix(weights, "weights")
        self.mapping = mapping if mapping is not None else ConductanceMapping()
        self.nonidealities = (
            nonidealities if nonidealities is not None else NonidealityConfig()
        )
        self._rng = as_rng(random_state)
        self._reference_weights = weights.copy()

        self.g_plus, self.g_minus = self.mapping.map(weights, random_state=self._rng)
        self._apply_static_nonidealities()

    # ----------------------------------------------------------- properties

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) = (outputs, inputs)."""
        return self.g_plus.shape

    @property
    def n_rows(self) -> int:
        """Number of output rows M."""
        return self.g_plus.shape[0]

    @property
    def n_columns(self) -> int:
        """Number of input columns N."""
        return self.g_plus.shape[1]

    @property
    def device(self) -> NVMDeviceModel:
        """The underlying device model."""
        return self.mapping.device

    @property
    def effective_weights(self) -> np.ndarray:
        """The weights actually implemented after programming non-idealities."""
        return self.mapping.unmap(self.g_plus, self.g_minus, self._reference_weights)

    @property
    def column_conductance_sums(self) -> np.ndarray:
        """``G_j`` for every column — the quantity leaked by the power channel."""
        return self.mapping.column_conductance_sums(self.g_plus, self.g_minus)

    # -------------------------------------------------- static non-idealities

    def _apply_static_nonidealities(self) -> None:
        config = self.nonidealities
        if config.stuck_at_off_fraction > 0 or config.stuck_at_on_fraction > 0:
            total = self.g_plus.size + self.g_minus.size
            n_off = int(round(config.stuck_at_off_fraction * total))
            n_on = int(round(config.stuck_at_on_fraction * total))
            flat_indices = self._rng.permutation(total)
            off_idx = flat_indices[:n_off]
            on_idx = flat_indices[n_off : n_off + n_on]
            stacked = np.concatenate([self.g_plus.ravel(), self.g_minus.ravel()])
            stacked[off_idx] = self.device.g_min
            stacked[on_idx] = self.device.g_max
            split = self.g_plus.size
            self.g_plus = stacked[:split].reshape(self.g_plus.shape)
            self.g_minus = stacked[split:].reshape(self.g_minus.shape)
        if config.temperature_drift:
            factor = 1.0 + config.temperature_drift
            self.g_plus = np.clip(self.g_plus * factor, 0.0, self.device.g_max)
            self.g_minus = np.clip(self.g_minus * factor, 0.0, self.device.g_max)

    # ------------------------------------------------------------- dynamics

    def _read_conductances(self) -> tuple[np.ndarray, np.ndarray]:
        """Conductances as seen by one read operation (read noise applied)."""
        g_plus = self.device.apply_read_noise(self.g_plus, self._rng)
        g_minus = self.device.apply_read_noise(self.g_minus, self._rng)
        return g_plus, g_minus

    def _ir_drop_attenuation(self, g_plus: np.ndarray, g_minus: np.ndarray) -> np.ndarray:
        """First-order IR-drop attenuation per column.

        Columns further from the driver (higher index) see more wire
        resistance; the attenuation factor is
        ``1 / (1 + R_wire * G_col_total * position)``.
        """
        resistance = self.nonidealities.wire_resistance
        if resistance == 0:
            return np.ones(self.n_columns)
        column_g = (g_plus + g_minus).sum(axis=0)
        positions = np.arange(1, self.n_columns + 1)
        return 1.0 / (1.0 + resistance * column_g * positions)

    def matvec(self, voltages: np.ndarray) -> np.ndarray:
        """Differential crossbar output currents for a batch of input voltages.

        Parameters
        ----------
        voltages:
            ``(N,)`` or ``(B, N)`` input voltage vector(s).

        Returns
        -------
        np.ndarray
            Output currents ``(M,)`` or ``(B, M)``.
        """
        voltages = np.asarray(voltages, dtype=float)
        single = voltages.ndim == 1
        batch = np.atleast_2d(voltages)
        if batch.shape[1] != self.n_columns:
            raise ValueError(
                f"expected {self.n_columns} input voltages, got {batch.shape[1]}"
            )
        g_plus, g_minus = self._read_conductances()
        attenuation = self._ir_drop_attenuation(g_plus, g_minus)
        effective = (g_plus - g_minus) * attenuation[np.newaxis, :]
        currents = batch @ effective.T
        return currents[0] if single else currents

    def total_current(self, voltages: np.ndarray) -> np.ndarray:
        """Total steady-state current drawn for each input vector (Eq. 5).

        This is the paper's "power information": ``i_total = Σ_j v_j G_j``
        with ``G_j`` the per-column conductance sum, plus optional measurement
        noise.
        """
        voltages = np.asarray(voltages, dtype=float)
        single = voltages.ndim == 1
        batch = np.atleast_2d(voltages)
        if batch.shape[1] != self.n_columns:
            raise ValueError(
                f"expected {self.n_columns} input voltages, got {batch.shape[1]}"
            )
        g_plus, g_minus = self._read_conductances()
        attenuation = self._ir_drop_attenuation(g_plus, g_minus)
        column_sums = ((g_plus + g_minus) * attenuation[np.newaxis, :]).sum(axis=0)
        currents = batch @ column_sums
        noise = self.nonidealities.current_measurement_noise
        if noise > 0:
            currents = currents * (
                1.0 + self._rng.normal(0.0, noise, size=currents.shape)
            )
        return float(currents[0]) if single else currents

    def static_power(self, voltages: np.ndarray, *, supply_voltage: float = 1.0) -> np.ndarray:
        """Dissipated power ``Σ_j v_j^2 G_j`` (or ``Vdd * i_total`` when driven at Vdd)."""
        voltages = np.asarray(voltages, dtype=float)
        single = voltages.ndim == 1
        batch = np.atleast_2d(voltages)
        column_sums = self.column_conductance_sums
        power = (batch**2) @ column_sums * float(supply_voltage)
        return float(power[0]) if single else power

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarArray(shape={self.shape}, device={self.device.name!r}, "
            f"scheme={self.mapping.scheme.value!r}, ideal={self.nonidealities.is_ideal})"
        )
