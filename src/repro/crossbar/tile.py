"""A crossbar tile: one neural-network layer mapped onto an array + peripherals.

The tile owns a :class:`~repro.crossbar.array.CrossbarArray` programmed with
the layer's weights, an input DAC, an output ADC, and applies the layer's
activation function digitally after conversion, exactly mirroring Figure 2 of
the paper (``v_y = f(i_s) = f(G v_u)``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig
from repro.nn.activations import Activation, get_activation
from repro.nn.layers import Dense
from repro.utils.rng import RandomState


class CrossbarTile:
    """One dense layer implemented on a crossbar.

    Parameters
    ----------
    layer:
        The trained :class:`~repro.nn.layers.Dense` layer to map.  Layers with
        a bias are mapped by adding one extra input column driven at a
        constant voltage of 1.
    mapping:
        Conductance mapping; defaults to the ideal min-power mapping.
    nonidealities:
        Optional non-ideal effects.
    dac / adc:
        Converter models; ``None`` means ideal converters.
    random_state:
        Seed for stochastic hardware effects.
    """

    def __init__(
        self,
        layer: Dense,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        dac: Optional[DAC] = None,
        adc: Optional[ADC] = None,
        random_state: RandomState = None,
    ):
        self.layer = layer
        self.activation: Activation = get_activation(layer.activation)
        self._has_bias_column = bool(layer.use_bias)

        weights = layer.weights
        if self._has_bias_column:
            weights = np.concatenate([weights, layer.bias[:, np.newaxis]], axis=1)

        self.array = CrossbarArray(
            weights,
            mapping=mapping,
            nonidealities=nonidealities,
            random_state=random_state,
        )
        self.dac = dac if dac is not None else DAC()
        self.adc = adc

        # Scale factor converting output currents back to the digital domain.
        self._current_to_logical = 1.0 / self.array.mapping.conductance_per_unit_weight(
            weights
        )

    # ----------------------------------------------------------- properties

    @property
    def n_inputs(self) -> int:
        """Logical input dimensionality (excluding the bias column)."""
        return self.layer.n_inputs

    @property
    def n_outputs(self) -> int:
        """Output dimensionality."""
        return self.layer.n_outputs

    @property
    def column_conductance_sums(self) -> np.ndarray:
        """Per-logical-input column conductance sums (bias column excluded)."""
        sums = self.array.column_conductance_sums
        if self._has_bias_column:
            return sums[:-1]
        return sums

    # -------------------------------------------------------------- compute

    def _line_voltages(self, inputs: np.ndarray) -> np.ndarray:
        """Convert digital inputs to crossbar line voltages (DAC + bias column)."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected inputs with {self.n_inputs} features, got {inputs.shape[1]}"
            )
        voltages = self.dac.convert(inputs)
        if self._has_bias_column:
            ones = np.ones((voltages.shape[0], 1))
            voltages = np.concatenate([voltages, ones], axis=1)
        return voltages

    def pre_activation(self, inputs: np.ndarray) -> np.ndarray:
        """Analogue MVM result converted back to the logical weight domain."""
        single = np.asarray(inputs).ndim == 1
        voltages = self._line_voltages(inputs)
        currents = self.array.matvec(voltages)
        if self.adc is not None:
            currents = self.adc.convert(currents)
        logical = currents * self._current_to_logical
        return logical[0] if single else logical

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Layer output ``f(W u)`` computed through the crossbar."""
        single = np.asarray(inputs).ndim == 1
        pre = np.atleast_2d(self.pre_activation(inputs))
        out = self.activation.forward(pre)
        return out[0] if single else out

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def total_current(self, inputs: np.ndarray) -> np.ndarray:
        """The tile's power side channel for each input (Eq. 5)."""
        single = np.asarray(inputs).ndim == 1
        voltages = self._line_voltages(inputs)
        currents = self.array.total_current(voltages)
        currents = np.atleast_1d(currents)
        return float(currents[0]) if single else currents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarTile(n_inputs={self.n_inputs}, n_outputs={self.n_outputs}, "
            f"activation={self.activation.name!r})"
        )
