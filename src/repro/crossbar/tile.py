"""A crossbar tile: one neural-network layer mapped onto an array + peripherals.

The tile owns a :class:`~repro.crossbar.array.CrossbarArray` programmed with
the layer's weights, an input DAC, an output ADC, and applies the layer's
activation function digitally after conversion, exactly mirroring Figure 2 of
the paper (``v_y = f(i_s) = f(G v_u)``).

Batches stream through the tile in 2-D form end to end: the internal
``*_batch`` helpers assume ``(B, n_inputs)`` arrays and never re-wrap their
operands, while the public methods only handle the single-vector/batch shape
convention at the boundary.  :meth:`forward_with_power` is the tile-level
fused path — one :meth:`CrossbarArray.matvec_with_current` call yields the
layer outputs and the tile's supply current from the same conductance
realization.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig
from repro.nn.activations import Activation, get_activation
from repro.nn.layers import Dense
from repro.utils.rng import RandomState


class CrossbarTile:
    """One dense layer implemented on a crossbar.

    Parameters
    ----------
    layer:
        The trained :class:`~repro.nn.layers.Dense` layer to map.  Layers with
        a bias are mapped by adding one extra input column driven at a
        constant voltage of 1.
    mapping:
        Conductance mapping; defaults to the ideal min-power mapping.
    nonidealities:
        Optional non-ideal effects.
    dac / adc:
        Converter models; ``None`` means ideal converters.
    random_state:
        Seed for stochastic hardware effects.
    """

    def __init__(
        self,
        layer: Dense,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        dac: Optional[DAC] = None,
        adc: Optional[ADC] = None,
        random_state: RandomState = None,
    ):
        self.layer = layer
        self.activation: Activation = get_activation(layer.activation)
        self._has_bias_column = bool(layer.use_bias)

        weights = layer.weights
        if self._has_bias_column:
            weights = np.concatenate([weights, layer.bias[:, np.newaxis]], axis=1)

        self.array = CrossbarArray(
            weights,
            mapping=mapping,
            nonidealities=nonidealities,
            random_state=random_state,
        )
        self.dac = dac if dac is not None else DAC()
        self.adc = adc

        # Scale factor converting output currents back to the digital domain.
        self._current_to_logical = 1.0 / self.array.mapping.conductance_per_unit_weight(
            weights
        )

    # ----------------------------------------------------------- properties

    @property
    def n_inputs(self) -> int:
        """Logical input dimensionality (excluding the bias column)."""
        return self.layer.n_inputs

    @property
    def n_outputs(self) -> int:
        """Output dimensionality."""
        return self.layer.n_outputs

    @property
    def column_conductance_sums(self) -> np.ndarray:
        """Per-logical-input column conductance sums (bias column excluded)."""
        sums = self.array.column_conductance_sums
        if self._has_bias_column:
            return sums[:-1]
        return sums

    @property
    def n_array_operations(self) -> int:
        """Analogue traversals of the underlying array (fused ops count once)."""
        return self.array.n_operations

    # -------------------------------------------------------------- compute

    def _line_voltages(self, inputs: np.ndarray) -> np.ndarray:
        """Convert digital inputs to crossbar line voltages (DAC + bias column)."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected inputs with {self.n_inputs} features, got {inputs.shape[1]}"
            )
        voltages = self.dac.convert(inputs)
        if self._has_bias_column:
            ones = np.ones((voltages.shape[0], 1))
            voltages = np.concatenate([voltages, ones], axis=1)
        return voltages

    def _to_logical(self, currents: np.ndarray) -> np.ndarray:
        """ADC conversion + current-to-logical rescaling."""
        if self.adc is not None:
            currents = self.adc.convert(currents)
        return currents * self._current_to_logical

    def pre_activation_batch(self, batch: np.ndarray) -> np.ndarray:
        """Analogue MVM for a ``(B, n_inputs)`` batch; always returns 2-D."""
        return self._to_logical(self.array.matvec(self._line_voltages(batch)))

    def pre_activation(self, inputs: np.ndarray) -> np.ndarray:
        """Analogue MVM result converted back to the logical weight domain."""
        single = np.asarray(inputs).ndim == 1
        logical = self.pre_activation_batch(inputs)
        return logical[0] if single else logical

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Layer output for a ``(B, n_inputs)`` batch; always returns 2-D."""
        return self.activation.forward(self.pre_activation_batch(batch))

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Layer output ``f(W u)`` computed through the crossbar."""
        single = np.asarray(inputs).ndim == 1
        out = self.forward_batch(inputs)
        return out[0] if single else out

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def forward_with_power_batch(
        self, batch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused layer output + supply current for a ``(B, n_inputs)`` batch.

        One array traversal produces both observables; returns
        ``(outputs (B, n_outputs), total_currents (B,))``.
        """
        voltages = self._line_voltages(batch)
        currents, totals = self.array.matvec_with_current(voltages)
        outputs = self.activation.forward(self._to_logical(currents))
        return outputs, np.atleast_1d(totals)

    def forward_with_power(self, inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fused :meth:`forward` + :meth:`total_current` in a single pass.

        Returns ``(output, total_current)`` with the same shape conventions as
        the separate methods: ``((n_outputs,), float)`` for a 1-D input,
        ``((B, n_outputs), (B,))`` for a batch.  Both observables come from
        the same conductance realization.
        """
        single = np.asarray(inputs).ndim == 1
        outputs, totals = self.forward_with_power_batch(inputs)
        if single:
            return outputs[0], float(totals[0])
        return outputs, totals

    def total_current(self, inputs: np.ndarray) -> np.ndarray:
        """The tile's power side channel for each input (Eq. 5)."""
        single = np.asarray(inputs).ndim == 1
        voltages = self._line_voltages(inputs)
        currents = self.array.total_current(voltages)
        currents = np.atleast_1d(currents)
        return float(currents[0]) if single else currents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarTile(n_inputs={self.n_inputs}, n_outputs={self.n_outputs}, "
            f"activation={self.activation.name!r})"
        )
