"""Crossbar tiles: one neural-network layer mapped onto physical arrays.

:class:`CrossbarTile` owns a single
:class:`~repro.crossbar.array.CrossbarArray` programmed with the layer's
weights, an input DAC, an output ADC, and applies the layer's activation
function digitally after conversion, exactly mirroring Figure 2 of the paper
(``v_y = f(i_s) = f(G v_u)``).

:class:`ShardedTileGroup` maps the *same* logical layer onto a grid of
physical tiles instead: a :class:`~repro.crossbar.mapping.ShardingSpec`
partitions the weight matrix into ``row_shards x col_shards`` sub-arrays, the
full matrix is programmed **once** (so the physical devices are identical to
the single-tile placement) and each shard receives its slice of the
programmed conductances.  Every shard runs through the fused
:meth:`CrossbarArray.matvec_with_current` path; column-shard partial outputs
are reduced in the spec's declared order and each shard's supply current
remains individually observable — the per-tile observables the paper's
hardware discussion assumes.  For ideal (noise-free) devices the sharded
computation performs the same exact-arithmetic operations as the single-tile
one, so the two placements agree bit-for-bit whenever no float rounding
occurs and to ~1e-12 otherwise.

Batches stream through both tile kinds in 2-D form end to end: the internal
``*_batch`` helpers assume ``(B, n_inputs)`` arrays and never re-wrap their
operands, while the public methods only handle the single-vector/batch shape
convention at the boundary.  :meth:`forward_with_power_shards` is the uniform
fused interface the accelerator drives: one call yields the layer outputs and
a ``(B, n_physical_tiles)`` matrix of per-shard supply currents from the same
conductance realizations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import (
    UNSHARDED,
    ConductanceMapping,
    ShardingSpec,
    reduce_partial_sums,
)
from repro.crossbar.nonidealities import NonidealityConfig
from repro.crossbar.shard import (
    ShardProgram,
    run_shard,
    run_shard_matvec,
    run_shard_total_current,
)
from repro.nn.activations import Activation, get_activation
from repro.nn.layers import Dense
from repro.utils.rng import RandomState, as_rng


# Module-level shard kernels so a thread-pool ParallelRunner can map over
# them (and so the runner's pickling probe succeeds).
def _shard_matvec(
    array: CrossbarArray, voltages: np.ndarray, sample_seeds=None
) -> np.ndarray:
    return array.matvec(voltages, sample_seeds=sample_seeds)


def _shard_matvec_with_current(
    array: CrossbarArray, voltages: np.ndarray, sample_seeds=None
) -> Tuple[np.ndarray, np.ndarray]:
    return array.matvec_with_current(voltages, sample_seeds=sample_seeds)


def _shard_total_current(
    array: CrossbarArray, voltages: np.ndarray, sample_seeds=None
) -> np.ndarray:
    return array.total_current(voltages, sample_seeds=sample_seeds)


#: Host-object kernel -> self-contained program kernel.  Used when shard
#: execution is shipped to a process pool: the job carries a picklable
#: :class:`~repro.crossbar.shard.ShardProgram` instead of the live array.
_PROGRAM_KERNELS = {
    _shard_matvec: run_shard_matvec,
    _shard_matvec_with_current: run_shard,
    _shard_total_current: run_shard_total_current,
}


class CrossbarTile:
    """One dense layer implemented on a crossbar.

    Parameters
    ----------
    layer:
        The trained :class:`~repro.nn.layers.Dense` layer to map.  Layers with
        a bias are mapped by adding one extra input column driven at a
        constant voltage of 1.
    mapping:
        Conductance mapping; defaults to the ideal min-power mapping.
    nonidealities:
        Optional non-ideal effects.
    dac / adc:
        Converter models; ``None`` means ideal converters.
    random_state:
        Seed for stochastic hardware effects.
    backend / dtype / batch_invariant:
        Compute-backend knobs forwarded to every physical
        :class:`~repro.crossbar.array.CrossbarArray` (see that class);
        converters and activations stay host-side.
    """

    def __init__(
        self,
        layer: Dense,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        dac: Optional[DAC] = None,
        adc: Optional[ADC] = None,
        random_state: RandomState = None,
        backend=None,
        dtype="float64",
        batch_invariant: bool = False,
    ):
        self.layer = layer
        self.activation: Activation = get_activation(layer.activation)
        self._has_bias_column = bool(layer.use_bias)
        self._engine_opts = {
            "backend": backend,
            "dtype": dtype,
            "batch_invariant": batch_invariant,
        }

        weights = layer.weights
        if self._has_bias_column:
            weights = np.concatenate([weights, layer.bias[:, np.newaxis]], axis=1)

        self._build_engine(weights, mapping, nonidealities, random_state)
        self.dac = dac if dac is not None else DAC()
        self.adc = adc

        # Scale factor converting output currents back to the digital domain.
        self._current_to_logical = 1.0 / self._conductance_scale

    # ----------------------------------------------------------------- engine

    def _build_engine(
        self,
        weights: np.ndarray,
        mapping: Optional[ConductanceMapping],
        nonidealities: Optional[NonidealityConfig],
        random_state: RandomState,
    ) -> None:
        """Program the layer onto physical hardware (one array by default)."""
        self.array = CrossbarArray(
            weights,
            mapping=mapping,
            nonidealities=nonidealities,
            random_state=random_state,
            **self._engine_opts,
        )
        self._conductance_scale = self.array.mapping.conductance_per_unit_weight(weights)

    # ----------------------------------------------------------- properties

    @property
    def n_inputs(self) -> int:
        """Logical input dimensionality (excluding the bias column)."""
        return self.layer.n_inputs

    @property
    def n_outputs(self) -> int:
        """Output dimensionality."""
        return self.layer.n_outputs

    @property
    def sharding(self) -> ShardingSpec:
        """The logical-to-physical placement of this layer (1x1 by default)."""
        return UNSHARDED

    @property
    def n_physical_tiles(self) -> int:
        """Number of physical crossbar arrays implementing the layer."""
        return 1

    @property
    def shard_shapes(self) -> List[Tuple[int, int]]:
        """``(rows, cols)`` of every physical array, row-major shard order."""
        return [self.array.shape]

    @property
    def physical_arrays(self) -> List[CrossbarArray]:
        """Every physical :class:`CrossbarArray`, row-major shard order."""
        return [self.array]

    def shard_programs(self) -> List[ShardProgram]:
        """Picklable snapshots of the programmed state, row-major shard order.

        A single-array tile yields exactly one
        :class:`~repro.crossbar.shard.ShardProgram` — the same self-contained
        unit of physics a sharded group ships to worker processes.
        """
        return [ShardProgram.from_array(self.array)]

    @property
    def column_conductance_sums(self) -> np.ndarray:
        """Per-logical-input column conductance sums (bias column excluded)."""
        sums = self.array.column_conductance_sums
        if self._has_bias_column:
            return sums[:-1]
        return sums

    @property
    def n_array_operations(self) -> int:
        """Analogue traversals of the underlying array (fused ops count once)."""
        return self.array.n_operations

    def reset_operation_counters(self) -> None:
        """Reset the operation/realization counters of every physical array."""
        self.array.reset_counters()

    # -------------------------------------------------------------- compute

    def _line_voltages(self, inputs: np.ndarray) -> np.ndarray:
        """Convert digital inputs to crossbar line voltages (DAC + bias column)."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected inputs with {self.n_inputs} features, got {inputs.shape[1]}"
            )
        voltages = self.dac.convert(inputs)
        if self._has_bias_column:
            ones = np.ones((voltages.shape[0], 1))
            voltages = np.concatenate([voltages, ones], axis=1)
        return voltages

    def _to_logical(self, currents: np.ndarray) -> np.ndarray:
        """ADC conversion + current-to-logical rescaling."""
        if self.adc is not None:
            currents = self.adc.convert(currents)
        return currents * self._current_to_logical

    def pre_activation_batch(
        self, batch: np.ndarray, *, sample_seeds=None
    ) -> np.ndarray:
        """Analogue MVM for a ``(B, n_inputs)`` batch; always returns 2-D."""
        return self._to_logical(
            self.array.matvec(self._line_voltages(batch), sample_seeds=sample_seeds)
        )

    def pre_activation(self, inputs: np.ndarray) -> np.ndarray:
        """Analogue MVM result converted back to the logical weight domain."""
        single = np.asarray(inputs).ndim == 1
        logical = self.pre_activation_batch(inputs)
        return logical[0] if single else logical

    def forward_batch(self, batch: np.ndarray, *, sample_seeds=None) -> np.ndarray:
        """Layer output for a ``(B, n_inputs)`` batch; always returns 2-D."""
        return self.activation.forward(
            self.pre_activation_batch(batch, sample_seeds=sample_seeds)
        )

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Layer output ``f(W u)`` computed through the crossbar."""
        single = np.asarray(inputs).ndim == 1
        out = self.forward_batch(inputs)
        return out[0] if single else out

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def forward_with_power_batch(
        self, batch: np.ndarray, *, sample_seeds=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused layer output + supply current for a ``(B, n_inputs)`` batch.

        One array traversal produces both observables; returns
        ``(outputs (B, n_outputs), total_currents (B,))``.
        """
        voltages = self._line_voltages(batch)
        currents, totals = self.array.matvec_with_current(
            voltages, sample_seeds=sample_seeds
        )
        outputs = self.activation.forward(self._to_logical(currents))
        return outputs, np.atleast_1d(totals)

    def forward_with_power_shards(
        self, batch: np.ndarray, *, sample_seeds=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused layer output + per-physical-tile supply currents.

        The uniform interface the accelerator drives: returns
        ``(outputs (B, n_outputs), shard_currents (B, n_physical_tiles))``.
        A single-array tile has exactly one current column.
        """
        outputs, totals = self.forward_with_power_batch(
            batch, sample_seeds=sample_seeds
        )
        return outputs, totals[:, np.newaxis]

    def reduce_shard_currents(self, shard_currents: np.ndarray) -> np.ndarray:
        """Layer total current from the per-shard current columns."""
        return shard_currents[:, 0]

    def forward_with_power(self, inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fused :meth:`forward` + :meth:`total_current` in a single pass.

        Returns ``(output, total_current)`` with the same shape conventions as
        the separate methods: ``((n_outputs,), float)`` for a 1-D input,
        ``((B, n_outputs), (B,))`` for a batch.  Both observables come from
        the same conductance realization.
        """
        single = np.asarray(inputs).ndim == 1
        outputs, totals = self.forward_with_power_batch(inputs)
        if single:
            return outputs[0], float(totals[0])
        return outputs, totals

    def total_current(self, inputs: np.ndarray, *, sample_seeds=None) -> np.ndarray:
        """The tile's power side channel for each input (Eq. 5)."""
        single = np.asarray(inputs).ndim == 1
        voltages = self._line_voltages(inputs)
        currents = self.array.total_current(voltages, sample_seeds=sample_seeds)
        currents = np.atleast_1d(currents)
        return float(currents[0]) if single else currents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarTile(n_inputs={self.n_inputs}, n_outputs={self.n_outputs}, "
            f"activation={self.activation.name!r})"
        )


class ShardedTileGroup(CrossbarTile):
    """One dense layer sharded across a grid of physical crossbar tiles.

    The layer's weight matrix (bias column included) is programmed exactly as
    a single tile would program it — one mapping pass with the full-matrix
    weight scale, one programming-noise draw, one static-non-ideality pass —
    and the resulting conductance matrices are partitioned into
    ``row_shards x col_shards`` physical sub-arrays.  Each sub-array is an
    independent :class:`~repro.crossbar.array.CrossbarArray` with its own
    read-noise/measurement-noise stream (they are distinct physical tiles),
    driven through the fused :meth:`CrossbarArray.matvec_with_current` path.

    Per batch, every shard is traversed exactly once: row-shard outputs are
    concatenated, column-shard partial sums are reduced in
    ``sharding.reduction`` order, and each shard's supply current is kept as
    an individually observable column (the multi-rail power model of the
    paper's hardware discussion).  With ideal devices the computation is the
    same exact arithmetic as the single tile's, so the placements agree
    bit-for-bit when no rounding occurs and to float-reduction precision
    (~1e-12) otherwise.

    Parameters
    ----------
    layer / mapping / nonidealities / dac / adc / random_state:
        As for :class:`CrossbarTile`.
    sharding:
        The :class:`~repro.crossbar.mapping.ShardingSpec` grid geometry.
    runner:
        Optional :class:`~repro.experiments.runner.ParallelRunner` used to
        execute shard kernels concurrently.  ``thread`` runners map the
        host-object kernels directly (shared address space; bit-identical to
        serial — each shard's operations happen in the same order on the
        same array, results are collected in shard order).  ``process``
        runners ship self-contained
        :class:`~repro.crossbar.shard.ShardProgram` snapshots to the worker
        pool instead: seeded and deterministic execution is bitwise
        identical to the serial path (the program kernels are pure
        functions), unseeded stochastic execution receives a fresh per-call
        seed drawn from the host shard's own generator.  Construction
        verifies up front that the programs can actually cross the address
        space and raises
        :class:`~repro.crossbar.shard.NonPicklableShardError` for
        device-resident backend state (e.g. cupy operands).
    """

    def __init__(
        self,
        layer: Dense,
        sharding: ShardingSpec,
        *,
        mapping: Optional[ConductanceMapping] = None,
        nonidealities: Optional[NonidealityConfig] = None,
        dac: Optional[DAC] = None,
        adc: Optional[ADC] = None,
        runner=None,
        random_state: RandomState = None,
        backend=None,
        dtype="float64",
        batch_invariant: bool = False,
    ):
        if not isinstance(sharding, ShardingSpec):
            raise TypeError(
                f"sharding must be a ShardingSpec, got {type(sharding).__name__}"
            )
        self._sharding = sharding
        self._runner = runner
        super().__init__(
            layer,
            mapping=mapping,
            nonidealities=nonidealities,
            dac=dac,
            adc=adc,
            random_state=random_state,
            backend=backend,
            dtype=dtype,
            batch_invariant=batch_invariant,
        )
        if runner is not None and getattr(runner, "mode", None) == "process":
            # Capability check, not a mode check: process execution is legal
            # whenever the programmed state can cross the address space.
            self.shard_programs()[0].require_picklable()

    # ----------------------------------------------------------------- engine

    def _build_engine(
        self,
        weights: np.ndarray,
        mapping: Optional[ConductanceMapping],
        nonidealities: Optional[NonidealityConfig],
        random_state: RandomState,
    ) -> None:
        """Program the full matrix once, then slice it into the shard grid."""
        mapping = mapping if mapping is not None else ConductanceMapping()
        rng = as_rng(random_state)

        # Pin the weight scale to the full matrix so every shard converts
        # currents with the same factor the single-tile placement would use.
        scale = mapping.resolve_weight_scale(weights)
        shard_mapping = replace(mapping, weight_scale=scale)
        self._conductance_scale = shard_mapping.conductance_per_unit_weight(weights)

        # One programming pass — bitwise the same devices as a single tile
        # built from the same seed (same rng stream for programming noise,
        # quantization and static non-idealities).
        programmed = CrossbarArray(
            weights,
            mapping=shard_mapping,
            nonidealities=nonidealities,
            random_state=rng,
            **self._engine_opts,
        )

        row_sections, col_sections = self._sharding.shard_sections(*weights.shape)
        self._row_sections = row_sections
        self._col_sections = col_sections
        # array_split sections are contiguous index ranges; basic slices give
        # copy-free views of the batch in the per-shard hot path.
        self._col_slices = [
            slice(int(cols[0]), int(cols[-1]) + 1) for cols in col_sections
        ]
        # Integer seed material first, generators second — the exact draws
        # spawn_rngs(rng, n) performs, but keeping the plain-int seeds lets a
        # ShardProgram reconstruct each shard's generator start state in a
        # worker process bit-exactly.
        shard_seeds = [
            int(seed)
            for seed in rng.integers(0, 2**63 - 1, size=self._sharding.n_shards)
        ]
        shard_rngs = [np.random.default_rng(seed) for seed in shard_seeds]
        self._shard_seeds = shard_seeds
        self._shard_programs: Optional[List[ShardProgram]] = None
        self.shards: List[List[CrossbarArray]] = []
        for r, rows in enumerate(row_sections):
            row_arrays = []
            for c, cols in enumerate(col_sections):
                index = r * len(col_sections) + c
                row_arrays.append(
                    CrossbarArray.from_conductances(
                        programmed.g_plus[np.ix_(rows, cols)],
                        programmed.g_minus[np.ix_(rows, cols)],
                        mapping=shard_mapping,
                        nonidealities=nonidealities,
                        reference_weights=weights[np.ix_(rows, cols)],
                        random_state=shard_rngs[index],
                        **self._engine_opts,
                    )
                )
            self.shards.append(row_arrays)
        # No monolithic array exists for this layer; CrossbarTile methods that
        # would touch one are all overridden below.
        self.array = None

    # ----------------------------------------------------------- properties

    @property
    def sharding(self) -> ShardingSpec:
        return self._sharding

    @property
    def n_physical_tiles(self) -> int:
        return self._sharding.n_shards

    @property
    def shard_shapes(self) -> List[Tuple[int, int]]:
        return [array.shape for row in self.shards for array in row]

    @property
    def physical_arrays(self) -> List[CrossbarArray]:
        return [array for row in self.shards for array in row]

    def shard_programs(self) -> List[ShardProgram]:
        """Picklable snapshots of every shard, row-major order (cached).

        The conductance matrices are static after programming, so the
        snapshots are built once on first use.  Each program carries the
        shard's own host-derived integer seed — the exact value its live
        generator was started from — which keeps the seeded noise path
        bit-identical no matter which address space executes the kernel.
        """
        if self._shard_programs is None:
            self._shard_programs = [
                ShardProgram.from_array(array, seed=seed)
                for array, seed in zip(self.physical_arrays, self._shard_seeds)
            ]
        return self._shard_programs

    @property
    def column_conductance_sums(self) -> np.ndarray:
        """Full-layer column sums reassembled from the shard grid."""
        columns = []
        for c in range(len(self._col_sections)):
            sums = self.shards[0][c].column_conductance_sums
            for r in range(1, len(self._row_sections)):
                sums = sums + self.shards[r][c].column_conductance_sums
            columns.append(sums)
        sums = np.concatenate(columns)
        if self._has_bias_column:
            return sums[:-1]
        return sums

    @property
    def n_array_operations(self) -> int:
        return sum(array.n_operations for row in self.shards for array in row)

    @property
    def n_array_realizations(self) -> int:
        """Summed physical conductance reads across all shards."""
        return sum(array.n_realizations for row in self.shards for array in row)

    def reset_operation_counters(self) -> None:
        for row in self.shards:
            for array in row:
                array.reset_counters()

    # -------------------------------------------------------------- compute

    def _split_columns(self, voltages: np.ndarray) -> List[np.ndarray]:
        if len(self._col_slices) == 1:
            return [voltages]
        return [voltages[:, cols] for cols in self._col_slices]

    def _map_shards(
        self, kernel, voltage_slices: Sequence[np.ndarray], sample_seeds=None
    ) -> List[List]:
        """Apply ``kernel(array, voltages, sample_seeds)`` to every shard.

        Returns results as a ``[row][col]`` grid.  With a runner attached the
        kernels execute on its pool: thread mode maps the host objects
        directly (shared address space), process mode ships self-contained
        :class:`~repro.crossbar.shard.ShardProgram` jobs instead (see
        :meth:`_offload_shards`).  Results are collected in shard order
        either way, so the grid is independent of the execution schedule.
        The per-row ``sample_seeds`` are shared by every shard — each shard
        derives its own noise streams from them via its distinct
        :attr:`CrossbarArray.noise_tag`.
        """
        n_rows = len(self._row_sections)
        n_cols = len(self._col_sections)
        if self._runner is not None and getattr(self._runner, "mode", None) == "process":
            flat = self._offload_shards(kernel, voltage_slices, sample_seeds)
        else:
            jobs = [
                (self.shards[r][c], voltage_slices[c], sample_seeds)
                for r in range(n_rows)
                for c in range(n_cols)
            ]
            if self._runner is None:
                flat = [
                    kernel(array, voltages, seeds) for array, voltages, seeds in jobs
                ]
            else:
                flat = self._runner.map(kernel, jobs)
        return [flat[r * n_cols : (r + 1) * n_cols] for r in range(n_rows)]

    def _offload_shards(
        self, kernel, voltage_slices: Sequence[np.ndarray], sample_seeds
    ) -> List:
        """Execute the shard grid as picklable programs on a process pool.

        Each job carries the shard's :class:`ShardProgram` rather than the
        live array, so workers need nothing from this address space.  Seeded
        and deterministic calls are pure functions of the job — bitwise
        identical to host execution.  An unseeded *stochastic* call needs
        fresh noise: the dispatcher draws a per-call ``rng_seed`` from the
        host shard's own generator, keeping all RNG statefulness host-side
        (statistically fresh draws, exactly one host draw per traversal).
        Host operation counters advance here too — workers are stateless and
        the counters describe the physical array, wherever the kernel ran.
        """
        program_kernel = _PROGRAM_KERNELS[kernel]
        programs = self.shard_programs()
        n_cols = len(self._col_sections)
        jobs = []
        for index, (program, array) in enumerate(
            zip(programs, self.physical_arrays)
        ):
            voltages = voltage_slices[index % n_cols]
            rng_seed = None
            if sample_seeds is None and not program.is_deterministic:
                rng_seed = int(array._rng.integers(0, 2**63 - 1))
            realizations = (
                voltages.shape[0]
                if sample_seeds is not None and array.device.read_noise > 0
                else 1
            )
            array.record_offloaded_traversal(realizations=realizations)
            jobs.append((program, voltages, sample_seeds, rng_seed))
        return self._runner.map(program_kernel, jobs)

    def _reduce_rows(self, grid: List[List[np.ndarray]]) -> np.ndarray:
        """Reduce column-shard partials per row shard, concatenate row outputs."""
        reduced = [
            reduce_partial_sums(row, self._sharding.reduction) for row in grid
        ]
        return np.concatenate([np.atleast_2d(block) for block in reduced], axis=1)

    def pre_activation_batch(
        self, batch: np.ndarray, *, sample_seeds=None
    ) -> np.ndarray:
        voltages = self._line_voltages(batch)
        grid = self._map_shards(
            _shard_matvec, self._split_columns(voltages), sample_seeds
        )
        return self._to_logical(self._reduce_rows(grid))

    def forward_with_power_shards(
        self, batch: np.ndarray, *, sample_seeds=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused outputs + per-shard currents, one traversal per shard.

        Returns ``(outputs (B, n_outputs), shard_currents (B, n_shards))``
        with current columns in row-major shard order; every shard's output
        and current come from the same conductance realization.
        """
        voltages = self._line_voltages(batch)
        grid = self._map_shards(
            _shard_matvec_with_current, self._split_columns(voltages), sample_seeds
        )
        outputs = self._reduce_rows(
            [[pair[0] for pair in row] for row in grid]
        )
        shard_currents = np.stack(
            [np.atleast_1d(pair[1]) for row in grid for pair in row], axis=1
        )
        outputs = self.activation.forward(self._to_logical(outputs))
        return outputs, shard_currents

    def reduce_shard_currents(self, shard_currents: np.ndarray) -> np.ndarray:
        """Layer total current: partial-sum reduction over the shard columns."""
        columns = [shard_currents[:, k] for k in range(shard_currents.shape[1])]
        return reduce_partial_sums(columns, self._sharding.reduction)

    def forward_with_power_batch(
        self, batch: np.ndarray, *, sample_seeds=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        outputs, shard_currents = self.forward_with_power_shards(
            batch, sample_seeds=sample_seeds
        )
        return outputs, self.reduce_shard_currents(shard_currents)

    def total_current(self, inputs: np.ndarray, *, sample_seeds=None) -> np.ndarray:
        """Summed power side channel across all shard rails.

        Each shard's rail is measured independently (per-shard measurement
        noise); the observable is the reduction of the per-shard currents.
        """
        single = np.asarray(inputs).ndim == 1
        voltages = self._line_voltages(inputs)
        grid = self._map_shards(
            _shard_total_current, self._split_columns(voltages), sample_seeds
        )
        partials = [np.atleast_1d(value) for row in grid for value in row]
        currents = reduce_partial_sums(partials, self._sharding.reduction)
        return float(currents[0]) if single else currents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedTileGroup(n_inputs={self.n_inputs}, n_outputs={self.n_outputs}, "
            f"grid={self._sharding.row_shards}x{self._sharding.col_shards}, "
            f"reduction={self._sharding.reduction!r})"
        )


def build_tile(
    layer: Dense,
    *,
    sharding: Optional[ShardingSpec] = None,
    mapping: Optional[ConductanceMapping] = None,
    nonidealities: Optional[NonidealityConfig] = None,
    dac: Optional[DAC] = None,
    adc: Optional[ADC] = None,
    runner=None,
    random_state: RandomState = None,
    backend=None,
    dtype="float64",
    batch_invariant: bool = False,
) -> CrossbarTile:
    """Place one layer on hardware: a single tile, or a sharded tile group.

    ``sharding=None`` (or a trivial 1x1 spec) builds a plain
    :class:`CrossbarTile` with construction byte-identical to the historical
    path; anything else builds a :class:`ShardedTileGroup`.
    """
    if sharding is None or sharding.is_trivial:
        return CrossbarTile(
            layer,
            mapping=mapping,
            nonidealities=nonidealities,
            dac=dac,
            adc=adc,
            random_state=random_state,
            backend=backend,
            dtype=dtype,
            batch_invariant=batch_invariant,
        )
    return ShardedTileGroup(
        layer,
        sharding,
        mapping=mapping,
        nonidealities=nonidealities,
        dac=dac,
        adc=adc,
        runner=runner,
        random_state=random_state,
        backend=backend,
        dtype=dtype,
        batch_invariant=batch_invariant,
    )
