"""Self-contained shard programs: picklable crossbar state + pure kernels.

PR 3 shipped multi-tile sharding as a re-tiling of *host* objects — each
shard was a :class:`~repro.crossbar.array.CrossbarArray` slice living in the
host process, which made a ``process``-mode
:class:`~repro.experiments.runner.ParallelRunner` illegal (stateful RNG
streams and operation counters cannot cross an address space).  This module
extracts the programmed state into a frozen, picklable
:class:`ShardProgram` and pure module-level kernels
(:func:`run_shard` and friends), so a shard becomes a self-contained unit of
physics that can execute in a worker process:

* **Conductances** — the shard's ``G+`` / ``G-`` slices of the once-programmed
  full matrix (host numpy, read-only).
* **Mapping slice** — a :class:`~repro.crossbar.mapping.ConductanceMapping`
  with the *full-matrix* ``weight_scale`` pinned, so logical/physical
  conversions agree with the unsharded array.
* **Nonideality parameters** — the dynamic effects (read noise, IR drop,
  measurement noise) each worker re-applies per call.
* **Seed material** — the shard's host-derived integer seed (drawn exactly
  like :func:`~repro.utils.rng.spawn_rngs` would) and its ``noise_tag``, so
  the *seeded* path stays bit-identical no matter where the kernel runs.

Determinism contract: with ``sample_seeds`` given, or with a deterministic
shard (no read noise, no measurement noise), ``run_shard`` is a pure
function of ``(program, voltages, sample_seeds)`` — bitwise identical in a
worker process and on the host.  An *unseeded stochastic* call needs fresh
noise per invocation; the dispatching tile draws a per-call ``rng_seed``
from the host shard's own generator and ships it with the job, keeping the
statefulness host-side (statistically fresh draws, not bitwise equal to the
serial path — which is itself a fresh-draw path).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.nonidealities import NonidealityConfig

__all__ = [
    "NonPicklableShardError",
    "ShardProgram",
    "run_shard",
    "run_shard_matvec",
    "run_shard_total_current",
]


class NonPicklableShardError(TypeError):
    """Shard state cannot cross a process boundary.

    Raised by :meth:`ShardProgram.require_picklable` when a shard carries
    backend state that is meaningless (or unserialisable) in another address
    space — e.g. device-resident cupy operands, whose CUDA context belongs to
    the host process.  Use a ``thread`` or ``serial`` runner for such
    backends.
    """


def _portable_backend(
    backend: Optional[ArrayBackend],
) -> Union[None, str, ArrayBackend]:
    """Collapse a registry-singleton backend to its name for shipping.

    The canonical backends are process-wide singletons
    (:func:`~repro.backend.get_backend`); shipping the *name* lets each
    worker resolve its own local instance instead of pickling module
    handles.  A non-registry instance (tests, custom backends) is carried by
    value and must survive pickling itself.
    """
    if backend is None:
        return None
    name = getattr(backend, "name", None)
    if isinstance(name, str):
        try:
            if get_backend(name) is backend:
                return name
        except Exception:
            pass
    return backend


@dataclass(frozen=True)
class ShardProgram:
    """Frozen, picklable snapshot of one shard's programmed physics.

    Attributes
    ----------
    g_plus, g_minus:
        The shard's slices of the once-programmed conductance matrices
        (copied, host numpy, marked read-only).
    mapping:
        Conductance mapping with the full-matrix ``weight_scale`` pinned.
    nonidealities:
        Dynamic non-ideal effects re-applied by the executing kernel.
    reference_weights:
        The logical weight slice the shard implements (for
        ``effective_weights`` parity with the host array).
    noise_tag:
        The physical array's stream tag — seeded noise drawn in a worker is
        keyed identically to the host array's.
    seed:
        Host-derived integer seed material for the shard's own generator
        (``np.random.default_rng(seed)`` reconstructs the host shard's RNG
        start state bit-exactly).
    backend:
        ``None``/backend name for registry singletons (resolved worker-side)
        or an :class:`~repro.backend.ArrayBackend` instance carried by value.
    dtype, batch_invariant:
        Compute-dtype and kernel-family knobs, forwarded verbatim.
    """

    g_plus: np.ndarray
    g_minus: np.ndarray
    mapping: ConductanceMapping
    nonidealities: NonidealityConfig = field(default_factory=NonidealityConfig)
    reference_weights: Optional[np.ndarray] = None
    noise_tag: int = 0
    seed: int = 0
    backend: Union[None, str, ArrayBackend] = None
    dtype: str = "float64"
    batch_invariant: bool = False

    def __post_init__(self) -> None:
        if self.mapping.weight_scale is None:
            raise ValueError(
                "ShardProgram requires a mapping with an explicit "
                "weight_scale (the scale resolved on the full weight matrix)"
            )
        for name in ("g_plus", "g_minus", "reference_weights"):
            value = getattr(self, name)
            if value is None:
                continue
            frozen = np.array(value, dtype=float, copy=True)
            frozen.setflags(write=False)
            object.__setattr__(self, name, frozen)
        if self.g_plus.shape != self.g_minus.shape:
            raise ValueError(
                f"g_plus shape {self.g_plus.shape} != "
                f"g_minus shape {self.g_minus.shape}"
            )
        object.__setattr__(self, "noise_tag", int(self.noise_tag))
        object.__setattr__(self, "seed", int(self.seed))

    # ------------------------------------------------------------ properties

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, columns) of the shard."""
        return self.g_plus.shape

    @property
    def is_deterministic(self) -> bool:
        """True when executing the program draws nothing from its generator.

        Read noise and measurement noise are the only per-call stochastic
        effects on the compute path; without them (or with explicit
        ``sample_seeds``) the kernels are pure functions of their arguments.
        """
        return (
            self.mapping.device.read_noise == 0.0
            and self.nonidealities.current_measurement_noise == 0.0
        )

    # ---------------------------------------------------------- construction

    @classmethod
    def from_array(cls, array: CrossbarArray, *, seed: int = 0) -> "ShardProgram":
        """Snapshot a programmed host array into a shard program.

        A host array whose mapping left ``weight_scale`` to be resolved on
        the programmed matrix (the unsharded single-tile path) gets the
        resolved value pinned here, so the snapshot is self-contained.
        """
        from dataclasses import replace as _replace

        mapping = array.mapping
        if mapping.weight_scale is None and array._reference_weights is not None:
            mapping = _replace(
                mapping,
                weight_scale=mapping.resolve_weight_scale(
                    array._reference_weights
                ),
            )
        return cls(
            g_plus=array.g_plus,
            g_minus=array.g_minus,
            mapping=mapping,
            nonidealities=array.nonidealities,
            reference_weights=array._reference_weights,
            noise_tag=array.noise_tag,
            seed=seed,
            backend=_portable_backend(array.backend),
            dtype=array.dtype,
            batch_invariant=array.batch_invariant,
        )

    # ----------------------------------------------------------- capability

    def require_picklable(self) -> None:
        """Raise :class:`NonPicklableShardError` unless this program can ship.

        Device-resident backends are rejected by name even though the
        *program* (host conductances + a backend name) would technically
        pickle: rebuilding a CUDA context per kernel call in a forked worker
        is not a supported execution model.  Everything else is probed with a
        real ``pickle.dumps``.
        """
        name = self.backend if isinstance(self.backend, str) else getattr(
            self.backend, "name", None
        )
        if name == "cupy":
            raise NonPicklableShardError(
                "shard uses the cupy backend (device-resident operands); "
                "process-mode shard execution requires host-resident state — "
                "use a 'thread' or 'serial' runner"
            )
        try:
            pickle.dumps(self)
        except Exception as exc:
            raise NonPicklableShardError(
                f"shard program cannot be pickled for process-mode "
                f"execution: {exc}; use a 'thread' or 'serial' runner"
            ) from exc

    # ----------------------------------------------------------- execution

    def materialize(self, random_state=None) -> CrossbarArray:
        """Rebuild the live :class:`CrossbarArray` this program describes.

        ``random_state`` defaults to ``np.random.default_rng(self.seed)`` —
        the exact generator the host shard started from — so a freshly
        materialised array is indistinguishable from the host's at build
        time.
        """
        if random_state is None:
            random_state = np.random.default_rng(self.seed)
        array = CrossbarArray.from_conductances(
            self.g_plus,
            self.g_minus,
            mapping=self.mapping,
            nonidealities=self.nonidealities,
            reference_weights=self.reference_weights,
            random_state=random_state,
            backend=get_backend(self.backend)
            if isinstance(self.backend, str)
            else self.backend,
            dtype=self.dtype,
            batch_invariant=self.batch_invariant,
        )
        array.noise_tag = self.noise_tag
        return array


def _materialized(program: ShardProgram, rng_seed) -> CrossbarArray:
    random_state = None if rng_seed is None else np.random.default_rng(int(rng_seed))
    return program.materialize(random_state=random_state)


def run_shard(program: ShardProgram, voltages, sample_seeds=None, rng_seed=None):
    """Pure fused shard kernel: ``(outputs, total_current)`` in one pass.

    The process-parallel counterpart of the host-side fused
    :meth:`~repro.crossbar.array.CrossbarArray.matvec_with_current`: the
    worker materialises the program, traverses the devices once, and returns
    host numpy results.  With ``sample_seeds`` (or a deterministic program)
    the result is a pure function of the arguments — bitwise identical to
    the host path.  ``rng_seed`` seeds the unseeded stochastic path's
    generator for this one call (drawn host-side by the dispatcher).
    """
    array = _materialized(program, rng_seed)
    return array.matvec_with_current(voltages, sample_seeds=sample_seeds)


def run_shard_matvec(program: ShardProgram, voltages, sample_seeds=None, rng_seed=None):
    """Pure shard kernel for output currents only (Eq. 3)."""
    array = _materialized(program, rng_seed)
    return array.matvec(voltages, sample_seeds=sample_seeds)


def run_shard_total_current(
    program: ShardProgram, voltages, sample_seeds=None, rng_seed=None
):
    """Pure shard kernel for the power side channel only (Eq. 5)."""
    array = _materialized(program, rng_seed)
    return array.total_current(voltages, sample_seeds=sample_seeds)
