"""Weight-matrix to conductance-pair mapping.

Each weight ``w_ij`` is represented by a differential pair of conductances
``G+_ij`` and ``G-_ij`` with ``w_ij ∝ G+_ij - G-_ij`` (Figure 2 of the paper).
Two schemes are implemented:

``MIN_POWER`` (the paper's assumption)
    For positive weights ``G- ≈ g_min`` and for negative weights
    ``G+ ≈ g_min``.  This minimises static power and creates the side channel
    the paper exploits: the column conductance sum becomes an affine function
    of the column 1-norm, ``G_j = 2 N_rows g_min + scale * Σ_i |w_ij|``.

``BALANCED``
    The pair is split symmetrically around the mid-conductance so that
    ``G+ + G-`` is the same for every device regardless of the weight.  The
    column sums then carry no information about the weights — this scheme is
    the natural hardware counter-measure and is used by the mapping ablation
    benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.crossbar.devices import IDEAL_DEVICE, NVMDeviceModel
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix, check_positive


class MappingScheme(str, Enum):
    """Available weight-to-conductance-pair mapping schemes."""

    MIN_POWER = "min_power"
    BALANCED = "balanced"


@dataclass
class ConductanceMapping:
    """Maps a weight matrix onto differential conductance pairs.

    Parameters
    ----------
    device:
        The NVM device model providing the conductance range and write noise.
    scheme:
        :class:`MappingScheme` (default ``MIN_POWER``, as assumed by the paper).
    weight_scale:
        The weight magnitude that maps to full-scale conductance
        (``g_max - g_min``).  ``None`` (default) uses the maximum absolute
        weight of the matrix being programmed, which maximises the usable
        conductance range.
    """

    device: NVMDeviceModel = IDEAL_DEVICE
    scheme: MappingScheme = MappingScheme.MIN_POWER
    weight_scale: Optional[float] = None

    def __post_init__(self) -> None:
        self.scheme = MappingScheme(self.scheme)
        if self.weight_scale is not None:
            check_positive(self.weight_scale, "weight_scale")

    # ------------------------------------------------------------------ api

    def resolve_weight_scale(self, weights: np.ndarray) -> float:
        """The weight magnitude corresponding to full-scale conductance."""
        if self.weight_scale is not None:
            return float(self.weight_scale)
        max_abs = float(np.abs(weights).max())
        # An all-zero (or subnormal) matrix would make the conductance scale
        # overflow; fall back to a unit scale, which maps every weight to a
        # (near-)zero conductance as expected.
        if max_abs == 0.0 or not np.isfinite(self.device.conductance_range / max_abs):
            return 1.0
        return max_abs

    def conductance_per_unit_weight(self, weights: np.ndarray) -> float:
        """Conductance added per unit of |weight| under this mapping."""
        return self.device.conductance_range / self.resolve_weight_scale(weights)

    def map(
        self,
        weights: np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Program a weight matrix; returns ``(G_plus, G_minus)``.

        Both returned arrays have the weight matrix's shape ``(M, N)``.
        Programming noise and conductance quantization from the device model
        are applied here (they model the write operation).
        """
        weights = check_matrix(weights, "weights")
        rng = as_rng(random_state)
        scale = self.conductance_per_unit_weight(weights)
        g_min, g_max = self.device.g_min, self.device.g_max

        if self.scheme is MappingScheme.MIN_POWER:
            g_plus = g_min + scale * np.clip(weights, 0.0, None)
            g_minus = g_min + scale * np.clip(-weights, 0.0, None)
        else:  # BALANCED
            g_mid = 0.5 * (g_min + g_max)
            half = 0.5 * scale * weights
            g_plus = g_mid + half
            g_minus = g_mid - half

        g_plus = self.device.quantize(g_plus)
        g_minus = self.device.quantize(g_minus)
        g_plus = self.device.apply_programming_noise(g_plus, rng)
        g_minus = self.device.apply_programming_noise(g_minus, rng)
        return g_plus, g_minus

    def unmap(self, g_plus: np.ndarray, g_minus: np.ndarray, weights_reference: np.ndarray) -> np.ndarray:
        """Recover the effective weights implemented by a conductance pair.

        ``weights_reference`` is only used to resolve the weight scale (the
        same matrix that was passed to :meth:`map`).
        """
        scale = self.conductance_per_unit_weight(np.asarray(weights_reference, dtype=float))
        return (np.asarray(g_plus, dtype=float) - np.asarray(g_minus, dtype=float)) / scale

    def column_conductance_sums(
        self, g_plus: np.ndarray, g_minus: np.ndarray
    ) -> np.ndarray:
        """``G_j = Σ_i (G+_ij + G-_ij)`` — the quantity power probing reveals."""
        return (np.asarray(g_plus) + np.asarray(g_minus)).sum(axis=0)

    def expected_column_sums(self, weights: np.ndarray) -> np.ndarray:
        """Analytic column sums for an ideal (noise-free) programming pass.

        Under ``MIN_POWER`` this is ``2 M g_min + scale * Σ_i |w_ij|``; under
        ``BALANCED`` it is the constant ``M (g_min + g_max)``.
        """
        weights = check_matrix(weights, "weights")
        n_rows = weights.shape[0]
        if self.scheme is MappingScheme.MIN_POWER:
            scale = self.conductance_per_unit_weight(weights)
            return 2 * n_rows * self.device.g_min + scale * np.abs(weights).sum(axis=0)
        return np.full(
            weights.shape[1], n_rows * (self.device.g_min + self.device.g_max)
        )
