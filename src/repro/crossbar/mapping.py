"""Weight-matrix to conductance-pair mapping and logical-to-physical placement.

Each weight ``w_ij`` is represented by a differential pair of conductances
``G+_ij`` and ``G-_ij`` with ``w_ij ∝ G+_ij - G-_ij`` (Figure 2 of the paper).
Two schemes are implemented:

``MIN_POWER`` (the paper's assumption)
    For positive weights ``G- ≈ g_min`` and for negative weights
    ``G+ ≈ g_min``.  This minimises static power and creates the side channel
    the paper exploits: the column conductance sum becomes an affine function
    of the column 1-norm, ``G_j = 2 N_rows g_min + scale * Σ_i |w_ij|``.

``BALANCED``
    The pair is split symmetrically around the mid-conductance so that
    ``G+ + G-`` is the same for every device regardless of the weight.  The
    column sums then carry no information about the weights — this scheme is
    the natural hardware counter-measure and is used by the mapping ablation
    benchmark.

Besides the per-device mapping, this module also describes the *placement* of
a logical weight matrix onto physical hardware: :class:`ShardingSpec` declares
how one layer is split across a grid of crossbar tiles (row shards partition
the output rows, column shards partition the input columns) and in which
order the column-shard partial sums are reduced back into one output.  The
actual multi-tile execution lives in
:class:`~repro.crossbar.tile.ShardedTileGroup`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crossbar.devices import IDEAL_DEVICE, NVMDeviceModel
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix, check_positive, check_positive_int


class MappingScheme(str, Enum):
    """Available weight-to-conductance-pair mapping schemes."""

    MIN_POWER = "min_power"
    BALANCED = "balanced"


@dataclass
class ConductanceMapping:
    """Maps a weight matrix onto differential conductance pairs.

    Parameters
    ----------
    device:
        The NVM device model providing the conductance range and write noise.
    scheme:
        :class:`MappingScheme` (default ``MIN_POWER``, as assumed by the paper).
    weight_scale:
        The weight magnitude that maps to full-scale conductance
        (``g_max - g_min``).  ``None`` (default) uses the maximum absolute
        weight of the matrix being programmed, which maximises the usable
        conductance range.
    """

    device: NVMDeviceModel = IDEAL_DEVICE
    scheme: MappingScheme = MappingScheme.MIN_POWER
    weight_scale: Optional[float] = None

    def __post_init__(self) -> None:
        self.scheme = MappingScheme(self.scheme)
        if self.weight_scale is not None:
            check_positive(self.weight_scale, "weight_scale")

    # ------------------------------------------------------------------ api

    def resolve_weight_scale(self, weights: np.ndarray) -> float:
        """The weight magnitude corresponding to full-scale conductance."""
        if self.weight_scale is not None:
            return float(self.weight_scale)
        max_abs = float(np.abs(weights).max())
        # An all-zero (or subnormal) matrix would make the conductance scale
        # overflow; fall back to a unit scale, which maps every weight to a
        # (near-)zero conductance as expected.
        if max_abs == 0.0 or not np.isfinite(self.device.conductance_range / max_abs):
            return 1.0
        return max_abs

    def conductance_per_unit_weight(self, weights: np.ndarray) -> float:
        """Conductance added per unit of |weight| under this mapping."""
        return self.device.conductance_range / self.resolve_weight_scale(weights)

    def map(
        self,
        weights: np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Program a weight matrix; returns ``(G_plus, G_minus)``.

        Both returned arrays have the weight matrix's shape ``(M, N)``.
        Programming noise and conductance quantization from the device model
        are applied here (they model the write operation).
        """
        weights = check_matrix(weights, "weights")
        rng = as_rng(random_state)
        scale = self.conductance_per_unit_weight(weights)
        g_min, g_max = self.device.g_min, self.device.g_max

        if self.scheme is MappingScheme.MIN_POWER:
            g_plus = g_min + scale * np.clip(weights, 0.0, None)
            g_minus = g_min + scale * np.clip(-weights, 0.0, None)
        else:  # BALANCED
            g_mid = 0.5 * (g_min + g_max)
            half = 0.5 * scale * weights
            g_plus = g_mid + half
            g_minus = g_mid - half

        g_plus = self.device.quantize(g_plus)
        g_minus = self.device.quantize(g_minus)
        g_plus = self.device.apply_programming_noise(g_plus, rng)
        g_minus = self.device.apply_programming_noise(g_minus, rng)
        return g_plus, g_minus

    def unmap(self, g_plus: np.ndarray, g_minus: np.ndarray, weights_reference: np.ndarray) -> np.ndarray:
        """Recover the effective weights implemented by a conductance pair.

        ``weights_reference`` is only used to resolve the weight scale (the
        same matrix that was passed to :meth:`map`).
        """
        scale = self.conductance_per_unit_weight(np.asarray(weights_reference, dtype=float))
        return (np.asarray(g_plus, dtype=float) - np.asarray(g_minus, dtype=float)) / scale

    def column_conductance_sums(
        self, g_plus: np.ndarray, g_minus: np.ndarray
    ) -> np.ndarray:
        """``G_j = Σ_i (G+_ij + G-_ij)`` — the quantity power probing reveals."""
        return (np.asarray(g_plus) + np.asarray(g_minus)).sum(axis=0)

    def expected_column_sums(self, weights: np.ndarray) -> np.ndarray:
        """Analytic column sums for an ideal (noise-free) programming pass.

        Under ``MIN_POWER`` this is ``2 M g_min + scale * Σ_i |w_ij|``; under
        ``BALANCED`` it is the constant ``M (g_min + g_max)``.
        """
        weights = check_matrix(weights, "weights")
        n_rows = weights.shape[0]
        if self.scheme is MappingScheme.MIN_POWER:
            scale = self.conductance_per_unit_weight(weights)
            return 2 * n_rows * self.device.g_min + scale * np.abs(weights).sum(axis=0)
        return np.full(
            weights.shape[1], n_rows * (self.device.g_min + self.device.g_max)
        )


# --------------------------------------------------------------------- sharding


#: Reduction orders accepted by :attr:`ShardingSpec.reduction`.
REDUCTION_ORDERS = ("sequential", "tree")


def reduce_partial_sums(partials: Sequence[np.ndarray], order: str = "sequential"):
    """Reduce column-shard partial outputs into one array.

    ``sequential`` accumulates the partials in shard order (a ripple adder
    chain at the tile-group output); ``tree`` folds them pairwise (a balanced
    adder tree, halving the reduction depth).  The two orders are equal in
    exact arithmetic and differ only in float rounding; both are
    deterministic for a fixed shard list.
    """
    if len(partials) == 0:
        raise ValueError("cannot reduce an empty list of partial sums")
    if order not in REDUCTION_ORDERS:
        raise ValueError(f"reduction order must be one of {REDUCTION_ORDERS}, got {order!r}")
    partials = list(partials)
    if order == "sequential":
        total = partials[0]
        for partial in partials[1:]:
            total = total + partial
        return total
    while len(partials) > 1:
        folded = [
            partials[i] + partials[i + 1] if i + 1 < len(partials) else partials[i]
            for i in range(0, len(partials), 2)
        ]
        partials = folded
    return partials[0]


@dataclass(frozen=True)
class ShardingSpec:
    """How one logical layer is split across a grid of physical crossbar tiles.

    A layer with an ``(M, N)`` weight matrix is partitioned into
    ``row_shards x col_shards`` sub-arrays: row shards partition the ``M``
    output rows (each shard computes a slice of the output vector), column
    shards partition the ``N`` input columns (each shard sees a slice of the
    input and produces a *partial sum* that must be reduced across shards).
    ``numpy.array_split`` semantics apply, so non-divisible shapes are legal —
    the leading shards are one row/column larger.

    Attributes
    ----------
    row_shards / col_shards:
        Number of partitions along the output/input dimension (>= 1 each).
    reduction:
        Order in which column-shard partial sums are combined:
        ``"sequential"`` (shard order) or ``"tree"`` (pairwise fold).
    """

    row_shards: int = 1
    col_shards: int = 1
    reduction: str = "sequential"

    def __post_init__(self) -> None:
        check_positive_int(self.row_shards, "row_shards")
        check_positive_int(self.col_shards, "col_shards")
        if self.reduction not in REDUCTION_ORDERS:
            raise ValueError(
                f"reduction must be one of {REDUCTION_ORDERS}, got {self.reduction!r}"
            )

    # ---------------------------------------------------------- constructors

    @classmethod
    def rows(cls, n: int, *, reduction: str = "sequential") -> "ShardingSpec":
        """Split the output rows across ``n`` tiles (no partial-sum reduction)."""
        return cls(row_shards=n, reduction=reduction)

    @classmethod
    def columns(cls, n: int, *, reduction: str = "sequential") -> "ShardingSpec":
        """Split the input columns across ``n`` tiles (partial sums reduced)."""
        return cls(col_shards=n, reduction=reduction)

    @classmethod
    def grid(cls, rows: int, cols: int, *, reduction: str = "sequential") -> "ShardingSpec":
        """Split both dimensions across a ``rows x cols`` tile grid."""
        return cls(row_shards=rows, col_shards=cols, reduction=reduction)

    # ------------------------------------------------------------ properties

    @property
    def n_shards(self) -> int:
        """Number of physical tiles the layer occupies."""
        return self.row_shards * self.col_shards

    @property
    def is_trivial(self) -> bool:
        """True for the 1x1 grid — a single tile, no sharding."""
        return self.row_shards == 1 and self.col_shards == 1

    @property
    def strategy(self) -> str:
        """Human-readable split kind: ``none`` / ``rows`` / ``columns`` / ``grid``."""
        if self.is_trivial:
            return "none"
        if self.col_shards == 1:
            return "rows"
        if self.row_shards == 1:
            return "columns"
        return "grid"

    # -------------------------------------------------------------- geometry

    def shard_sections(
        self, n_rows: int, n_cols: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Index partitions ``(row_sections, col_sections)`` for an (M, N) matrix.

        Every shard must be non-empty; a spec with more shards than rows or
        columns is rejected here (at placement time, when the shape is known).
        """
        if self.row_shards > n_rows:
            raise ValueError(
                f"cannot split {n_rows} output rows into {self.row_shards} shards"
            )
        if self.col_shards > n_cols:
            raise ValueError(
                f"cannot split {n_cols} input columns into {self.col_shards} shards"
            )
        row_sections = np.array_split(np.arange(n_rows), self.row_shards)
        col_sections = np.array_split(np.arange(n_cols), self.col_shards)
        return row_sections, col_sections

    def column_sections(self, n_cols: int) -> List[np.ndarray]:
        """Index partitions of ``N`` input columns only (attack-side helper).

        A prober reconstructing per-column quantities from per-shard rails
        needs to know which physical tile owns each input column; this is the
        column half of :meth:`shard_sections` without requiring the row
        count.
        """
        if self.col_shards > n_cols:
            raise ValueError(
                f"cannot split {n_cols} input columns into {self.col_shards} shards"
            )
        return np.array_split(np.arange(n_cols), self.col_shards)

    # ----------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (for scenario/result metadata)."""
        return {
            "row_shards": self.row_shards,
            "col_shards": self.col_shards,
            "reduction": self.reduction,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardingSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        allowed = {"row_shards", "col_shards", "reduction"}
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(
                f"unknown ShardingSpec key(s): {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        return cls(**payload)


#: Shared default: a single tile per layer (the seed engine's placement).
UNSHARDED = ShardingSpec()
