"""Pluggable array-API compute backends for the hot-path kernels.

Every analogue hot-path operation in the engine — the matmul/einsum products
on the cached effective state, the per-element noise multiplies, the clip and
reduction helpers — is expressed against a tiny :class:`ArrayBackend`
protocol instead of :mod:`numpy` directly.  The numpy backend is the
always-available reference; ``torch`` and ``cupy`` backends are detected at
import time and slot in without touching tiles, attacks, sweeps, or the
service, so everything downstream (service QPS, sweep grids, figure
pipelines) inherits the device speedup.

Design rules (per the repo's lean-on-battle-tested-primitives ADR):

* **numpy is the semantics oracle.**  The numpy backend performs the *exact*
  operations the pre-backend kernels performed — ``asarray`` with a matching
  dtype is a no-copy view, ``matmul`` is the same BLAS call — so the default
  configuration is bit-identical to the historical engine.
* **Seeds stay host-side.**  All seeded noise (counter-mode splitmix64 per-row
  seeds, the stateless :func:`repro.utils.rng.sample_stream` realizations) is
  generated on the host and shipped to the device via :meth:`asarray`; a
  backend never owns an RNG.  Within any single backend the seeded path is
  therefore a pure function of ``(inputs, seeds)`` — the batch-invariance
  contract the async service relies on.
* **Boundary conversion.**  Public engine methods accept and return host
  numpy arrays (:meth:`to_numpy` at the boundary); only the cached effective-
  state operands are device-resident, transferred once per program/invalidate
  rather than per query.

Optional backends are *probed* cheaply (``importlib.util.find_spec``) and
imported lazily on first use; machines without torch/cupy simply don't list
them.  Requesting an absent backend raises :class:`BackendUnavailableError`
with install guidance.
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import Dict, Optional, Tuple, Union

import numpy as np

#: Names accepted by :func:`get_backend`, in ``"auto"`` preference order
#: (fastest-first: a GPU backend beats the host reference when present).
BACKEND_NAMES: Tuple[str, ...] = ("cupy", "torch", "numpy")

#: dtype specs the engine supports: float64 is the bit-exact reference,
#: float32 the documented fast path (~1e-6 relative tolerance).
SUPPORTED_DTYPES: Tuple[str, ...] = ("float32", "float64")


class BackendUnavailableError(RuntimeError):
    """Raised when a requested compute backend is not importable."""


def _module_available(module: str) -> bool:
    """Cheaply probe importability without paying the import itself."""
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


class ArrayBackend:
    """The ~dozen ops the engine needs, numpy reference implementation.

    Subclasses override the namespace hooks for torch/cupy; everything the
    engine calls goes through this interface so a backend swap never touches
    engine logic.  Instances are stateless (no RNG, no per-array state) and
    shared as singletons via :func:`get_backend`.
    """

    name = "numpy"
    #: Device the operands live on ("cpu", "cuda", ...).  Informational.
    device = "cpu"

    # ------------------------------------------------------------- dtypes

    def dtype(self, spec: Union[str, np.dtype]):
        """Canonical dtype object for a ``"float32"``/``"float64"`` spec."""
        name = np.dtype(spec).name if not isinstance(spec, str) else spec
        if name not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be one of {SUPPORTED_DTYPES}, got {spec!r}"
            )
        return np.dtype(name)

    def dtype_name(self, dtype) -> str:
        """The ``"float32"``/``"float64"`` name of a backend dtype object."""
        return np.dtype(dtype).name

    # ----------------------------------------------------------- transfer

    def asarray(self, values, dtype=None):
        """Host (or device) values -> device array.  No-copy when possible."""
        return np.asarray(values, dtype=dtype)

    def to_numpy(self, values) -> np.ndarray:
        """Device array -> host :class:`numpy.ndarray`.  No-copy on host."""
        return np.asarray(values)

    # ------------------------------------------------------------ kernels

    def matmul(self, a, b):
        """Matrix product (the BLAS fast path for unseeded queries)."""
        return np.matmul(a, b)

    def einsum(self, subscripts: str, *operands):
        """Fixed-reduction-order contraction (the batch-invariant kernels)."""
        return np.einsum(subscripts, *operands)

    def clip(self, values, low, high):
        return np.clip(values, low, high)

    def concatenate(self, arrays, axis: int = 0):
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays, axis: int = 0):
        return np.stack(arrays, axis=axis)

    def sum(self, values, axis: Optional[int] = None):
        return np.sum(values, axis=axis)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    # -------------------------------------------------------------- timing

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on the host)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"


class TorchBackend(ArrayBackend):
    """PyTorch backend (CUDA when available, CPU otherwise)."""

    name = "torch"

    def __init__(self):
        import torch

        self._torch = torch
        self.device = "cuda" if torch.cuda.is_available() else "cpu"
        self._dtypes = {"float32": torch.float32, "float64": torch.float64}

    def dtype(self, spec):
        if not isinstance(spec, str):
            for name, value in self._dtypes.items():
                if value == spec:
                    return value
            spec = np.dtype(spec).name
        if spec not in self._dtypes:
            raise ValueError(
                f"dtype must be one of {SUPPORTED_DTYPES}, got {spec!r}"
            )
        return self._dtypes[spec]

    def dtype_name(self, dtype) -> str:
        for name, value in self._dtypes.items():
            if value == dtype:
                return name
        return str(dtype)

    def asarray(self, values, dtype=None):
        torch = self._torch
        if isinstance(values, torch.Tensor):
            return values.to(device=self.device, dtype=dtype)
        return torch.asarray(
            np.ascontiguousarray(values), dtype=dtype, device=self.device
        )

    def to_numpy(self, values) -> np.ndarray:
        return values.detach().cpu().numpy()

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def einsum(self, subscripts, *operands):
        return self._torch.einsum(subscripts, *operands)

    def clip(self, values, low, high):
        return self._torch.clamp(values, min=low, max=high)

    def concatenate(self, arrays, axis: int = 0):
        return self._torch.cat(list(arrays), dim=axis)

    def stack(self, arrays, axis: int = 0):
        return self._torch.stack(list(arrays), dim=axis)

    def sum(self, values, axis: Optional[int] = None):
        if axis is None:
            return self._torch.sum(values)
        return self._torch.sum(values, dim=axis)

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(shape, dtype=dtype, device=self.device)

    def synchronize(self) -> None:
        if self.device == "cuda":  # pragma: no cover - needs CUDA hardware
            self._torch.cuda.synchronize()


class CupyBackend(ArrayBackend):
    """CuPy backend (always CUDA)."""

    name = "cupy"
    device = "cuda"

    def __init__(self):  # pragma: no cover - needs CUDA hardware
        import cupy

        self._cupy = cupy

    # All kernels below are exercised only on CUDA machines.
    # pragma: no cover start
    def asarray(self, values, dtype=None):  # pragma: no cover
        return self._cupy.asarray(values, dtype=dtype)

    def to_numpy(self, values) -> np.ndarray:  # pragma: no cover
        return self._cupy.asnumpy(values)

    def matmul(self, a, b):  # pragma: no cover
        return self._cupy.matmul(a, b)

    def einsum(self, subscripts, *operands):  # pragma: no cover
        return self._cupy.einsum(subscripts, *operands)

    def clip(self, values, low, high):  # pragma: no cover
        return self._cupy.clip(values, low, high)

    def concatenate(self, arrays, axis: int = 0):  # pragma: no cover
        return self._cupy.concatenate(list(arrays), axis=axis)

    def stack(self, arrays, axis: int = 0):  # pragma: no cover
        return self._cupy.stack(list(arrays), axis=axis)

    def sum(self, values, axis: Optional[int] = None):  # pragma: no cover
        return self._cupy.sum(values, axis=axis)

    def zeros(self, shape, dtype=None):  # pragma: no cover
        return self._cupy.zeros(shape, dtype=dtype)

    def dtype(self, spec):  # pragma: no cover
        name = spec if isinstance(spec, str) else np.dtype(spec).name
        if name not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be one of {SUPPORTED_DTYPES}, got {spec!r}"
            )
        return self._cupy.dtype(name)

    def synchronize(self) -> None:  # pragma: no cover
        self._cupy.cuda.get_current_stream().synchronize()


_BACKEND_CLASSES = {
    "numpy": ArrayBackend,
    "torch": TorchBackend,
    "cupy": CupyBackend,
}

#: Resolved singletons, one per backend name.
_INSTANCES: Dict[str, ArrayBackend] = {}

#: Import-time availability probe results (cheap find_spec, cached).
_AVAILABLE: Dict[str, bool] = {
    "numpy": True,
    "torch": _module_available("torch"),
    "cupy": _module_available("cupy"),
}


def backend_available(name: str) -> bool:
    """True when ``name`` can be resolved on this machine."""
    return _AVAILABLE.get(name, False)


def available_backends() -> Tuple[str, ...]:
    """Backend names usable on this machine, ``"auto"`` preference order."""
    return tuple(name for name in BACKEND_NAMES if _AVAILABLE[name])


def get_backend(
    spec: Union[None, str, ArrayBackend] = None
) -> ArrayBackend:
    """Resolve a backend spec to a shared :class:`ArrayBackend` instance.

    Parameters
    ----------
    spec:
        ``None`` or ``"numpy"`` for the host reference, ``"torch"``/``"cupy"``
        for an optional accelerator backend, ``"auto"`` for the best
        available one (cupy > torch > numpy), or an existing
        :class:`ArrayBackend` instance (returned unchanged).

    Raises
    ------
    BackendUnavailableError
        When a named optional backend is not importable on this machine.
    ValueError
        On unknown backend names.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        spec = "numpy"
    name = str(spec).lower()
    if name == "auto":
        name = available_backends()[0]
    if name not in _BACKEND_CLASSES:
        raise ValueError(
            f"unknown backend {spec!r}; expected one of "
            f"{BACKEND_NAMES + ('auto',)}"
        )
    if not _AVAILABLE[name]:
        raise BackendUnavailableError(
            f"backend {name!r} is not installed on this machine "
            f"(available: {available_backends()}); install the "
            f"[{name}] optional extra to enable it"
        )
    if name not in _INSTANCES:
        try:
            _INSTANCES[name] = _BACKEND_CLASSES[name]()
        except Exception as exc:  # import succeeded in probe but failed live
            _AVAILABLE[name] = False
            raise BackendUnavailableError(
                f"backend {name!r} failed to initialise: {exc}"
            ) from exc
    return _INSTANCES[name]
