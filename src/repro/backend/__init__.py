"""Pluggable array-API compute backends (numpy / torch / cupy).

See :mod:`repro.backend.core` for the design contract: numpy is the
bit-exact always-available reference, optional backends are detected at
import time and skipped gracefully when absent, and all seeded noise is
generated host-side so the seeded path stays bit-identical within any
single backend.
"""

from repro.backend.core import (
    BACKEND_NAMES,
    SUPPORTED_DTYPES,
    ArrayBackend,
    BackendUnavailableError,
    CupyBackend,
    TorchBackend,
    available_backends,
    backend_available,
    get_backend,
)

__all__ = [
    "BACKEND_NAMES",
    "SUPPORTED_DTYPES",
    "ArrayBackend",
    "BackendUnavailableError",
    "CupyBackend",
    "TorchBackend",
    "available_backends",
    "backend_available",
    "get_backend",
]
