"""Sensitivity and 1-norm maps — the data behind Figure 3.

Figure 3 shows, for each dataset / activation configuration, two images: the
mean sensitivity ``mean_b |∂L/∂u_j|`` reshaped to the image plane, and the
column 1-norms of the weight matrix reshaped the same way.  For the CIFAR-10
configuration the paper plots only the first colour channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.gradients import mean_sensitivity, weight_column_norms
from repro.nn.losses import Loss
from repro.nn.network import Sequential


@dataclass(frozen=True)
class SensitivityMaps:
    """The pair of maps shown in one row-pair of Figure 3.

    Attributes
    ----------
    sensitivity:
        Mean sensitivity per input feature, reshaped to ``map_shape``.
    column_norms:
        Weight-column 1-norms, reshaped to ``map_shape``.
    map_shape:
        The 2-D shape the maps were reshaped to (e.g. ``(28, 28)``).
    channel:
        Which colour channel the maps correspond to (``None`` for grayscale).
    """

    sensitivity: np.ndarray
    column_norms: np.ndarray
    map_shape: Tuple[int, int]
    channel: Optional[int] = None

    def flattened(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return both maps as flat vectors (for correlation computations)."""
        return self.sensitivity.ravel(), self.column_norms.ravel()


def _select_channel(
    values: np.ndarray, image_shape: Tuple[int, ...], channel: Optional[int]
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Reduce a flat per-feature vector to one 2-D map.

    Grayscale image shapes ``(H, W)`` pass through; colour shapes
    ``(H, W, C)`` are sliced at ``channel`` (default 0, matching the paper's
    "first color channel" choice for CIFAR-10).
    """
    if len(image_shape) == 2:
        return values.reshape(image_shape), (image_shape[0], image_shape[1])
    if len(image_shape) == 3:
        height, width, n_channels = image_shape
        chan = 0 if channel is None else int(channel)
        if not 0 <= chan < n_channels:
            raise ValueError(f"channel {chan} out of range for {n_channels} channels")
        reshaped = values.reshape(image_shape)[:, :, chan]
        return reshaped, (height, width)
    raise ValueError(f"unsupported image shape {image_shape}")


def sensitivity_norm_maps(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    image_shape: Tuple[int, ...],
    *,
    loss: Optional[Loss] = None,
    channel: Optional[int] = None,
    column_norms: Optional[np.ndarray] = None,
) -> SensitivityMaps:
    """Compute the Figure 3 map pair for one configuration.

    Parameters
    ----------
    network:
        Trained single-layer network.
    inputs / targets:
        The set over which the sensitivity is averaged (the paper uses the
        test set).
    image_shape:
        Original image shape used to fold the flat feature vectors back into
        2-D maps.
    channel:
        For colour images, which channel to display (default 0).
    column_norms:
        Optional externally measured 1-norms (e.g. from power probing).
    """
    sensitivity = mean_sensitivity(network, inputs, targets, loss=loss)
    if column_norms is None:
        column_norms = weight_column_norms(network.layers[0].weights)
    else:
        column_norms = np.asarray(column_norms, dtype=float)
    sens_map, map_shape = _select_channel(sensitivity, tuple(image_shape), channel)
    norm_map, _ = _select_channel(column_norms, tuple(image_shape), channel)
    return SensitivityMaps(
        sensitivity=sens_map,
        column_norms=norm_map,
        map_shape=map_shape,
        channel=channel if len(image_shape) == 3 else None,
    )


def spatial_smoothness(map_2d: np.ndarray) -> float:
    """Mean absolute difference between neighbouring map entries.

    Used to quantify the paper's qualitative observation that the MNIST
    1-norm map changes gradually over the image plane while the CIFAR-10 map
    changes rapidly.  Lower values mean smoother maps.  The value is
    normalised by the map's dynamic range so datasets with different scales
    are comparable.
    """
    map_2d = np.asarray(map_2d, dtype=float)
    if map_2d.ndim != 2:
        raise ValueError(f"expected a 2-D map, got shape {map_2d.shape}")
    value_range = map_2d.max() - map_2d.min()
    if value_range == 0:
        return 0.0
    horizontal = np.abs(np.diff(map_2d, axis=1)).mean()
    vertical = np.abs(np.diff(map_2d, axis=0)).mean()
    return float((horizontal + vertical) / (2.0 * value_range))
