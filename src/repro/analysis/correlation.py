"""Correlation between loss sensitivity and weight-column 1-norms (Table I).

The paper distinguishes two quantities:

* **Mean Correlation** — the Pearson correlation between a *single sample's*
  sensitivity magnitudes ``|∂L/∂u_j|`` and the column 1-norms, averaged over
  all samples in the set.  This measures how well the power information
  predicts the sensitivity of *individual* inputs.
* **Correlation of Mean** — the Pearson correlation between the sensitivity
  magnitudes *averaged over the whole set* and the column 1-norms.  This
  measures how well the power information captures the average importance of
  each input feature.

Table I reports both, on train and test splits, for the four dataset /
activation configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.gradients import sensitivity_map, weight_column_norms
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.utils.validation import check_matrix, check_vector


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient between two vectors.

    Returns 0 when either vector is constant (the correlation is undefined);
    this matches how degenerate feature columns should be treated in the
    Table I aggregation.
    """
    x = check_vector(x, "x")
    y = check_vector(y, "y", length=len(x))
    x_std = x.std()
    y_std = y.std()
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def per_sample_correlations(
    sensitivities: np.ndarray, column_norms: np.ndarray
) -> np.ndarray:
    """Correlation of each sample's sensitivity vector with the column norms.

    Parameters
    ----------
    sensitivities:
        ``(B, N)`` per-sample sensitivity magnitudes.
    column_norms:
        ``(N,)`` weight-column 1-norms.

    Returns
    -------
    np.ndarray
        ``(B,)`` per-sample Pearson correlations.
    """
    sensitivities = check_matrix(sensitivities, "sensitivities")
    column_norms = check_vector(column_norms, "column_norms", length=sensitivities.shape[1])
    return np.array(
        [pearson_correlation(row, column_norms) for row in sensitivities]
    )


def mean_correlation(sensitivities: np.ndarray, column_norms: np.ndarray) -> float:
    """Table I's "Mean Correlation": average of the per-sample correlations."""
    return float(per_sample_correlations(sensitivities, column_norms).mean())


def correlation_of_mean(sensitivities: np.ndarray, column_norms: np.ndarray) -> float:
    """Table I's "Correlation of Mean": correlation of the averaged sensitivity."""
    sensitivities = check_matrix(sensitivities, "sensitivities")
    return pearson_correlation(sensitivities.mean(axis=0), np.asarray(column_norms, dtype=float))


@dataclass(frozen=True)
class CorrelationSummary:
    """Both Table I statistics for one (model, data split) pair."""

    mean_correlation: float
    correlation_of_mean: float
    n_samples: int

    def as_row(self) -> tuple[float, float]:
        """(mean correlation, correlation of mean) tuple for table printing."""
        return self.mean_correlation, self.correlation_of_mean


def sensitivity_norm_correlations(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    loss: Optional[Loss] = None,
    column_norms: Optional[np.ndarray] = None,
) -> CorrelationSummary:
    """Compute both Table I statistics for a network on a dataset split.

    Parameters
    ----------
    network:
        The trained single-layer network.
    inputs / targets:
        The split to evaluate (train or test).
    loss:
        Loss to differentiate (defaults to the network's natural loss).
    column_norms:
        The 1-norm vector to correlate against.  Defaults to the true column
        1-norms of the first layer's weights; pass the values recovered by
        power probing to evaluate the attacker's view instead.
    """
    sensitivities = sensitivity_map(network, inputs, targets, loss=loss)
    if column_norms is None:
        column_norms = weight_column_norms(network.layers[0].weights)
    return CorrelationSummary(
        mean_correlation=mean_correlation(sensitivities, column_norms),
        correlation_of_mean=correlation_of_mean(sensitivities, column_norms),
        n_samples=len(sensitivities),
    )
