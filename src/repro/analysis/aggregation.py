"""Aggregating metrics over independent experiment runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.utils.results import SweepResult


@dataclass(frozen=True)
class Aggregate:
    """Mean / standard deviation / count for one metric across runs."""

    mean: float
    std: float
    count: int
    values: tuple

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Aggregate":
        """Build from raw per-run values."""
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            raise ValueError("cannot aggregate an empty collection of values")
        return cls(
            mean=float(array.mean()),
            std=float(array.std()),
            count=int(array.size),
            values=tuple(array.tolist()),
        )

    def format(self, precision: int = 3) -> str:
        """``mean ± std`` string for report tables."""
        return f"{self.mean:.{precision}f} ± {self.std:.{precision}f}"


def mean_and_std(values: Iterable[float]) -> tuple[float, float]:
    """(mean, std) of a collection of per-run values."""
    aggregate = Aggregate.from_values(values)
    return aggregate.mean, aggregate.std


def aggregate_runs(
    runs: Sequence[Mapping[str, float]] | SweepResult,
    metric_keys: Sequence[str] | None = None,
) -> Dict[str, Aggregate]:
    """Aggregate metrics across runs.

    Parameters
    ----------
    runs:
        Either a sequence of per-run metric dictionaries or a
        :class:`~repro.utils.results.SweepResult`.
    metric_keys:
        Which metrics to aggregate; defaults to every key present in the
        first run.
    """
    if isinstance(runs, SweepResult):
        dictionaries = [run.metrics for run in runs]
    else:
        dictionaries = list(runs)
    if not dictionaries:
        raise ValueError("no runs to aggregate")
    if metric_keys is None:
        metric_keys = list(dictionaries[0].keys())
    aggregates: Dict[str, Aggregate] = {}
    for key in metric_keys:
        values = [run[key] for run in dictionaries if key in run]
        if values:
            aggregates[key] = Aggregate.from_values(values)
    return aggregates
