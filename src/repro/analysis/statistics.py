"""Significance testing for the Figure 5 comparisons.

The paper marks query counts where the power-augmented surrogate attack
differs from the power-free baseline with an asterisk when a Student's t-test
gives p < 0.05 over 10 independent runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.validation import check_probability, check_vector


@dataclass(frozen=True)
class TTestResult:
    """Outcome of an independent two-sample t-test.

    Attributes
    ----------
    statistic:
        The t statistic.
    p_value:
        Two-sided p-value.
    significant:
        True when ``p_value < alpha``.
    alpha:
        The significance threshold used.
    mean_difference:
        ``mean(sample_a) - mean(sample_b)``.
    """

    statistic: float
    p_value: float
    significant: bool
    alpha: float
    mean_difference: float

    def marker(self) -> str:
        """The paper's Figure 5 annotation: '*' when significant, blank otherwise."""
        return "*" if self.significant else " "


def independent_ttest(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    *,
    alpha: float = 0.05,
    equal_variance: bool = True,
) -> TTestResult:
    """Student's t-test between two independent samples.

    Parameters
    ----------
    sample_a / sample_b:
        The two groups (e.g. attack efficacy with and without power data,
        one value per independent run).
    alpha:
        Significance threshold (0.05 in the paper).
    equal_variance:
        ``True`` for the classic Student's t-test (the paper's choice),
        ``False`` for Welch's correction.
    """
    sample_a = check_vector(sample_a, "sample_a")
    sample_b = check_vector(sample_b, "sample_b")
    check_probability(alpha, "alpha")
    if len(sample_a) < 2 or len(sample_b) < 2:
        raise ValueError("both samples need at least two observations for a t-test")
    if np.allclose(sample_a, sample_a[0]) and np.allclose(sample_b, sample_b[0]):
        # Degenerate case: both groups constant.  scipy returns NaN; treat a
        # difference in constants as "not testable" rather than significant.
        statistic, p_value = 0.0, 1.0
    else:
        statistic, p_value = stats.ttest_ind(sample_a, sample_b, equal_var=equal_variance)
        statistic = float(statistic)
        p_value = float(p_value)
    return TTestResult(
        statistic=statistic,
        p_value=p_value,
        significant=bool(p_value < alpha),
        alpha=alpha,
        mean_difference=float(np.mean(sample_a) - np.mean(sample_b)),
    )


def significance_marker(
    sample_a: np.ndarray, sample_b: np.ndarray, *, alpha: float = 0.05
) -> str:
    """Convenience wrapper returning the '*' / ' ' marker directly."""
    return independent_ttest(sample_a, sample_b, alpha=alpha).marker()
