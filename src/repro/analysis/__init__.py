"""Statistical analysis used by the paper's tables and figures."""

from repro.analysis.correlation import (
    pearson_correlation,
    per_sample_correlations,
    mean_correlation,
    correlation_of_mean,
    sensitivity_norm_correlations,
    CorrelationSummary,
)
from repro.analysis.sensitivity import (
    sensitivity_norm_maps,
    SensitivityMaps,
)
from repro.analysis.statistics import (
    independent_ttest,
    significance_marker,
    TTestResult,
)
from repro.analysis.aggregation import (
    aggregate_runs,
    Aggregate,
    mean_and_std,
)

__all__ = [
    "pearson_correlation",
    "per_sample_correlations",
    "mean_correlation",
    "correlation_of_mean",
    "sensitivity_norm_correlations",
    "CorrelationSummary",
    "sensitivity_norm_maps",
    "SensitivityMaps",
    "independent_ttest",
    "significance_marker",
    "TTestResult",
    "aggregate_runs",
    "Aggregate",
    "mean_and_std",
]
