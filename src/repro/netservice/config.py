"""Configuration of the networked multi-tenant query service.

:class:`NetServiceConfig` is a frozen, picklable, JSON-round-trippable value
object in the house style of
:class:`~repro.experiments.scenario.ScenarioSpec` /
:class:`~repro.service.config.ServiceConfig`; it nests the latter as the
coalescing policy of the embedded
:class:`~repro.service.coalescer.QueryService` and adds the network-layer
knobs: tenancy (weights, per-tenant query budgets), per-connection
backpressure, frame-size ceilings, and the client's retry/backoff policy —
one object configures both sides of the wire, so presets stay coherent.

``from_dict`` is strict: unknown keys raise, matching ``ScenarioSpec``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.config import ServiceConfig
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's scheduling weight and query budget.

    Attributes
    ----------
    name:
        Tenant identifier carried on every request frame.
    weight:
        Weighted-fair-scheduling share: under saturating load from several
        tenants, rows served per tenant converge to the ratio of the
        weights.  Must be > 0.
    query_budget:
        Optional cap on total *rows* this tenant may be served (the
        network-layer analogue of ``Oracle(query_budget=...)``).  Requests
        that would exceed it fail with a ``budget-exceeded`` error and
        charge nothing; ``None`` = unbounded.
    """

    name: str
    weight: float = 1.0
    query_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"tenant name must be a non-empty string, got {self.name!r}")
        check_positive(self.weight, "weight")
        if self.query_budget is not None:
            check_positive_int(self.query_budget, "query_budget")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TenantConfig":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown TenantConfig fields {unknown}; expected a subset "
                f"of {sorted(known)}"
            )
        return cls(**dict(payload))


@dataclass(frozen=True)
class NetServiceConfig:
    """Policy of one :class:`~repro.netservice.server.NetworkQueryService`.

    Attributes
    ----------
    host / port:
        Listen address; ``port=0`` binds an ephemeral port (the started
        server reports the real one).
    service:
        Coalescing policy of the embedded in-process
        :class:`~repro.service.coalescer.QueryService` (max_batch,
        max_wait_ms, backpressure bound, seed-derivation base).
    tenants:
        Pre-declared :class:`TenantConfig` entries.  Tenants not listed are
        admitted with ``default_weight`` / ``default_query_budget`` on first
        contact, so single-tenant setups need no tenancy boilerplate.
    default_weight / default_query_budget:
        Policy applied to tenants that were not pre-declared.
    max_inflight_per_connection:
        Per-connection backpressure bound: at most this many pipelined
        requests are admitted per TCP connection; further frames are simply
        not read until responses drain, so the kernel socket buffers (and
        ultimately the client) absorb the excess.
    scheduler_window:
        Maximum requests the weighted-fair scheduler keeps dispatched into
        the coalescer concurrently.  Large values maximise coalescing;
        ``1`` serialises dispatch into strict weighted-fair order (useful
        for fairness analysis and tests).
    max_frame_bytes:
        Ceiling on one frame's size in either direction.
    request_timeout_s:
        Client-side cap on waiting for one response before the attempt is
        considered lost (retryable).
    max_retries:
        Client-side retry budget for retryable errors, *per request*.
    backoff_base_s / backoff_max_s:
        Exponential-backoff schedule: attempt ``k`` sleeps
        ``min(backoff_max_s, backoff_base_s * 2**(k-1))`` scaled by uniform
        jitter in ``[0.5, 1.0]``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    service: ServiceConfig = field(default_factory=ServiceConfig)
    tenants: Tuple[TenantConfig, ...] = ()
    default_weight: float = 1.0
    default_query_budget: Optional[int] = None
    max_inflight_per_connection: int = 32
    scheduler_window: int = 256
    max_frame_bytes: int = 64 * 1024 * 1024
    request_timeout_s: float = 30.0
    max_retries: int = 5
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ValueError(f"host must be a non-empty string, got {self.host!r}")
        if not isinstance(self.port, int) or isinstance(self.port, bool) or not (
            0 <= self.port <= 65535
        ):
            raise ValueError(f"port must be an int in [0, 65535], got {self.port!r}")
        if not isinstance(self.service, ServiceConfig):
            raise TypeError(
                f"service must be a ServiceConfig, got {type(self.service).__name__}"
            )
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [tenant.name for tenant in self.tenants]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate tenant names in {names}")
        for tenant in self.tenants:
            if not isinstance(tenant, TenantConfig):
                raise TypeError(
                    f"tenants entries must be TenantConfig, got {type(tenant).__name__}"
                )
        check_positive(self.default_weight, "default_weight")
        if self.default_query_budget is not None:
            check_positive_int(self.default_query_budget, "default_query_budget")
        check_positive_int(self.max_inflight_per_connection, "max_inflight_per_connection")
        check_positive_int(self.scheduler_window, "scheduler_window")
        check_positive_int(self.max_frame_bytes, "max_frame_bytes")
        check_positive(self.request_timeout_s, "request_timeout_s")
        if not isinstance(self.max_retries, int) or isinstance(self.max_retries, bool):
            raise TypeError(f"max_retries must be an int, got {self.max_retries!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        check_non_negative(self.backoff_base_s, "backoff_base_s")
        check_non_negative(self.backoff_max_s, "backoff_max_s")

    # ------------------------------------------------------------- utilities

    def tenant_policy(self, name: str) -> TenantConfig:
        """The declared :class:`TenantConfig` for ``name``, or the default one."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        return TenantConfig(
            name=name,
            weight=self.default_weight,
            query_budget=self.default_query_budget,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        payload["service"] = self.service.to_dict()
        payload["tenants"] = [tenant.to_dict() for tenant in self.tenants]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetServiceConfig":
        """Strict inverse of :meth:`to_dict`; unknown keys raise."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown NetServiceConfig fields {unknown}; expected a "
                f"subset of {sorted(known)}"
            )
        kwargs = dict(payload)
        if isinstance(kwargs.get("service"), Mapping):
            kwargs["service"] = ServiceConfig.from_dict(kwargs["service"])
        if "tenants" in kwargs:
            kwargs["tenants"] = tuple(
                entry if isinstance(entry, TenantConfig) else TenantConfig.from_dict(entry)
                for entry in kwargs["tenants"]
            )
        return cls(**kwargs)


def get_netservice_preset(name: str) -> NetServiceConfig:
    """Build a named :class:`NetServiceConfig` preset.

    The preset data lives in
    :data:`repro.experiments.config.NETSERVICE_PRESET_CONFIGS` as plain
    tuples (configuration, not code), mirroring how the ``service-*`` /
    ``sharded-*`` scenario presets are shipped.
    """
    from repro.experiments.config import NETSERVICE_PRESET_CONFIGS

    if name not in NETSERVICE_PRESET_CONFIGS:
        raise KeyError(
            f"unknown netservice preset {name!r}; available: "
            f"{sorted(NETSERVICE_PRESET_CONFIGS)}"
        )
    max_batch, max_wait_ms, tenants = NETSERVICE_PRESET_CONFIGS[name]
    return NetServiceConfig(
        service=ServiceConfig(max_batch=max_batch, max_wait_ms=max_wait_ms),
        tenants=tuple(
            TenantConfig(name=tenant, weight=weight, query_budget=budget)
            for tenant, weight, budget in tenants
        ),
    )
