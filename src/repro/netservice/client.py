"""Synchronous client of the networked query service.

:class:`NetClient` mirrors the PR 5 facades
(:class:`~repro.service.facade.BatchingOracle` /
:class:`~repro.service.facade.BatchingMeasurement`): plain blocking
``query`` / ``measure`` calls, one logical request per call, while the
server coalesces rows from every connected client into shared fused
traversals.

Fault tolerance is the client's whole job:

* every logical request carries a fresh **idempotency key**, generated once
  and reused verbatim across retries, so a retry after a lost response is
  answered from the server's cache and never double-charged;
* **retryable** failures (connection loss, timeouts, a draining server —
  see :mod:`repro.netservice.errors`) reconnect and resend under
  exponential backoff with jitter, up to ``config.max_retries`` times;
* **terminal** failures (:class:`QueryBudgetExceeded`, protocol or remote
  errors) raise immediately — retrying an identical request cannot help.

Responses embed the server-assigned ``request_id`` and the service
``base_seed`` in their metadata, so callers (and the bit-identity tests)
can replay any wire response against a direct seeded backend query.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.netservice.config import NetServiceConfig
from repro.netservice.errors import (
    ConnectionLostError,
    NetServiceError,
    ProtocolError,
    QueryBudgetExceeded,
    RemoteServiceError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceUnavailableError,
)
from repro.netservice.protocol import read_frame_sync, send_frame_sync


def _error_from_header(header: Dict[str, Any]) -> NetServiceError:
    """Reconstruct the typed exception an error frame describes."""
    code = header.get("code", "remote-error")
    message = str(header.get("message", "remote error"))
    if code == "budget-exceeded":
        return QueryBudgetExceeded(message)
    if code == "service-closed":
        return ServiceUnavailableError(message)
    if code == "protocol":
        return ProtocolError(message)
    return RemoteServiceError(
        message, remote_type=str(header.get("error_type", "Exception"))
    )


class NetClient:
    """Blocking client for one :class:`~repro.netservice.server.NetworkQueryService`.

    Parameters
    ----------
    address:
        The server's ``(host, port)`` — e.g. ``ServerHandle.address``.
    tenant:
        Tenant identifier stamped on every request; scheduling weight and
        query budget are the server's per-tenant policy for this name.
    config:
        Client-side knobs (``request_timeout_s``, ``max_retries``,
        ``backoff_base_s`` / ``backoff_max_s``, ``max_frame_bytes``).
        Defaults match the server defaults.
    retry_seed:
        Optional seed for the backoff jitter (reproducible retry timing in
        tests); ``None`` draws from the OS.

    Usage::

        with NetClient(server.address, tenant="alice") as client:
            response = client.query(queries)       # OracleResponse
    """

    def __init__(
        self,
        address: Tuple[str, int],
        tenant: str = "default",
        config: Optional[NetServiceConfig] = None,
        retry_seed: Optional[int] = None,
    ):
        host, port = address
        self.address = (str(host), int(port))
        if not tenant or not isinstance(tenant, str):
            raise ValueError(f"tenant must be a non-empty string, got {tenant!r}")
        self.tenant = tenant
        self.config = config if config is not None else NetServiceConfig()
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._closed = False
        self._hello: Optional[Dict[str, Any]] = None
        #: Retries that actually happened (observable in fault tests).
        self.n_retries = 0

    # ----------------------------------------------------------- connection

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connection(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                self.address, timeout=self.config.request_timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            try:
                send_frame_sync(sock, {"type": "hello"})
                header, _ = read_frame_sync(
                    sock, max_frame_bytes=self.config.max_frame_bytes
                )
            except Exception:
                self._drop_connection()
                raise
            if header.get("status") == "error":
                self._drop_connection()
                raise _error_from_header(header)
            self._hello = header
        return self._sock

    def _handshake(self) -> Dict[str, Any]:
        if self._hello is None:
            self._roundtrip({"type": "ping"})  # connects + hellos, with retry
        return dict(self._hello or {})

    # -------------------------------------------------------------- retries

    def _backoff_sleep(self, attempt: int) -> None:
        delay = min(
            self.config.backoff_max_s,
            self.config.backoff_base_s * (2 ** max(0, attempt - 1)),
        )
        time.sleep(delay * self._rng.uniform(0.5, 1.0))

    def _roundtrip(
        self,
        header: Dict[str, Any],
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Send one frame, return the response; retry retryable failures.

        The caller builds the header *once* (idempotency key included), so
        every resend is byte-identical and dedupable server-side.
        """
        if self._closed:
            raise ServiceClosedError(
                "this NetClient has been closed; build a new one to submit "
                "further queries"
            )
        attempt = 0
        while True:
            try:
                sock = self._ensure_connection()
                send_frame_sync(sock, header, arrays)
                response_header, response_arrays = read_frame_sync(
                    sock, max_frame_bytes=self.config.max_frame_bytes
                )
                if response_header.get("status") == "error":
                    # Retryable error frames join the backoff loop below.
                    raise _error_from_header(response_header)
                return response_header, response_arrays
            except socket.timeout as exc:
                self._drop_connection()
                failure: NetServiceError = RequestTimeoutError(
                    f"no response within {self.config.request_timeout_s}s "
                    f"from {self.address}: {exc}"
                )
            except NetServiceError as exc:
                if not exc.retryable:
                    raise
                self._drop_connection()
                failure = exc
            except (ConnectionError, OSError) as exc:
                self._drop_connection()
                failure = ConnectionLostError(
                    f"connection to {self.address} failed: {exc}"
                )
            attempt += 1
            if attempt > self.config.max_retries:
                raise failure
            self.n_retries += 1
            self._backoff_sleep(attempt)

    # -------------------------------------------------------------- queries

    def _submit(
        self, inputs: np.ndarray
    ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray], np.ndarray]:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        header = {
            "type": "query",
            "tenant": self.tenant,
            "key": uuid.uuid4().hex,
        }
        response_header, response_arrays = self._roundtrip(
            header, {"inputs": inputs}
        )
        return response_header, response_arrays, inputs

    def query(self, inputs: np.ndarray):
        """Submit one oracle request; blocks for its coalesced response.

        Returns an :class:`~repro.attacks.oracle.OracleResponse` whose
        ``metadata`` additionally carries the server-assigned
        ``request_id`` and the service ``base_seed`` (the replay handle).
        """
        header, arrays, inputs = self._submit(inputs)
        if header.get("kind") != "oracle":
            raise ProtocolError(
                f"query() needs an oracle-backed server, got kind "
                f"{header.get('kind')!r} — use measure()"
            )
        from repro.attacks.oracle import OracleResponse

        metadata = dict(header.get("metadata", {}))
        metadata["request_id"] = int(header["request_id"])
        metadata["base_seed"] = int(header["base_seed"])
        return OracleResponse(
            queries=inputs,
            outputs=arrays["outputs"],
            labels=arrays["labels"],
            power=arrays.get("power"),
            output_mode=str(header.get("output_mode", "raw")),
            per_tile_power=arrays.get("per_tile_power"),
            metadata=metadata,
        )

    def measure(self, inputs: np.ndarray):
        """Submit one measurement request; blocks for its readings.

        Follows the :meth:`PowerMeasurement.measure` shape convention: a
        single 1-D input returns a scalar, a batch returns a ``(B,)`` array.
        """
        single = np.asarray(inputs).ndim == 1
        header, arrays, _ = self._submit(inputs)
        if header.get("kind") != "measurement":
            raise ProtocolError(
                f"measure() needs a measurement-backed server, got kind "
                f"{header.get('kind')!r} — use query()"
            )
        readings = arrays["readings"]
        return float(readings[0]) if single else readings

    # ------------------------------------------------------------ metadata

    @property
    def kind(self) -> str:
        """``"oracle"`` or ``"measurement"`` (connects on first use)."""
        return str(self._handshake().get("kind"))

    @property
    def base_seed(self) -> int:
        """The server service's seed-derivation base (the replay handle)."""
        return int(self._handshake()["base_seed"])

    @property
    def output_mode(self) -> str:
        return str(self._handshake().get("output_mode", "raw"))

    @property
    def n_outputs(self) -> int:
        return int(self._handshake()["n_outputs"])

    def stats(self) -> Dict[str, Any]:
        """Server-side stats: per-tenant counters + service coalescing stats."""
        header, _ = self._roundtrip({"type": "stats"})
        return {"tenants": header.get("tenants", {}), "service": header.get("service", {})}

    def ping(self) -> bool:
        header, _ = self._roundtrip({"type": "ping"})
        return header.get("status") == "ok"

    # ------------------------------------------------------------ lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the connection (idempotent); later calls raise
        :class:`~repro.service.errors.ServiceClosedError`."""
        self._closed = True
        self._drop_connection()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
