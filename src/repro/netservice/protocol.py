"""Length-prefixed JSON+binary frame protocol of the networked service.

One frame carries one request or one response::

    +-------+---------+----------------+--------------------+---------------+
    | magic | version | header length  |   header (JSON)    |  array bytes  |
    | b"RN" | 1 byte  | uint32 big-end |   utf-8, hl bytes  | concatenated  |
    +-------+---------+----------------+--------------------+---------------+

The header is a small JSON object (request type, tenant, idempotency key,
status, error code, ...).  ndarray payloads are **not** JSON-encoded: the
header's ``"arrays"`` entry is an ordered list of ``{name, dtype, shape}``
descriptors and the raw bytes follow the header back to back in that order
(C-contiguous, native ``tobytes()`` layout).  This keeps power traces and
query batches bit-exact over the wire — the bit-identity acceptance test
depends on it — at zero serialisation cost beyond one contiguity copy.

Both a blocking-socket codec (client side) and an asyncio-streams codec
(server side) are provided over the same byte layout; every malformed or
oversized frame raises :class:`~repro.netservice.errors.ProtocolError`.
"""

from __future__ import annotations

import json
import math
import socket
import struct
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.netservice.errors import ConnectionLostError, ProtocolError

#: Frame preamble: magic, protocol version, header length.
MAGIC = b"RN"
PROTOCOL_VERSION = 1
_PREAMBLE = struct.Struct("!2sBI")

#: Default ceiling on one frame's total size (header + arrays).  Large
#: enough for a few thousand coalesced float64 rows, small enough that a
#: corrupted length prefix cannot make either side allocate unbounded
#: memory.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: dtypes allowed on the wire (everything the oracle/measurement path emits).
_WIRE_DTYPES = frozenset(
    {"float64", "float32", "int64", "int32", "uint64", "bool"}
)


def _array_descriptors(arrays: Mapping[str, np.ndarray]):
    """Build the header descriptor list + the contiguous payload chunks."""
    descriptors = []
    chunks = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        dtype = str(array.dtype)
        if dtype not in _WIRE_DTYPES:
            raise ProtocolError(
                f"array {name!r} has non-wire dtype {dtype!r}; "
                f"allowed: {sorted(_WIRE_DTYPES)}"
            )
        descriptors.append(
            {"name": str(name), "dtype": dtype, "shape": list(array.shape)}
        )
        chunks.append(array.tobytes())
    return descriptors, chunks


def encode_frame(
    header: Dict[str, Any],
    arrays: Optional[Mapping[str, np.ndarray]] = None,
) -> bytes:
    """Serialise one frame (header dict + named ndarray payloads)."""
    header = dict(header)
    descriptors, chunks = _array_descriptors(arrays or {})
    header["arrays"] = descriptors
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [_PREAMBLE.pack(MAGIC, PROTOCOL_VERSION, len(header_bytes)), header_bytes]
        + chunks
    )


def _decode_header(raw: bytes) -> Dict[str, Any]:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame header is not valid JSON: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    return header


def _payload_length(descriptors, max_frame_bytes: int) -> Tuple[list, int]:
    """Validate the descriptor list and return its total payload byte count."""
    if not isinstance(descriptors, list):
        raise ProtocolError("frame 'arrays' entry must be a list")
    total = 0
    parsed = []
    for descriptor in descriptors:
        try:
            name = descriptor["name"]
            dtype = str(descriptor["dtype"])
            shape = tuple(int(n) for n in descriptor["shape"])
        except (TypeError, KeyError, ValueError) as exc:
            raise ProtocolError(f"malformed array descriptor {descriptor!r}: {exc}") from None
        if dtype not in _WIRE_DTYPES:
            raise ProtocolError(f"array {name!r} has non-wire dtype {dtype!r}")
        if any(n < 0 for n in shape):
            raise ProtocolError(f"array {name!r} has negative shape {shape}")
        # Python-int arithmetic: an adversarial shape like [2**32, 2**32]
        # must hit this bound, not wrap to a tiny nbytes and blow up later
        # in reshape (outside the ProtocolError handling).
        nbytes = np.dtype(dtype).itemsize * math.prod(shape)
        total += nbytes
        if total > max_frame_bytes:
            raise ProtocolError(
                f"frame payload exceeds max_frame_bytes={max_frame_bytes}"
            )
        parsed.append((name, dtype, shape, nbytes))
    return parsed, total


def _assemble(header: Dict[str, Any], parsed, payload: bytes):
    arrays: Dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype, shape, nbytes in parsed:
        segment = payload[offset : offset + nbytes]
        # .copy() yields an owned, writable array: request inputs flow into
        # the oracle path, responses outlive the receive buffer.
        arrays[name] = np.frombuffer(segment, dtype=dtype).reshape(shape).copy()
        offset += nbytes
    header.pop("arrays", None)
    return header, arrays


def _check_preamble(raw: bytes, max_frame_bytes: int) -> int:
    magic, version, header_len = _PREAMBLE.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (this build speaks "
            f"{PROTOCOL_VERSION})"
        )
    if header_len > max_frame_bytes:
        raise ProtocolError(
            f"frame header length {header_len} exceeds "
            f"max_frame_bytes={max_frame_bytes}"
        )
    return header_len


# ------------------------------------------------------------ asyncio codec


async def read_frame(
    reader, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
):
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``(header, arrays)``.  Raises :class:`ConnectionLostError` on a
    clean EOF *between* frames is left to the caller: an EOF before any
    preamble byte raises ``asyncio.IncompleteReadError`` with zero partial
    bytes, which the caller treats as a normal disconnect.
    """
    raw = await reader.readexactly(_PREAMBLE.size)
    header_len = _check_preamble(raw, max_frame_bytes)
    header = _decode_header(await reader.readexactly(header_len))
    parsed, total = _payload_length(header.get("arrays", []), max_frame_bytes)
    payload = await reader.readexactly(total) if total else b""
    return _assemble(header, parsed, payload)


def write_frame(writer, header, arrays=None) -> None:
    """Queue one frame on an :class:`asyncio.StreamWriter` (callers drain)."""
    writer.write(encode_frame(header, arrays))


# ----------------------------------------------------------- blocking codec


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket or raise."""
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            if isinstance(exc, socket.timeout):
                raise
            raise ConnectionLostError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            raise ConnectionLostError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame_sync(
    sock: socket.socket,
    header: Dict[str, Any],
    arrays: Optional[Mapping[str, np.ndarray]] = None,
) -> None:
    """Send one frame over a blocking socket."""
    try:
        sock.sendall(encode_frame(header, arrays))
    except socket.timeout:
        raise
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        raise ConnectionLostError(f"connection lost while sending: {exc}") from exc


def read_frame_sync(
    sock: socket.socket, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
):
    """Read one frame from a blocking socket; returns ``(header, arrays)``."""
    raw = _recv_exactly(sock, _PREAMBLE.size)
    header_len = _check_preamble(raw, max_frame_bytes)
    header = _decode_header(_recv_exactly(sock, header_len))
    parsed, total = _payload_length(header.get("arrays", []), max_frame_bytes)
    payload = _recv_exactly(sock, total) if total else b""
    return _assemble(header, parsed, payload)
