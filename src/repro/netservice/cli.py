"""Command-line front end for the networked query service.

Serve a scenario-built victim accelerator to networked clients, or run a
self-contained multi-tenant demo::

    python -m repro.netservice serve --scenario paper/mnist-softmax --port 7707
    python -m repro.netservice serve --preset net-two-tenant
    python -m repro.netservice demo
    python -m repro.netservice --list-presets

``serve`` blocks until interrupted; ``demo`` starts a server on an
ephemeral port, drives it with two weighted tenants from this process, and
prints the per-tenant fairness/coalescing statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _build_oracle(scenario: str, random_state: int):
    """A small scenario-built victim oracle (the demo/serve target)."""
    from repro.attacks.oracle import Oracle
    from repro.experiments.scenario import get_scenario
    from repro.nn.layers import Dense
    from repro.nn.network import Sequential

    network = Sequential(
        [Dense(16, 5, activation="softmax", random_state=random_state)]
    )
    accelerator = get_scenario(scenario).build_accelerator(
        network, random_state=random_state
    )
    return Oracle(
        accelerator,
        expose_power=True,
        power_noise_std=0.03,
        random_state=random_state,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netservice",
        description="Serve one simulated accelerator to many networked tenants.",
    )
    parser.add_argument(
        "command",
        nargs="?",
        choices=("serve", "demo"),
        help="'serve' blocks on a TCP port; 'demo' runs a two-tenant tour",
    )
    parser.add_argument(
        "--preset",
        default="net-paper",
        help="netservice preset (see --list-presets; default: net-paper)",
    )
    parser.add_argument(
        "--scenario",
        default="paper/mnist-softmax",
        help="scenario preset the victim accelerator is built from "
        "(default: paper/mnist-softmax)",
    )
    parser.add_argument("--host", default=None, help="listen address (default: 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen port (default: ephemeral; the bound port is printed)",
    )
    parser.add_argument(
        "--random-state", type=int, default=0, help="victim build seed (default: 0)"
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=64,
        help="demo: requests per tenant (default: 64)",
    )
    parser.add_argument(
        "--list-presets", action="store_true", help="list netservice presets and exit"
    )
    return parser


def _serve(args) -> int:
    import asyncio

    from repro.netservice.config import get_netservice_preset
    from repro.netservice.server import NetworkQueryService

    config = get_netservice_preset(args.preset)
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    oracle = _build_oracle(args.scenario, args.random_state)

    async def run():
        async with NetworkQueryService(oracle, config) as server:
            host, port = server.address
            print(f"serving scenario {args.scenario!r} on {host}:{port} "
                  f"(preset {args.preset!r}); Ctrl-C to drain and stop")
            try:
                await asyncio.Event().wait()
            except asyncio.CancelledError:
                pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\ndrained and stopped")
    return 0


def _demo(args) -> int:
    from repro.netservice.client import NetClient
    from repro.netservice.config import get_netservice_preset
    from repro.netservice.server import serve_in_thread

    config = get_netservice_preset("net-two-tenant")
    oracle = _build_oracle(args.scenario, args.random_state)
    rng = np.random.default_rng(args.random_state)
    with serve_in_thread(oracle, config) as handle:
        host, port = handle.address
        print(f"demo server on {host}:{port} (tenants: alice w=1, bob w=3)")
        with NetClient(handle.address, tenant="alice") as alice, NetClient(
            handle.address, tenant="bob"
        ) as bob:
            for _ in range(args.queries):
                batch = rng.uniform(0.0, 1.0, size=(2, 16))
                alice.query(batch)
                bob.query(batch)
            stats = alice.stats()
        print("\nper-tenant stats:")
        for tenant, counters in sorted(stats["tenants"].items()):
            print(
                f"  {tenant:8s} weight={counters['weight']:<4g} "
                f"rows_served={counters['rows_served']:<6d} "
                f"coalescing_factor={counters['coalescing_factor']:.2f}"
            )
        service = stats["service"]
        print(
            f"\nservice: {service['n_requests']} requests fused into "
            f"{service['n_ticks']} traversals "
            f"(coalescing factor {service['coalescing_factor']:.2f})"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_presets:
        from repro.experiments.config import NETSERVICE_PRESET_CONFIGS

        for name, (max_batch, max_wait_ms, tenants) in sorted(
            NETSERVICE_PRESET_CONFIGS.items()
        ):
            described = (
                ", ".join(
                    f"{tenant}(w={weight:g}"
                    + (f", budget={budget}" if budget is not None else "")
                    + ")"
                    for tenant, weight, budget in tenants
                )
                or "single-tenant default"
            )
            print(
                f"{name:16s} max_batch={max_batch:<4d} "
                f"max_wait_ms={max_wait_ms:<4g} tenants: {described}"
            )
        return 0
    if args.command == "serve":
        return _serve(args)
    if args.command == "demo":
        return _demo(args)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
