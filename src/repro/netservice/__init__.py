"""Networked multi-tenant front-end over the coalescing query service.

One :class:`~repro.netservice.server.NetworkQueryService` puts a single
simulated accelerator behind TCP so many client *processes* — tenants —
share its fused traversals, with weighted-fair scheduling, per-tenant query
budgets, and bit-identical responses (each reply carries the seed-derivation
handle needed to replay it against a direct backend query).
:class:`~repro.netservice.client.NetClient` is the blocking client with
idempotent retries.  Pure stdlib: asyncio streams server-side, blocking
sockets client-side, one length-prefixed JSON+binary frame layout
(:mod:`repro.netservice.protocol`) between them.

Run ``python -m repro.netservice demo`` for an end-to-end tour.
"""

from repro.netservice.client import NetClient
from repro.netservice.config import NetServiceConfig, TenantConfig, get_netservice_preset
from repro.netservice.errors import (
    ConnectionLostError,
    NetServiceError,
    ProtocolError,
    QueryBudgetExceeded,
    RemoteServiceError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceUnavailableError,
)
from repro.netservice.server import (
    NetworkQueryService,
    ServerHandle,
    TenantServiceStats,
    serve_in_thread,
)

__all__ = [
    "ConnectionLostError",
    "NetClient",
    "NetServiceConfig",
    "NetServiceError",
    "NetworkQueryService",
    "ProtocolError",
    "QueryBudgetExceeded",
    "RemoteServiceError",
    "RequestTimeoutError",
    "ServerHandle",
    "ServiceClosedError",
    "ServiceUnavailableError",
    "TenantConfig",
    "TenantServiceStats",
    "get_netservice_preset",
    "serve_in_thread",
]
