"""Error taxonomy of the networked query service.

Every failure a :class:`~repro.netservice.client.NetClient` can surface is
classified as **retryable** (a transient transport condition: reconnect,
back off, resend the same idempotency key) or **terminal** (retrying the
identical request can never succeed).  The client's retry loop keys off the
``retryable`` class attribute, so new error types slot into the policy
without touching the loop.

Retryable
    :class:`ConnectionLostError`, :class:`RequestTimeoutError`,
    :class:`ServiceUnavailableError` (the server answered, but is draining
    for shutdown/restart).

Terminal
    :class:`ProtocolError` (malformed/oversized frames — a software bug or a
    version mismatch), :class:`RemoteServiceError` (the server-side traversal
    raised; carries the remote exception type),
    :class:`~repro.sidechannel.measurement.QueryBudgetExceeded` (the
    tenant's query budget is spent — re-raised as the same type the direct
    path raises, so attack code handles both identically), and
    :class:`~repro.service.errors.ServiceClosedError` (the *local* handle
    was closed — shared with the in-process facades).
"""

from __future__ import annotations

from repro.service.errors import ServiceClosedError  # noqa: F401  (re-export)
from repro.sidechannel.measurement import QueryBudgetExceeded  # noqa: F401


class NetServiceError(Exception):
    """Base class of all networked-service errors.

    ``retryable`` states whether resending the same request (same
    idempotency key) over a fresh connection can succeed.
    """

    retryable = False


class ProtocolError(NetServiceError):
    """A malformed, unexpected, or oversized frame. Terminal."""


class RemoteServiceError(NetServiceError):
    """The server-side traversal failed; carries the remote exception type.

    Terminal: the same request replays into the same deterministic failure
    (bad input width, an incompatible observable, ...).
    """

    def __init__(self, message: str, *, remote_type: str = "Exception"):
        super().__init__(message)
        self.remote_type = remote_type


class ConnectionLostError(NetServiceError, ConnectionError):
    """The transport dropped before a response arrived. Retryable."""

    retryable = True


class RequestTimeoutError(NetServiceError, TimeoutError):
    """No response within the configured request timeout. Retryable."""

    retryable = True


class ServiceUnavailableError(NetServiceError):
    """The server is draining for shutdown/restart. Retryable.

    The request was *not* charged; a retry against the restarted server (or
    a replica) is safe and is what the client's backoff loop does.
    """

    retryable = True
