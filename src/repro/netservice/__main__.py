"""``python -m repro.netservice`` — serve or demo the networked service."""

import sys

from repro.netservice.cli import main

if __name__ == "__main__":
    sys.exit(main())
