"""The networked multi-tenant front-end over the coalescing query service.

:class:`NetworkQueryService` listens on TCP and feeds request frames from
many independent client processes into one in-process
:class:`~repro.service.coalescer.QueryService`, so every connected tenant
shares the same simulated accelerator — and the same fused traversals.

The pipeline, per request frame::

    read_frame -> admission (tenant lookup, idempotency dedup)
               -> per-tenant FIFO queue
               -> weighted-fair scheduler (budget charge)
               -> QueryService.submit_traced  (coalesced into shared ticks)
               -> response frame (request_id + base_seed for bit-exact replay)

Design points, each carrying one acceptance criterion:

* **Bit-identity over the wire** — the embedded ``QueryService`` derives
  per-request seeds exactly as in-process; responses carry the assigned
  ``request_id`` and the service ``base_seed``, so any client (or test) can
  replay ``oracle.query(inputs, seeds=derive_request_seeds(base_seed,
  request_id, n_rows))`` and compare bit for bit.
* **Fairness** — a virtual-time weighted-fair scheduler dequeues across
  per-tenant FIFOs: tenant ``t``'s virtual time advances by
  ``rows / weight_t`` per dispatched request and the scheduler always picks
  the smallest virtual time, so under saturation rows served converge to
  the weight ratio (``scheduler_window=1`` makes the order strict, which is
  what the fairness tests pin down).
* **Budgets + idempotency** — per-tenant ``query_budget`` is charged at
  dispatch and refunded on failure; completed responses are cached per
  idempotency key, so a client retry after a lost response is answered from
  cache and never charged twice.
* **Backpressure** — at most ``max_inflight_per_connection`` pipelined
  frames are admitted per connection; beyond that the server simply stops
  reading the socket and the kernel buffers push back to the client.
* **Graceful drain** — ``stop()`` stops accepting, fails every queued
  request with a typed ``service-closed`` error (never a hang), lets
  in-flight ticks finish, and only then closes transports.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

import numpy as np

from repro.netservice.config import NetServiceConfig, TenantConfig
from repro.netservice.errors import (
    ProtocolError,
    QueryBudgetExceeded,
    ServiceClosedError,
    ServiceUnavailableError,
)
from repro.netservice.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
)
from repro.service.coalescer import QueryService

#: Tenant name used when a request frame does not carry one.
DEFAULT_TENANT = "default"

#: Completed responses remembered per tenant for idempotent retries.
_IDEMPOTENCY_CACHE_SIZE = 1024


@dataclass
class TenantServiceStats:
    """Per-tenant service counters (the cross-tenant experiment's hook).

    ``coalescing_factor`` is the tenant's requests amortised per *distinct*
    fused tick the tenant participated in — batch-mates from other tenants
    shared those traversals, which is exactly the co-residency the
    cross-tenant leakage study needs to measure.
    """

    tenant: str
    weight: float
    query_budget: Optional[int] = None
    n_received: int = 0
    n_requests: int = 0
    n_deduped: int = 0
    rows_served: int = 0
    rows_charged: int = 0
    tick_ids: Set[int] = field(default_factory=set)

    @property
    def n_ticks(self) -> int:
        return len(self.tick_ids)

    @property
    def coalescing_factor(self) -> float:
        """Requests amortised per distinct fused tick the tenant joined.

        Only *dispatched* requests count: idempotency dedup hits
        (``n_deduped``) are answered from cache or an in-flight future and
        never join a tick, so including them would inflate the factor
        exactly when clients retry.  A tenant that has received requests
        but has no successful tick yet (every dispatch failed, or all are
        still queued) reports ``nan`` — "no traversal to amortise over" —
        rather than a misleading ``0.0``.
        """
        if self.n_ticks:
            return self.n_requests / self.n_ticks
        if self.n_received:
            return float("nan")
        return 0.0

    @property
    def budget_remaining(self) -> Optional[int]:
        if self.query_budget is None:
            return None
        return max(0, self.query_budget - self.rows_charged)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "weight": self.weight,
            "query_budget": self.query_budget,
            "n_received": self.n_received,
            "n_requests": self.n_requests,
            "n_deduped": self.n_deduped,
            "rows_served": self.rows_served,
            "rows_charged": self.rows_charged,
            "n_ticks": self.n_ticks,
            "coalescing_factor": self.coalescing_factor,
            "budget_remaining": self.budget_remaining,
        }


@dataclass(repr=False)
class _QueuedRequest:
    """One admitted query waiting for the weighted-fair scheduler."""

    key: str
    inputs: np.ndarray
    rows: int
    future: asyncio.Future

    def __repr__(self) -> str:  # keep shutdown repr cheap, as in _Pending
        return f"_QueuedRequest(key={self.key!r}, rows={self.rows})"


class _TenantState:
    """Scheduler-side state of one tenant."""

    def __init__(self, policy: TenantConfig):
        self.policy = policy
        self.stats = TenantServiceStats(
            tenant=policy.name,
            weight=policy.weight,
            query_budget=policy.query_budget,
        )
        self.queue: deque = deque()
        self.vtime = 0.0
        #: idempotency key -> completed (header, arrays) response
        self.completed: "OrderedDict[str, Tuple[dict, dict]]" = OrderedDict()
        #: idempotency key -> future of the in-flight request
        self.inflight: Dict[str, asyncio.Future] = {}

    def remember(self, key: str, response: Tuple[dict, dict]) -> None:
        self.completed[key] = response
        while len(self.completed) > _IDEMPOTENCY_CACHE_SIZE:
            self.completed.popitem(last=False)


class _Connection:
    """Per-connection plumbing: serialised writes, bounded pipelining."""

    def __init__(self, writer: asyncio.StreamWriter, max_inflight: int):
        self.writer = writer
        self.inflight = asyncio.Semaphore(max_inflight)
        self.write_lock = asyncio.Lock()


def _json_safe_metadata(metadata: dict) -> dict:
    """The JSON-encodable subset of an OracleResponse's metadata."""
    safe: Dict[str, Any] = {}
    for key, value in metadata.items():
        if isinstance(value, tuple):
            value = list(value)
        if isinstance(value, (str, int, float, bool, list, type(None))):
            safe[key] = value
    return safe


class NetworkQueryService:
    """TCP front-end serving one oracle/measurement to many client processes.

    Parameters
    ----------
    target:
        An :class:`~repro.attacks.oracle.Oracle`, a
        :class:`~repro.sidechannel.measurement.PowerMeasurement`, or a
        pre-built service backend adapter — whatever
        :class:`~repro.service.coalescer.QueryService` accepts.
    config:
        The :class:`~repro.netservice.config.NetServiceConfig` policy.

    Usage::

        async with NetworkQueryService(oracle, config) as server:
            print("serving on", server.address)
            await server.wait_stopped()   # or do other work

    Synchronous callers (tests, benchmarks, the CLI demo) should use
    :func:`serve_in_thread` instead.
    """

    def __init__(self, target, config: Optional[NetServiceConfig] = None):
        self.config = config if config is not None else NetServiceConfig()
        self.service = QueryService(target, self.config.service)
        self._tenants: Dict[str, _TenantState] = {}
        for tenant in self.config.tenants:
            self._tenants[tenant.name] = _TenantState(tenant)
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._work = asyncio.Event()
        self._sched_gate = asyncio.Event()
        self._sched_gate.set()
        self._window: Optional[asyncio.Semaphore] = None
        self._vclock = 0.0
        self._closing = False
        self._started = False
        self._connections: Set[_Connection] = set()
        self._dispatch_tasks: Set[asyncio.Task] = set()
        self._serve_tasks: Set[asyncio.Task] = set()
        self._stopped_event = asyncio.Event()
        #: Recent (tenant, rows) dispatch order — what the fairness tests
        #: and the demo inspect.
        self.dispatch_log: deque = deque(maxlen=4096)
        #: Fault-injection hook: abort the connection instead of writing the
        #: next N successful query responses (simulates a response lost to a
        #: network failure *after* the work was done — the idempotent-retry
        #: path's worst case).
        self.drop_next_responses = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def started(self) -> bool:
        return self._started

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> "NetworkQueryService":
        """Bind the listen socket and start the scheduler (idempotent)."""
        if self._started:
            return self
        self._closing = False
        self._stopped_event.clear()
        await self.service.start()
        self._window = asyncio.Semaphore(self.config.scheduler_window)
        self._scheduler_task = asyncio.get_running_loop().create_task(
            self._scheduler()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started = True
        return self

    async def stop(self) -> None:
        """Graceful drain: typed errors for queued work, never a hang."""
        if not self._started:
            return
        self._closing = True
        self._server.close()
        # Scheduler first, so nothing new enters the coalescer mid-drain.
        self._scheduler_task.cancel()
        try:
            await self._scheduler_task
        except asyncio.CancelledError:
            pass
        # Everything still queued gets the typed drain error.
        drain_error = ServiceUnavailableError(
            "server is draining for shutdown; the request was not charged — "
            "retry against the restarted service"
        )
        for state in self._tenants.values():
            while state.queue:
                request = state.queue.popleft()
                state.inflight.pop(request.key, None)
                if not request.future.done():
                    request.future.set_exception(drain_error)
        # In-flight ticks finish (the coalescer never strands a tick) ...
        await self.service.stop()
        if self._dispatch_tasks:
            await asyncio.gather(*self._dispatch_tasks, return_exceptions=True)
        # ... and their responses (plus the drain errors) flush out before
        # the transports close.
        if self._serve_tasks:
            await asyncio.gather(*self._serve_tasks, return_exceptions=True)
        # Transports close *before* wait_closed(): on 3.12+ wait_closed()
        # blocks until every connection handler returns, and the handlers
        # are blocked in read_frame() until their transport dies.
        for conn in list(self._connections):
            conn.writer.close()
        await self._server.wait_closed()
        self._started = False
        self._stopped_event.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` completes (for serve-forever callers)."""
        await self._stopped_event.wait()

    async def __aenter__(self) -> "NetworkQueryService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------- tenancy + stats

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(self.config.tenant_policy(name))
            # Late joiners start at the current virtual clock so an idle
            # tenant cannot bank unbounded credit against active ones.
            state.vtime = self._vclock
            self._tenants[name] = state
        return state

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant counters, keyed by tenant name."""
        return {
            name: state.stats.to_dict() for name, state in self._tenants.items()
        }

    def pause_scheduling(self) -> None:
        """Hold the scheduler (admitted requests queue up; used by tests)."""
        self._sched_gate.clear()

    def resume_scheduling(self) -> None:
        self._sched_gate.set()

    # ------------------------------------------------------------ scheduler

    def _next_tenant(self) -> Optional[_TenantState]:
        backlogged = [
            state for state in self._tenants.values() if state.queue
        ]
        if not backlogged:
            return None
        return min(backlogged, key=lambda state: (state.vtime, state.policy.name))

    async def _scheduler(self) -> None:
        while True:
            await self._work.wait()
            await self._sched_gate.wait()
            if self._next_tenant() is None:
                self._work.clear()
                continue
            # Window bound: limits how far dispatch runs ahead of completion
            # (window=1 degenerates to strict weighted-fair order).  Acquired
            # *before* any request is popped: if stop() cancels the scheduler
            # while it blocks here, every request is still in its tenant
            # queue and gets the typed drain error — nothing is stranded.
            await self._window.acquire()
            state = self._next_tenant()
            if state is None:  # drained while waiting on the window
                self._window.release()
                self._work.clear()
                continue
            request = state.queue.popleft()
            if request.future.done():  # already failed/abandoned
                state.inflight.pop(request.key, None)
                self._window.release()
                continue
            self._vclock = max(self._vclock, state.vtime)
            state.vtime += request.rows / state.policy.weight
            self.dispatch_log.append((state.policy.name, request.rows))
            task = asyncio.get_running_loop().create_task(
                self._dispatch(state, request)
            )
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch(self, state: _TenantState, request: _QueuedRequest) -> None:
        charged = False
        try:
            if self._closing:
                raise ServiceUnavailableError(
                    "server is draining for shutdown; the request was not "
                    "charged — retry against the restarted service"
                )
            budget = state.policy.query_budget
            if budget is not None and state.stats.rows_charged + request.rows > budget:
                raise QueryBudgetExceeded(
                    f"tenant {state.policy.name!r}: request of {request.rows} "
                    f"rows would exceed the query budget of {budget} "
                    f"(already charged {state.stats.rows_charged})"
                )
            state.stats.rows_charged += request.rows
            charged = True
            # The tenant identity rides into the coalescer with the request,
            # so the tick-placement policy and the rail ledger see *who*
            # submitted every row — not just that some row arrived.
            request_id, result = await self.service.submit_traced(
                request.inputs,
                on_dispatch=state.stats.tick_ids.add,
                tenant=state.policy.name,
            )
            state.stats.n_requests += 1
            state.stats.rows_served += request.rows
            response = self._encode_result(request_id, result)
            state.remember(request.key, response)
            state.inflight.pop(request.key, None)
            if not request.future.done():
                request.future.set_result(response)
        except Exception as exc:
            # Failed work charges nothing (shared-bus semantics end to end).
            if charged:
                state.stats.rows_charged -= request.rows
            state.inflight.pop(request.key, None)
            if not request.future.done():
                request.future.set_exception(exc)
        finally:
            self._window.release()

    # ------------------------------------------------------------- requests

    def _encode_result(self, request_id: int, result) -> Tuple[dict, dict]:
        header: Dict[str, Any] = {
            "type": "response",
            "status": "ok",
            "kind": self.service.backend.kind,
            "request_id": int(request_id),
            "base_seed": int(self.config.service.base_seed),
        }
        arrays: Dict[str, np.ndarray] = {}
        if self.service.backend.kind == "oracle":
            header["output_mode"] = result.output_mode
            header["metadata"] = _json_safe_metadata(result.metadata)
            arrays["outputs"] = result.outputs
            arrays["labels"] = np.asarray(result.labels, dtype=np.int64)
            if result.power is not None:
                arrays["power"] = result.power
            if result.per_tile_power is not None:
                arrays["per_tile_power"] = result.per_tile_power
        else:
            arrays["readings"] = np.atleast_1d(np.asarray(result, dtype=float))
        return header, arrays

    async def _handle_query(self, header: dict, arrays: dict) -> Tuple[dict, dict]:
        if self._closing:
            raise ServiceUnavailableError(
                "server is draining for shutdown; retry against the "
                "restarted service"
            )
        tenant_name = header.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant_name, str) or not tenant_name:
            raise ProtocolError(f"invalid tenant {tenant_name!r}")
        key = header.get("key")
        if not isinstance(key, str) or not key:
            raise ProtocolError(
                "query frames must carry a string idempotency 'key'"
            )
        inputs = arrays.get("inputs")
        if inputs is None:
            raise ProtocolError("query frames must carry an 'inputs' array")
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.size == 0:
            raise ProtocolError("cannot serve an empty query")

        state = self._tenant(tenant_name)
        cached = state.completed.get(key)
        if cached is not None:
            # A retried request the server already served: answer from the
            # idempotency cache — the tenant is never charged twice.
            state.stats.n_deduped += 1
            return cached
        pending = state.inflight.get(key)
        if pending is None:
            state.stats.n_received += 1
            pending = asyncio.get_running_loop().create_future()
            state.inflight[key] = pending
            state.queue.append(
                _QueuedRequest(
                    key=key, inputs=inputs, rows=len(inputs), future=pending
                )
            )
            self._work.set()
        else:
            state.stats.n_deduped += 1
        return await asyncio.shield(pending)

    def _hello_header(self) -> dict:
        header: Dict[str, Any] = {
            "type": "response",
            "status": "ok",
            "server": "repro.netservice",
            "protocol": PROTOCOL_VERSION,
            "kind": self.service.backend.kind,
            "base_seed": int(self.config.service.base_seed),
        }
        if self.service.backend.kind == "oracle":
            oracle = self.service.backend.oracle
            header["output_mode"] = oracle.output_mode
            header["n_outputs"] = int(oracle.n_outputs)
        return header

    @staticmethod
    def _error_header(exc: BaseException) -> dict:
        if isinstance(exc, QueryBudgetExceeded):
            code = "budget-exceeded"
        elif isinstance(exc, (ServiceUnavailableError, ServiceClosedError)):
            code = "service-closed"
        elif isinstance(exc, ProtocolError):
            code = "protocol"
        else:
            code = "remote-error"
        return {
            "type": "response",
            "status": "error",
            "code": code,
            "error_type": type(exc).__name__,
            "message": str(exc),
        }

    # ---------------------------------------------------------- connections

    async def _send(self, conn: _Connection, header: dict, arrays) -> None:
        try:
            frame = encode_frame(header, arrays)
        except Exception as exc:
            # A response we cannot serialise (non-wire dtype, JSON-hostile
            # metadata): the client must still get *an* answer, or it burns
            # its whole retry budget re-hitting the same cached response.
            fallback = self._error_header(exc)
            fallback["code"] = "remote-error"
            if "cid" in header:
                fallback["cid"] = header["cid"]
            frame = encode_frame(fallback, None)
        async with conn.write_lock:
            try:
                conn.writer.write(frame)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                pass  # the client vanished; its retry will re-ask

    async def _serve_frame(self, conn: _Connection, header: dict, arrays: dict) -> None:
        try:
            try:
                request_type = header.get("type")
                if request_type == "query":
                    response_header, response_arrays = await self._handle_query(
                        header, arrays
                    )
                    # cached responses are shared: never mutate them in place
                    response_header = dict(response_header)
                elif request_type == "hello":
                    response_header, response_arrays = self._hello_header(), None
                elif request_type == "ping":
                    response_header, response_arrays = (
                        {"type": "response", "status": "ok"},
                        None,
                    )
                elif request_type == "stats":
                    response_header, response_arrays = (
                        {
                            "type": "response",
                            "status": "ok",
                            "tenants": self.stats(),
                            "service": self.service.stats.to_dict(),
                        },
                        None,
                    )
                else:
                    raise ProtocolError(f"unknown request type {request_type!r}")
            except Exception as exc:
                response_header, response_arrays = self._error_header(exc), None
            if "cid" in header:
                response_header["cid"] = header["cid"]
            if (
                self.drop_next_responses > 0
                and header.get("type") == "query"
                and response_header.get("status") == "ok"
            ):
                # Fault injection: the work happened, the response is lost.
                self.drop_next_responses -= 1
                conn.writer.transport.abort()
                return
            await self._send(conn, response_header, response_arrays)
        finally:
            conn.inflight.release()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer, self.config.max_inflight_per_connection)
        self._connections.add(conn)
        try:
            while True:
                try:
                    header, arrays = await read_frame(
                        reader, max_frame_bytes=self.config.max_frame_bytes
                    )
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # client went away (or we are closing transports)
                except ProtocolError as exc:
                    # A corrupted stream cannot be resynchronised: report
                    # once, then drop the connection.
                    await self._send(conn, self._error_header(exc), None)
                    break
                # Backpressure: stop reading while the pipeline is full.
                await conn.inflight.acquire()
                task = asyncio.get_running_loop().create_task(
                    self._serve_frame(conn, header, arrays)
                )
                self._serve_tasks.add(task)
                task.add_done_callback(self._serve_tasks.discard)
        finally:
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# --------------------------------------------------------------- sync shim


class ServerHandle:
    """A running :class:`NetworkQueryService` on a private event-loop thread.

    The synchronous analogue of the PR 5 facades, for tests, benchmarks and
    the CLI demo: ``address`` is connectable immediately, ``close()`` drains
    gracefully.  All interaction with the server object hops through its
    loop, so cross-thread use is safe.
    """

    def __init__(self, target, config: Optional[NetServiceConfig] = None):
        import threading

        self.loop = asyncio.new_event_loop()
        self.server = NetworkQueryService(target, config)
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="repro-netservice", daemon=True
        )
        self._thread.start()
        self._closed = False
        self._call(self.server.start())

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def stats(self) -> Dict[str, Dict[str, Any]]:
        async def snapshot():
            return self.server.stats()

        return self._call(snapshot())

    def service_stats(self) -> Dict[str, Any]:
        async def snapshot():
            return self.server.service.stats.to_dict()

        return self._call(snapshot())

    def pause_scheduling(self) -> None:
        self.loop.call_soon_threadsafe(self.server.pause_scheduling)

    def resume_scheduling(self) -> None:
        self.loop.call_soon_threadsafe(self.server.resume_scheduling)

    def drop_responses(self, n: int) -> None:
        """Arm the lost-response fault injection for the next ``n`` queries."""

        def arm():
            self.server.drop_next_responses += n

        self.loop.call_soon_threadsafe(arm)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._thread.is_alive():
            return
        self._call(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join()
        self.loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_in_thread(
    target, config: Optional[NetServiceConfig] = None
) -> ServerHandle:
    """Start a :class:`NetworkQueryService` on a background thread."""
    return ServerHandle(target, config)
