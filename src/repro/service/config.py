"""Configuration for the async coalescing query service.

:class:`ServiceConfig` is a frozen, picklable, JSON-round-trippable value
object — the same design as :class:`~repro.experiments.scenario.ScenarioSpec`
— so it can ride inside scenario presets and experiment jobs unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping

from repro.utils.validation import check_non_negative, check_positive_int

#: Tick-placement policies understood by the coalescer.
#:
#: * ``"shared"`` — status quo: requests coalesce in arrival order,
#:   regardless of which tenant submitted them (batch-mates share rails).
#: * ``"partitioned"`` — never mix tenants in a tick: each dispatch round
#:   groups the drained requests by tenant and dispatches one tick per
#:   tenant, so a fused traversal only ever carries one tenant's rows.  The
#:   ``max_batch`` row budget applies per tenant group, so same-tenant rows
#:   still coalesce into full ticks under interleaved arrivals.
#: * ``"tile-isolated"`` — partitioned placement *plus* per-tenant tile
#:   banks: each single-tenant tick is attributed to the submitting
#:   tenant's physical tile bank, so its rail observables
#:   (:class:`~repro.service.coalescer.TickTrace`) are invisible to
#:   co-resident tenants on other banks.
PLACEMENT_POLICIES = ("shared", "partitioned", "tile-isolated")


@dataclass(frozen=True)
class ServiceConfig:
    """Batching policy of one :class:`~repro.service.coalescer.QueryService`.

    Attributes
    ----------
    max_batch:
        Row budget per fused traversal: a tick dispatches as soon as the
        coalesced rows reach this count.  A single oversized request still
        runs as one fused call (it is never split).
    max_wait_ms:
        Upper bound on how long a tick holds the first pending request open
        for company before dispatching under-full.  The service dispatches
        *early* whenever a scheduler pass brings no new submissions (the
        offered load is fully coalesced), so this bound is only reached
        under genuinely trickling arrivals — e.g. cross-thread submitters.
        ``0`` dispatches whatever is queued immediately (pure greedy
        coalescing).
    max_pending:
        Bound of the request queue; :meth:`QueryService.submit` applies
        backpressure (awaits) while the queue is full.
    base_seed:
        Root of the per-request noise-seed derivation
        (:func:`~repro.utils.rng.derive_request_seeds`).  Two services with
        the same ``base_seed`` assign identical seeds to identical request
        sequence numbers, which is what the service-vs-direct equivalence
        tests replay.
    placement:
        Tick-placement policy (:data:`PLACEMENT_POLICIES`): whether requests
        from different tenants may share a fused traversal.  Placement
        decides *which rows ride together* — never the physics — so every
        policy preserves the per-request bit-identity contract.
    noise_budget:
        Scale of the per-tick dummy current draw added to the **rail ledger**
        (:attr:`~repro.service.coalescer.QueryService.tick_trace`) — the
        noise-budget isolation defence.  The dummy draw jams what a
        co-resident attacker probing the shared supply rail can learn from a
        tick total; it is keyed on the tick's first row seed, so ledgers are
        reproducible, and it never touches the responses returned to
        tenants (bit-identity is unaffected).  ``0`` records the clean rail.
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0
    max_pending: int = 256
    base_seed: int = 0
    placement: str = "shared"
    noise_budget: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.max_batch, "max_batch")
        check_non_negative(self.max_wait_ms, "max_wait_ms")
        check_positive_int(self.max_pending, "max_pending")
        if not isinstance(self.base_seed, int) or isinstance(self.base_seed, bool):
            raise ValueError(f"base_seed must be an int, got {self.base_seed!r}")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"placement must be one of {PLACEMENT_POLICIES}, "
                f"got {self.placement!r}"
            )
        check_non_negative(self.noise_budget, "noise_budget")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServiceConfig":
        """Reconstruct a :class:`ServiceConfig` written by :meth:`to_dict`.

        Unknown keys are rejected rather than silently dropped — a typo'd
        field in a scenario preset or a hand-edited result file must fail
        loudly, matching :class:`~repro.experiments.scenario.ScenarioSpec`
        strictness.  Missing keys keep their defaults, so older payloads
        stay loadable.
        """
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown ServiceConfig fields {unknown}; expected a subset "
                f"of {sorted(known)}"
            )
        kwargs: Dict[str, Any] = {}
        if "max_batch" in payload:
            kwargs["max_batch"] = int(payload["max_batch"])
        if "max_wait_ms" in payload:
            kwargs["max_wait_ms"] = float(payload["max_wait_ms"])
        if "max_pending" in payload:
            kwargs["max_pending"] = int(payload["max_pending"])
        if "base_seed" in payload:
            kwargs["base_seed"] = int(payload["base_seed"])
        if "placement" in payload:
            kwargs["placement"] = str(payload["placement"])
        if "noise_budget" in payload:
            kwargs["noise_budget"] = float(payload["noise_budget"])
        return cls(**kwargs)
