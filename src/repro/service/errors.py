"""Typed errors shared by the in-process service and the networked front-end.

Kept in their own module so both :mod:`repro.service` (the in-process
coalescing facades) and :mod:`repro.netservice` (the TCP front-end) can raise
the *same* exception types without importing each other's machinery.
"""

from __future__ import annotations


class ServiceClosedError(RuntimeError):
    """A request was issued against a service/facade that has been closed.

    Raised by the synchronous facades (:class:`~repro.service.facade.
    BatchingOracle` / :class:`~repro.service.facade.BatchingMeasurement`)
    when ``query``/``measure`` is called after ``close()``, and by
    :class:`~repro.netservice.client.NetClient` after its ``close()``.  It is
    a *terminal* error: the caller holds a dead handle, and no retry against
    the same handle can succeed.
    """
