"""The asyncio coalescing query service.

:class:`QueryService` sits in front of an :class:`~repro.attacks.oracle.Oracle`
or a :class:`~repro.sidechannel.measurement.PowerMeasurement` and turns many
small concurrent :meth:`~QueryService.submit` calls into few large fused
traversals: pending requests are coalesced per *tick* (up to
``max_batch`` rows, holding the first request at most ``max_wait_ms`` for
company), dispatched as **one** backend call, and the per-request slices of
the fused result are scattered back to the awaiting futures.

Correctness rests on per-request derived RNG streams: every submitted request
receives a sequence number, from which one ``uint64`` seed per input row is
derived (:func:`~repro.utils.rng.derive_request_seeds`) and passed down the
measurement path as ``seeds``.  Each row's noise — conductance read noise,
rail measurement noise, defence draws, instrument noise — is then a pure
function of the row's seed, so a response is **bit-identical** whether the
request ran alone, coalesced with strangers, or bypassed the service entirely
via ``backend(inputs, seeds=service.seeds_for(request_id, n_rows))``.

Error semantics are those of a shared bus: if the fused traversal fails (bad
input width, an exhausted query budget), the whole tick fails and every
coalesced request receives the exception; nothing is charged against the
budget (both backends charge only after a successful traversal).

Multi-tenant placement: requests may carry a *tenant* identity
(:meth:`QueryService.submit_traced`), and the
:attr:`~repro.service.config.ServiceConfig.placement` policy decides whether
rows from different tenants may share a fused traversal.  Each dispatched
tick also appends a :class:`TickTrace` to :attr:`QueryService.tick_trace` —
the *physical* rail observable (total supply current of the whole fused
batch, optionally jammed by the ``noise_budget`` dummy draw) that a
co-resident attacker probing the shared power rail would record.  The ledger
is a side channel by construction: it never feeds back into any response, so
tenant-facing results stay bit-identical under every policy.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.service.config import ServiceConfig
from repro.utils.rng import derive_request_seeds, sample_stream

#: Stream-path domain tag for the rail ledger's dummy-draw (noise-budget)
#: defence.  Distinct from the oracle (2), instrument (3) and averaging (5)
#: domains, so the ledger noise never collides with any response-path draw.
_RAIL_DOMAIN = 7


class OracleBackend:
    """Adapts an :class:`~repro.attacks.oracle.Oracle` to the service protocol."""

    kind = "oracle"

    def __init__(self, oracle):
        self.oracle = oracle

    def run(self, inputs: np.ndarray, seeds: np.ndarray):
        return self.oracle.query(inputs, seeds=seeds)

    def slice(self, fused, lo: int, hi: int):
        """One request's view of the fused :class:`OracleResponse`."""
        from repro.attacks.oracle import OracleResponse

        return OracleResponse(
            queries=fused.queries[lo:hi],
            outputs=fused.outputs[lo:hi],
            labels=fused.labels[lo:hi],
            power=None if fused.power is None else fused.power[lo:hi],
            output_mode=fused.output_mode,
            per_tile_power=(
                None
                if fused.per_tile_power is None
                else fused.per_tile_power[lo:hi]
            ),
            metadata=dict(fused.metadata),
        )

    def rail_currents(self, fused) -> Optional[np.ndarray]:
        """Per-row total currents of the fused traversal (rail observable)."""
        return None if fused.power is None else np.asarray(fused.power, dtype=float)

    def per_tile_currents(self, fused) -> Optional[np.ndarray]:
        """``(B, n_tiles)`` per-rail currents when the oracle exposes them."""
        if fused.per_tile_power is None:
            return None
        return np.asarray(fused.per_tile_power, dtype=float)

    def tile_labels(self, fused) -> Optional[Tuple[str, ...]]:
        labels = fused.metadata.get("tile_labels")
        return None if labels is None else tuple(labels)

    @property
    def queries_used(self) -> int:
        return self.oracle.queries_used


class MeasurementBackend:
    """Adapts a :class:`~repro.sidechannel.measurement.PowerMeasurement`."""

    kind = "measurement"

    def __init__(self, measurement):
        self.measurement = measurement

    def run(self, inputs: np.ndarray, seeds: np.ndarray):
        return np.atleast_1d(self.measurement.measure(inputs, seeds=seeds))

    def slice(self, fused, lo: int, hi: int):
        return fused[lo:hi]

    def rail_currents(self, fused) -> Optional[np.ndarray]:
        """The measured readings *are* the rail currents here."""
        return np.asarray(fused, dtype=float)

    def per_tile_currents(self, fused) -> Optional[np.ndarray]:
        return None

    def tile_labels(self, fused) -> Optional[Tuple[str, ...]]:
        return None

    @property
    def queries_used(self) -> int:
        return self.measurement.queries_used


def resolve_backend(target):
    """Wrap an oracle / measurement in its service backend (pass adapters through)."""
    if hasattr(target, "run") and hasattr(target, "slice"):
        return target
    if hasattr(target, "query"):
        return OracleBackend(target)
    if hasattr(target, "measure"):
        return MeasurementBackend(target)
    raise TypeError(
        f"cannot serve {type(target).__name__}: expected an Oracle-like "
        "(.query), a PowerMeasurement-like (.measure), or a backend adapter "
        "(.run/.slice)"
    )


@dataclass
class ServiceStats:
    """Coalescing effectiveness counters, updated per dispatched tick.

    ``n_dropped_requests`` counts submitted requests whose future was
    already resolved when their tick dispatched (client timeout or
    cancellation): their rows never reach the backend, so without the
    counter a cancelled batch-mate would silently skew every
    fairness/coalescing assertion built on these stats.
    """

    n_requests: int = 0
    n_rows: int = 0
    n_ticks: int = 0
    n_failed_ticks: int = 0
    n_dropped_requests: int = 0
    max_tick_rows: int = 0

    @property
    def mean_tick_rows(self) -> float:
        """Average fused-batch size (rows per traversal)."""
        return self.n_rows / self.n_ticks if self.n_ticks else 0.0

    @property
    def coalescing_factor(self) -> float:
        """Requests amortised per traversal (1.0 = no coalescing happened)."""
        return self.n_requests / self.n_ticks if self.n_ticks else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "n_ticks": self.n_ticks,
            "n_failed_ticks": self.n_failed_ticks,
            "n_dropped_requests": self.n_dropped_requests,
            "max_tick_rows": self.max_tick_rows,
            "mean_tick_rows": self.mean_tick_rows,
            "coalescing_factor": self.coalescing_factor,
        }


@dataclass(frozen=True)
class TickTrace:
    """The physical rail observable of one dispatched tick.

    What a co-resident attacker with a probe on the supply rail records
    while the fused traversal runs: the tick's identity, which tenants'
    rows it carried (and how many), and the aggregate currents.  The trace
    is *not* part of any response — it models the analogue side channel the
    coalescing service creates when strangers share a traversal.

    Attributes
    ----------
    tick_id:
        1-based tick index (the same value ``on_dispatch`` observers see).
    tenants:
        Tenant names with rows in this tick, in batch order (anonymous
        submissions appear as ``None``).
    tenant_rows:
        Rows contributed per tenant, keyed like :attr:`tenants`.
    rows:
        Total fused rows.
    rail_power:
        Tick total supply current — the sum of every batch-mate's per-row
        total current, plus the ``noise_budget`` dummy draw when the
        isolation defence is armed.  ``None`` when the backend exposes no
        power observable.
    per_tile_power:
        ``(n_tiles,)`` summed per-rail currents over the tick's rows (plus
        per-rail dummy draws), when the backend exposes per-tile power.
    tile_labels:
        Physical tile labels for :attr:`per_tile_power` columns.
    bank:
        Physical tile bank the tick ran on.  ``None`` = the shared bank
        (every co-resident tenant's probe sees the tick); a tenant name
        under ``tile-isolated`` placement, where each tenant's ticks run on
        its own bank with an electrically disjoint supply rail.
    """

    tick_id: int
    tenants: Tuple[Optional[str], ...]
    tenant_rows: Dict[Optional[str], int]
    rows: int
    rail_power: Optional[float]
    per_tile_power: Optional[np.ndarray] = None
    tile_labels: Optional[Tuple[str, ...]] = None
    bank: Optional[str] = None

    def visible_to(self, tenant: Optional[str]) -> bool:
        """Whether ``tenant``'s physical probe can observe this tick's rail."""
        return self.bank is None or self.bank == tenant


@dataclass(repr=False)
class _Pending:
    """One submitted request waiting for its tick."""

    inputs: np.ndarray
    seeds: np.ndarray
    future: asyncio.Future
    #: Optional observer called with the (1-based) tick index the request was
    #: served in — the hook the networked front-end uses for per-tenant
    #: coalescing statistics.  Called only on a successful dispatch.
    on_dispatch: Optional[Any] = None
    #: Tenant identity used by the placement policy and the rail ledger
    #: (``None`` = anonymous in-process submitter).
    tenant: Optional[str] = None

    def __repr__(self) -> str:
        # Deliberately compact: asyncio renders pending items into task/
        # future reprs on shutdown, and stringifying request arrays there
        # is pure overhead.
        return f"_Pending(rows={len(self.inputs)})"


class QueryService:
    """Coalesces concurrent attacker queries into fused backend traversals.

    Parameters
    ----------
    target:
        An :class:`~repro.attacks.oracle.Oracle`, a
        :class:`~repro.sidechannel.measurement.PowerMeasurement`, or a
        pre-built backend adapter.
    config:
        The :class:`~repro.service.config.ServiceConfig` batching policy.

    Usage::

        async with QueryService(oracle) as service:
            responses = await asyncio.gather(
                *(service.submit(x) for x in request_inputs)
            )

    Every ``submit`` resolves to exactly the response the same inputs would
    have produced alone — see the module docstring for why.
    """

    def __init__(self, target, config: Optional[ServiceConfig] = None):
        self.backend = resolve_backend(target)
        self.config = config if config is not None else ServiceConfig()
        self.stats = ServiceStats()
        #: Per-tick physical rail observables (:class:`TickTrace`), in
        #: dispatch order — what a co-resident attacker's rail probe records.
        self.tick_trace: List[TickTrace] = []
        self._queue: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None
        self._request_counter = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def started(self) -> bool:
        """Whether the dispatch worker is running."""
        return self._worker is not None and not self._worker.done()

    async def start(self) -> "QueryService":
        """Spawn the dispatch worker on the running event loop (idempotent)."""
        if not self.started:
            self._queue = asyncio.Queue(maxsize=self.config.max_pending)
            self._worker = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Dispatch any still-queued requests, then cancel the worker.

        After the worker is cancelled, anything that raced into the queue —
        e.g. a facade ``query`` from another thread overlapping ``close()``
        — is dispatched here as final ticks, so no submitted request is ever
        stranded with an unresolved future.
        """
        if self._worker is None:
            return
        while self._queue is not None and not self._queue.empty():
            await asyncio.sleep(0)
        self._worker.cancel()
        try:
            await self._worker
        except asyncio.CancelledError:
            pass
        self._worker = None
        while self._queue is not None and not self._queue.empty():
            tick = []
            while True:
                try:
                    tick.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._dispatch_batch(tick)

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------- requests

    def seeds_for(self, request_id: int, n_rows: int) -> np.ndarray:
        """The per-row noise seeds request ``request_id`` is served with.

        Exposed so the synchronous reference path —
        ``oracle.query(inputs, seeds=service.seeds_for(i, len(inputs)))`` —
        can reproduce any serviced response bit-for-bit.
        """
        return derive_request_seeds(self.config.base_seed, request_id, n_rows)

    async def submit(self, inputs: np.ndarray):
        """Enqueue one request and await its slice of a fused traversal.

        Returns whatever the backend returns for these rows: an
        :class:`~repro.attacks.oracle.OracleResponse` slice for oracle
        backends, a ``(B,)`` readings array for measurement backends.
        Applies backpressure (awaits) while ``max_pending`` requests are
        already queued.
        """
        _, response = await self.submit_traced(inputs)
        return response

    async def submit_traced(
        self, inputs: np.ndarray, *, on_dispatch=None, tenant: Optional[str] = None
    ):
        """Like :meth:`submit`, returning ``(request_id, response)``.

        The sequence number is what the response's noise seeds were derived
        from (:meth:`seeds_for`), so a caller that needs to *replay* the
        request later — e.g. the networked front-end, whose clients verify
        wire responses against direct seeded queries — must observe it.
        ``on_dispatch``, when given, is called with the 1-based index of the
        tick that served the request (successful dispatches only).
        ``tenant`` names the submitting tenant for the placement policy and
        the rail ledger; it never affects the response itself (seeds depend
        only on the sequence number, so tenancy preserves bit-identity).
        """
        if not self.started:
            await self.start()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if len(inputs) == 0:
            raise ValueError("cannot submit an empty request")
        request_id = self._request_counter
        self._request_counter += 1
        seeds = self.seeds_for(request_id, len(inputs))
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Pending(inputs, seeds, future, on_dispatch, tenant))
        return request_id, await future

    # ------------------------------------------------------------- dispatch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        if self.config.placement == "shared":
            while True:
                await self._coalesce_shared(loop)
        while True:
            await self._coalesce_grouped(loop)

    async def _coalesce_shared(self, loop) -> None:
        """One shared-placement round: a single mixed tick of a whole drain."""
        first = await self._queue.get()
        tick = [first]
        rows = len(first.inputs)
        deadline = loop.time() + self.config.max_wait_ms / 1000.0
        try:
            while rows < self.config.max_batch:
                # Greedily drain whatever is already queued.  When the
                # queue runs dry, give the scheduler one pass so every
                # ready submitter can enqueue; if that pass produces
                # nothing new the offered load is fully coalesced —
                # dispatch immediately rather than idling out the
                # deadline (which only bounds genuinely trickling
                # arrivals, e.g. cross-thread submitters).
                try:
                    pending = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    if loop.time() >= deadline:
                        break
                    await asyncio.sleep(0)
                    if self._queue.empty():
                        break
                    continue
                tick.append(pending)
                rows += len(pending.inputs)
        except asyncio.CancelledError:
            # Never strand a held-open tick on shutdown.
            self._dispatch(tick)
            raise
        self._dispatch(tick)

    async def _coalesce_grouped(self, loop) -> None:
        """One tenant-grouped round (``partitioned`` / ``tile-isolated``).

        Rows accumulate into per-tenant groups; the ``max_batch`` budget
        applies *per group*, and a group that fills dispatches immediately
        as its own tick while the other tenants' groups keep coalescing.
        This keeps same-tenant rows riding together under interleaved
        arrivals: a tenant flooding the service cannot force another
        tenant's rows to dispatch in small, fine-grained ticks — its own
        full groups peel off instead.  The drain-round semantics (greedy
        drain, dispatch-early when the offered load is fully coalesced,
        ``max_wait_ms`` bounding trickling arrivals) match the shared path.
        """
        first = await self._queue.get()
        groups: "OrderedDict[Optional[str], List[_Pending]]" = OrderedDict()
        group_rows: Dict[Optional[str], int] = {}

        def absorb(pending: _Pending) -> None:
            key = pending.tenant
            groups.setdefault(key, []).append(pending)
            group_rows[key] = group_rows.get(key, 0) + len(pending.inputs)
            if group_rows[key] >= self.config.max_batch:
                self._dispatch(groups.pop(key))
                del group_rows[key]

        absorb(first)
        deadline = loop.time() + self.config.max_wait_ms / 1000.0
        try:
            while True:
                try:
                    pending = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    if loop.time() >= deadline:
                        break
                    await asyncio.sleep(0)
                    if self._queue.empty():
                        break
                    continue
                absorb(pending)
        except asyncio.CancelledError:
            # Never strand held-open groups on shutdown.
            for group in groups.values():
                self._dispatch(group)
            raise
        for group in groups.values():
            self._dispatch(group)

    def _dispatch_batch(self, batch: List[_Pending]) -> None:
        """Apply the placement policy to one drained round of requests.

        ``shared`` dispatches the round as a single mixed tick (status quo).
        ``partitioned`` / ``tile-isolated`` group the round by tenant —
        first-arrival order, each group a tick of its own — so a fused
        traversal never carries rows from two tenants.  Groups other than
        the one that filled its ``max_batch`` budget may dispatch under-full
        (the same dispatch-early semantics the shared policy applies to a
        whole round).
        """
        if self.config.placement == "shared":
            self._dispatch(batch)
            return
        groups: "OrderedDict[Optional[str], List[_Pending]]" = OrderedDict()
        for pending in batch:
            groups.setdefault(pending.tenant, []).append(pending)
        for group in groups.values():
            self._dispatch(group)

    def _dispatch(self, tick: List[_Pending]) -> None:
        """One fused traversal for the tick; scatter slices to the futures."""
        live = []
        for pending in tick:
            if pending.future.done():
                # Client timeout/cancel raced the dispatch: the rows never
                # reach the backend, and the drop must be visible in the
                # stats (a cancelled batch-mate would otherwise silently
                # skew fairness and coalescing metrics).
                self.stats.n_dropped_requests += 1
            else:
                live.append(pending)
        if not live:
            return
        try:
            # Batch assembly is part of the failure envelope: a request with
            # mismatched width must fail its tick, not kill the worker.
            inputs = np.concatenate([pending.inputs for pending in live])
            seeds = np.concatenate([pending.seeds for pending in live])
            fused = self.backend.run(inputs, seeds)
        except Exception as exc:  # shared-bus semantics: the tick fails whole
            self.stats.n_failed_ticks += 1
            for pending in live:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        self.stats.n_ticks += 1
        self.stats.n_requests += len(live)
        self.stats.n_rows += len(inputs)
        self.stats.max_tick_rows = max(self.stats.max_tick_rows, len(inputs))
        self._record_tick(live, fused, len(inputs))
        offset = 0
        for pending in live:
            end = offset + len(pending.inputs)
            if not pending.future.done():
                pending.future.set_result(self.backend.slice(fused, offset, end))
            if pending.on_dispatch is not None:
                pending.on_dispatch(self.stats.n_ticks)
            offset = end

    def _record_tick(self, live: List[_Pending], fused, rows: int) -> None:
        """Append the tick's physical rail observable to :attr:`tick_trace`.

        The rail power is the *sum over every batch-mate's rows* — the
        analogue supply current of the whole fused traversal, which is what
        a probe on the shared rail integrates — optionally jammed by the
        ``noise_budget`` dummy draw.  The draw is keyed on the tick's first
        row seed under a dedicated stream domain, so ledgers replay
        bit-identically without perturbing any response-path noise.
        """
        tenants: List[Optional[str]] = []
        tenant_rows: Dict[Optional[str], int] = {}
        for pending in live:
            if pending.tenant not in tenant_rows:
                tenants.append(pending.tenant)
                tenant_rows[pending.tenant] = 0
            tenant_rows[pending.tenant] += len(pending.inputs)
        rail = getattr(self.backend, "rail_currents", lambda fused: None)(fused)
        per_tile = getattr(self.backend, "per_tile_currents", lambda fused: None)(fused)
        labels = getattr(self.backend, "tile_labels", lambda fused: None)(fused)
        rail_power = None if rail is None else float(np.sum(rail))
        per_tile_power = None if per_tile is None else np.sum(per_tile, axis=0)
        if self.config.noise_budget > 0.0:
            stream = sample_stream(int(live[0].seeds[0]), _RAIL_DOMAIN, 0)
            if rail_power is not None:
                rail_power += self.config.noise_budget * float(stream.normal())
            if per_tile_power is not None:
                per_tile_power = per_tile_power + self.config.noise_budget * (
                    stream.normal(size=per_tile_power.shape)
                )
        bank = None
        if self.config.placement == "tile-isolated" and len(tenants) == 1:
            bank = tenants[0]
        self.tick_trace.append(
            TickTrace(
                tick_id=self.stats.n_ticks,
                tenants=tuple(tenants),
                tenant_rows=tenant_rows,
                rows=rows,
                rail_power=rail_power,
                per_tile_power=per_tile_power,
                tile_labels=labels,
                bank=bank,
            )
        )

    @property
    def queries_used(self) -> int:
        """Queries charged by the underlying backend so far."""
        return self.backend.queries_used
