"""The asyncio coalescing query service.

:class:`QueryService` sits in front of an :class:`~repro.attacks.oracle.Oracle`
or a :class:`~repro.sidechannel.measurement.PowerMeasurement` and turns many
small concurrent :meth:`~QueryService.submit` calls into few large fused
traversals: pending requests are coalesced per *tick* (up to
``max_batch`` rows, holding the first request at most ``max_wait_ms`` for
company), dispatched as **one** backend call, and the per-request slices of
the fused result are scattered back to the awaiting futures.

Correctness rests on per-request derived RNG streams: every submitted request
receives a sequence number, from which one ``uint64`` seed per input row is
derived (:func:`~repro.utils.rng.derive_request_seeds`) and passed down the
measurement path as ``seeds``.  Each row's noise — conductance read noise,
rail measurement noise, defence draws, instrument noise — is then a pure
function of the row's seed, so a response is **bit-identical** whether the
request ran alone, coalesced with strangers, or bypassed the service entirely
via ``backend(inputs, seeds=service.seeds_for(request_id, n_rows))``.

Error semantics are those of a shared bus: if the fused traversal fails (bad
input width, an exhausted query budget), the whole tick fails and every
coalesced request receives the exception; nothing is charged against the
budget (both backends charge only after a successful traversal).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.service.config import ServiceConfig
from repro.utils.rng import derive_request_seeds


class OracleBackend:
    """Adapts an :class:`~repro.attacks.oracle.Oracle` to the service protocol."""

    kind = "oracle"

    def __init__(self, oracle):
        self.oracle = oracle

    def run(self, inputs: np.ndarray, seeds: np.ndarray):
        return self.oracle.query(inputs, seeds=seeds)

    def slice(self, fused, lo: int, hi: int):
        """One request's view of the fused :class:`OracleResponse`."""
        from repro.attacks.oracle import OracleResponse

        return OracleResponse(
            queries=fused.queries[lo:hi],
            outputs=fused.outputs[lo:hi],
            labels=fused.labels[lo:hi],
            power=None if fused.power is None else fused.power[lo:hi],
            output_mode=fused.output_mode,
            per_tile_power=(
                None
                if fused.per_tile_power is None
                else fused.per_tile_power[lo:hi]
            ),
            metadata=dict(fused.metadata),
        )

    @property
    def queries_used(self) -> int:
        return self.oracle.queries_used


class MeasurementBackend:
    """Adapts a :class:`~repro.sidechannel.measurement.PowerMeasurement`."""

    kind = "measurement"

    def __init__(self, measurement):
        self.measurement = measurement

    def run(self, inputs: np.ndarray, seeds: np.ndarray):
        return np.atleast_1d(self.measurement.measure(inputs, seeds=seeds))

    def slice(self, fused, lo: int, hi: int):
        return fused[lo:hi]

    @property
    def queries_used(self) -> int:
        return self.measurement.queries_used


def resolve_backend(target):
    """Wrap an oracle / measurement in its service backend (pass adapters through)."""
    if hasattr(target, "run") and hasattr(target, "slice"):
        return target
    if hasattr(target, "query"):
        return OracleBackend(target)
    if hasattr(target, "measure"):
        return MeasurementBackend(target)
    raise TypeError(
        f"cannot serve {type(target).__name__}: expected an Oracle-like "
        "(.query), a PowerMeasurement-like (.measure), or a backend adapter "
        "(.run/.slice)"
    )


@dataclass
class ServiceStats:
    """Coalescing effectiveness counters, updated per dispatched tick."""

    n_requests: int = 0
    n_rows: int = 0
    n_ticks: int = 0
    n_failed_ticks: int = 0
    max_tick_rows: int = 0

    @property
    def mean_tick_rows(self) -> float:
        """Average fused-batch size (rows per traversal)."""
        return self.n_rows / self.n_ticks if self.n_ticks else 0.0

    @property
    def coalescing_factor(self) -> float:
        """Requests amortised per traversal (1.0 = no coalescing happened)."""
        return self.n_requests / self.n_ticks if self.n_ticks else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "n_ticks": self.n_ticks,
            "n_failed_ticks": self.n_failed_ticks,
            "max_tick_rows": self.max_tick_rows,
            "mean_tick_rows": self.mean_tick_rows,
            "coalescing_factor": self.coalescing_factor,
        }


@dataclass(repr=False)
class _Pending:
    """One submitted request waiting for its tick."""

    inputs: np.ndarray
    seeds: np.ndarray
    future: asyncio.Future
    #: Optional observer called with the (1-based) tick index the request was
    #: served in — the hook the networked front-end uses for per-tenant
    #: coalescing statistics.  Called only on a successful dispatch.
    on_dispatch: Optional[Any] = None

    def __repr__(self) -> str:
        # Deliberately compact: asyncio renders pending items into task/
        # future reprs on shutdown, and stringifying request arrays there
        # is pure overhead.
        return f"_Pending(rows={len(self.inputs)})"


class QueryService:
    """Coalesces concurrent attacker queries into fused backend traversals.

    Parameters
    ----------
    target:
        An :class:`~repro.attacks.oracle.Oracle`, a
        :class:`~repro.sidechannel.measurement.PowerMeasurement`, or a
        pre-built backend adapter.
    config:
        The :class:`~repro.service.config.ServiceConfig` batching policy.

    Usage::

        async with QueryService(oracle) as service:
            responses = await asyncio.gather(
                *(service.submit(x) for x in request_inputs)
            )

    Every ``submit`` resolves to exactly the response the same inputs would
    have produced alone — see the module docstring for why.
    """

    def __init__(self, target, config: Optional[ServiceConfig] = None):
        self.backend = resolve_backend(target)
        self.config = config if config is not None else ServiceConfig()
        self.stats = ServiceStats()
        self._queue: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None
        self._request_counter = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def started(self) -> bool:
        """Whether the dispatch worker is running."""
        return self._worker is not None and not self._worker.done()

    async def start(self) -> "QueryService":
        """Spawn the dispatch worker on the running event loop (idempotent)."""
        if not self.started:
            self._queue = asyncio.Queue(maxsize=self.config.max_pending)
            self._worker = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Dispatch any still-queued requests, then cancel the worker.

        After the worker is cancelled, anything that raced into the queue —
        e.g. a facade ``query`` from another thread overlapping ``close()``
        — is dispatched here as final ticks, so no submitted request is ever
        stranded with an unresolved future.
        """
        if self._worker is None:
            return
        while self._queue is not None and not self._queue.empty():
            await asyncio.sleep(0)
        self._worker.cancel()
        try:
            await self._worker
        except asyncio.CancelledError:
            pass
        self._worker = None
        while self._queue is not None and not self._queue.empty():
            tick = []
            while True:
                try:
                    tick.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._dispatch(tick)

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------- requests

    def seeds_for(self, request_id: int, n_rows: int) -> np.ndarray:
        """The per-row noise seeds request ``request_id`` is served with.

        Exposed so the synchronous reference path —
        ``oracle.query(inputs, seeds=service.seeds_for(i, len(inputs)))`` —
        can reproduce any serviced response bit-for-bit.
        """
        return derive_request_seeds(self.config.base_seed, request_id, n_rows)

    async def submit(self, inputs: np.ndarray):
        """Enqueue one request and await its slice of a fused traversal.

        Returns whatever the backend returns for these rows: an
        :class:`~repro.attacks.oracle.OracleResponse` slice for oracle
        backends, a ``(B,)`` readings array for measurement backends.
        Applies backpressure (awaits) while ``max_pending`` requests are
        already queued.
        """
        _, response = await self.submit_traced(inputs)
        return response

    async def submit_traced(self, inputs: np.ndarray, *, on_dispatch=None):
        """Like :meth:`submit`, returning ``(request_id, response)``.

        The sequence number is what the response's noise seeds were derived
        from (:meth:`seeds_for`), so a caller that needs to *replay* the
        request later — e.g. the networked front-end, whose clients verify
        wire responses against direct seeded queries — must observe it.
        ``on_dispatch``, when given, is called with the 1-based index of the
        tick that served the request (successful dispatches only).
        """
        if not self.started:
            await self.start()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if len(inputs) == 0:
            raise ValueError("cannot submit an empty request")
        request_id = self._request_counter
        self._request_counter += 1
        seeds = self.seeds_for(request_id, len(inputs))
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Pending(inputs, seeds, future, on_dispatch))
        return request_id, await future

    # ------------------------------------------------------------- dispatch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            tick = [first]
            rows = len(first.inputs)
            deadline = loop.time() + self.config.max_wait_ms / 1000.0
            try:
                while rows < self.config.max_batch:
                    # Greedily drain whatever is already queued.  When the
                    # queue runs dry, give the scheduler one pass so every
                    # ready submitter can enqueue; if that pass produces
                    # nothing new the offered load is fully coalesced —
                    # dispatch immediately rather than idling out the
                    # deadline (which only bounds genuinely trickling
                    # arrivals, e.g. cross-thread submitters).
                    try:
                        pending = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        if loop.time() >= deadline:
                            break
                        await asyncio.sleep(0)
                        if self._queue.empty():
                            break
                        continue
                    tick.append(pending)
                    rows += len(pending.inputs)
            except asyncio.CancelledError:
                # Never strand a held-open tick on shutdown.
                self._dispatch(tick)
                raise
            self._dispatch(tick)

    def _dispatch(self, tick: List[_Pending]) -> None:
        """One fused traversal for the tick; scatter slices to the futures."""
        live = [pending for pending in tick if not pending.future.done()]
        if not live:
            return
        try:
            # Batch assembly is part of the failure envelope: a request with
            # mismatched width must fail its tick, not kill the worker.
            inputs = np.concatenate([pending.inputs for pending in live])
            seeds = np.concatenate([pending.seeds for pending in live])
            fused = self.backend.run(inputs, seeds)
        except Exception as exc:  # shared-bus semantics: the tick fails whole
            self.stats.n_failed_ticks += 1
            for pending in live:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        self.stats.n_ticks += 1
        self.stats.n_requests += len(live)
        self.stats.n_rows += len(inputs)
        self.stats.max_tick_rows = max(self.stats.max_tick_rows, len(inputs))
        offset = 0
        for pending in live:
            end = offset + len(pending.inputs)
            if not pending.future.done():
                pending.future.set_result(self.backend.slice(fused, offset, end))
            if pending.on_dispatch is not None:
                pending.on_dispatch(self.stats.n_ticks)
            offset = end

    @property
    def queries_used(self) -> int:
        """Queries charged by the underlying backend so far."""
        return self.backend.queries_used
