"""Async coalescing query service in front of the oracle/measurement path.

The paper trades attack efficacy against query budget, and the engine
benchmarks show per-call overhead amortising strongly with batch size — so
serving many concurrent attacker queries efficiently means *coalescing* them
into fused traversals.  This package provides:

* :class:`~repro.service.coalescer.QueryService` — the asyncio request queue:
  concurrent ``submit(inputs)`` calls are coalesced per tick (``max_batch``
  rows / ``max_wait_ms`` hold time, bounded-queue backpressure) into one
  fused ``forward_with_power`` traversal, and per-request response slices are
  scattered back to the awaiting futures.
* :class:`~repro.service.facade.BatchingOracle` /
  :class:`~repro.service.facade.BatchingMeasurement` — synchronous drop-in
  front-ends for existing attacks, running the service on a private
  event-loop thread.
* :class:`~repro.service.config.ServiceConfig` — the frozen batching policy,
  embeddable in :class:`~repro.experiments.scenario.ScenarioSpec` presets.

Coalescing is only correct because the measurement path is
batch-composition-invariant under per-request derived RNG streams: every
noise draw is keyed on a per-row seed derived from the request's sequence
number, so responses are bit-identical whether a request ran alone,
coalesced, or through the synchronous path (see
:meth:`QueryService.seeds_for`).
"""

from repro.service.config import PLACEMENT_POLICIES, ServiceConfig
from repro.service.coalescer import (
    MeasurementBackend,
    OracleBackend,
    QueryService,
    ServiceStats,
    TickTrace,
    resolve_backend,
)
from repro.service.errors import ServiceClosedError
from repro.service.facade import BatchingMeasurement, BatchingOracle

__all__ = [
    "BatchingMeasurement",
    "BatchingOracle",
    "MeasurementBackend",
    "OracleBackend",
    "PLACEMENT_POLICIES",
    "QueryService",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceStats",
    "TickTrace",
    "resolve_backend",
]
