"""Synchronous facades over the async coalescing query service.

Existing attacks and experiments are plain synchronous code built against
``Oracle.query`` / ``PowerMeasurement.measure``.  :class:`BatchingOracle` and
:class:`BatchingMeasurement` give them the coalescing service without any
async plumbing: each facade owns a private event-loop thread running a
:class:`~repro.service.coalescer.QueryService`, and its blocking calls submit
into that loop.  Calls from *multiple* threads coalesce into shared fused
traversals; a single-threaded caller pays at most ``max_wait_ms`` extra
latency per query and still gets bit-identical results (per-request seed
derivation does not depend on coalescing).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

import numpy as np

from repro.service.config import ServiceConfig
from repro.service.coalescer import QueryService, ServiceStats
from repro.service.errors import ServiceClosedError


class _FacadeRuntime:
    """A daemon thread running one event loop with one started QueryService."""

    def __init__(self, target, config: Optional[ServiceConfig]):
        self.loop = asyncio.new_event_loop()
        self.service = QueryService(target, config)
        self._closed = False
        self._close_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="repro-query-service", daemon=True
        )
        self._thread.start()
        self._call(self.service.start())

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, inputs):
        if self._closed:
            raise ServiceClosedError(
                "this facade has been closed; build a new "
                "BatchingOracle/BatchingMeasurement to submit further queries"
            )
        return self._call(self.service.submit(inputs))

    def close(self) -> None:
        # Idempotent and race-safe: the first caller drains and tears down,
        # every later (or concurrent) caller returns once teardown is done.
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            if not self._thread.is_alive():
                return
            self._call(self.service.stop())
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join()
            self.loop.close()


class _BatchingFacade:
    """Shared lifecycle plumbing of the two synchronous facades."""

    def __init__(self, target, config: Optional[ServiceConfig] = None):
        self.target = target
        self.config = config if config is not None else ServiceConfig()
        self._runtime = _FacadeRuntime(target, self.config)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called; queries then raise
        :class:`~repro.service.errors.ServiceClosedError`."""
        return self._runtime.closed

    @property
    def service(self) -> QueryService:
        """The underlying (already started) coalescing service."""
        return self._runtime.service

    @property
    def stats(self) -> ServiceStats:
        """Coalescing counters of the underlying service."""
        return self._runtime.service.stats

    def close(self) -> None:
        """Stop the service and its event-loop thread (idempotent)."""
        self._runtime.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


class BatchingOracle(_BatchingFacade):
    """Drop-in synchronous :class:`~repro.attacks.oracle.Oracle` front-end.

    Exposes the oracle surface existing attacks consume (``query``,
    ``queries_used``, ``n_outputs``, ``output_mode``, ``predict_labels``,
    ``accuracy``) while routing every ``query`` through the coalescing
    service, so concurrent attacker threads share fused traversals.
    Responses are bit-identical to ``oracle.query(inputs,
    seeds=service.seeds_for(request_id, len(inputs)))`` for hardware targets.
    """

    def __init__(self, oracle, config: Optional[ServiceConfig] = None):
        super().__init__(oracle, config)
        self.oracle = oracle

    def query(self, inputs: np.ndarray):
        """Submit one request and block for its coalesced response."""
        return self._runtime.submit(inputs)

    # -------------------------------------------------- oracle passthroughs

    @property
    def queries_used(self) -> int:
        return self.oracle.queries_used

    @property
    def queries_remaining(self):
        return self.oracle.queries_remaining

    def reset_counter(self) -> None:
        self.oracle.reset_counter()

    @property
    def n_outputs(self) -> int:
        return self.oracle.n_outputs

    @property
    def output_mode(self) -> str:
        return self.oracle.output_mode

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Evaluation helper; not routed through the service, not counted."""
        return self.oracle.predict_labels(inputs)

    def accuracy(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Evaluation helper; not routed through the service, not counted."""
        return self.oracle.accuracy(inputs, targets)


class BatchingMeasurement(_BatchingFacade):
    """Drop-in synchronous :class:`PowerMeasurement` front-end.

    Gives probing code (e.g.
    :class:`~repro.sidechannel.probing.ColumnNormProber`) the coalescing
    service behind the familiar blocking ``measure`` call.  Use a fixed
    ``range_hint=(low, high)`` on the wrapped measurement when its
    acquisition ADC is enabled — per-batch auto-ranging is, by definition,
    not batch-composition-invariant, and ``"calibrate"`` mode only becomes
    invariant after its (batch-spanning) calibration acquisition.
    """

    def __init__(self, measurement, config: Optional[ServiceConfig] = None):
        super().__init__(measurement, config)
        self.measurement = measurement

    def measure(self, inputs: np.ndarray):
        """Submit one measurement request and block for its readings.

        Follows the :meth:`PowerMeasurement.measure` shape convention: a
        single 1-D input returns a scalar, a batch returns a ``(B,)`` array.
        """
        single = np.asarray(inputs).ndim == 1
        readings = self._runtime.submit(inputs)
        return float(readings[0]) if single else readings

    # --------------------------------------------- measurement passthroughs

    @property
    def queries_used(self) -> int:
        return self.measurement.queries_used

    @property
    def queries_remaining(self):
        return self.measurement.queries_remaining

    def reset_counter(self) -> None:
        self.measurement.reset_counter()
