"""The ``cross-tenant-attack`` experiment and the ``sweep-tenant-*`` sweeps.

Quantifies the co-residency leakage the coalescing service creates — and
what each isolation policy buys back.  For every scenario x seed job a
victim tenant streams traffic through a :class:`~repro.service.coalescer.
QueryService` while a co-resident attacker floods chosen-input probes into
the same service (:func:`~repro.sidechannel.coresident.
run_coresident_attack`), reads the rail ledger its physical probe can see,
and solves the shared-tick equations for the victim's weight-column norms
(:func:`~repro.sidechannel.coresident.estimate_victim_norms`).  The job
scores the recovered norms exactly like the direct-probing pipelines —
:func:`~repro.defenses.evaluation.leakage_correlation` against the victim's
true norms and the power-guided
:func:`~repro.defenses.evaluation.single_pixel_attack_advantage` — so the
cross-tenant channel is directly comparable to the paper's first-party
attack.  When isolation leaves the attacker no victim-bearing tick to
observe (``tile-isolated``), no attack can be mounted and both scores are
defined as exactly ``0.0``.

The default scenario selection is the four ``tenant-*`` presets
(:data:`~repro.experiments.config.TENANT_PRESET_CONFIGS`), and the result
summary records whether the isolation ladder held: attack advantage
strictly decreasing across ``shared -> partitioned -> tile-isolated``.

The ``sweep-tenant-*`` experiments reuse the whole
:class:`~repro.experiments.sweep.SweepExperiment` machinery (job grids,
executors, curve assembly) with this module's co-resident attack as the
per-job measurement, turning the isolation knobs —
per-tenant coalescing budget ``service.max_batch`` and the rail
``service.noise_budget`` — into attack-advantage curves
(:data:`~repro.experiments.config.TENANT_SWEEP_GRIDS`).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.defenses.evaluation import leakage_correlation, single_pixel_attack_advantage
from repro.experiments.base import Experiment, ExperimentResult, Job
from repro.experiments.config import ExperimentScale, TENANT_SWEEP_GRIDS
from repro.experiments.registry import register
from repro.experiments.runner import prepare_dataset
from repro.experiments.scenario import ScenarioSpec, get_scenario
from repro.experiments.sweep import (
    SWEEP_ATTACK_STRENGTH,
    SWEEPS,
    SweepExperiment,
    SweepSpec,
)
from repro.service import QueryService, ServiceConfig
from repro.sidechannel.coresident import estimate_victim_norms, run_coresident_attack
from repro.utils.results import RunResult

#: Attacker probes interleaved per victim row (capped at ``max_batch - 1``):
#: under shared placement this dilutes every tick down to ~one victim row.
FLOOD_RATIO = 7

#: Victim rows streamed beyond the feature count, so the shared-placement
#: equation system is (slightly) over-determined and recovery is sharp.
_VICTIM_EXTRA_ROWS = 16

#: Cap the victim stream at ``2 * scale.n_train`` rows: reduced CI scales
#: bound the cost of the service round (which otherwise scales with the
#: feature count, not the scale preset), while ``smoke`` and larger keep
#: the fully determined system for every paper dataset.
_MAX_VICTIM_ROWS_PER_TRAIN = 2

#: Pixels the attacker strikes (its best-estimated columns) when scoring the
#: targeting advantage, and the uniform sample size of the blind baseline.
_TARGET_PIXELS = 32
_BASELINE_PIXELS = 128

#: The presets the experiment compares, in decreasing-exposure order; the
#: first three are the placement-policy ladder the summary checks.
TENANT_SCENARIO_ORDER: Tuple[str, ...] = (
    "tenant-shared",
    "tenant-noise-budget",
    "tenant-partitioned",
    "tenant-tile-isolated",
)
_PLACEMENT_LADDER: Tuple[str, ...] = (
    "tenant-shared",
    "tenant-partitioned",
    "tenant-tile-isolated",
)


def _targeting_advantage(
    victim,
    leaked_norms: np.ndarray,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    strength: float,
    random_state,
) -> float:
    """Accuracy damage of striking the attacker's top-estimated pixels.

    Mean victim accuracy under a ``+strength`` perturbation of each of the
    attacker's :data:`_TARGET_PIXELS` best-estimated columns, subtracted
    from the same figure for uniformly sampled pixels (the no-information
    baseline).  Unlike the argmax-only
    :func:`~repro.defenses.evaluation.single_pixel_attack_advantage`, this
    grades *how much of the attacker's shortlist* lands on genuinely
    sensitive columns, so it degrades smoothly as isolation blurs the
    estimate instead of saturating once any single strong column survives.
    """
    from repro.nn.metrics import accuracy

    rng = np.random.default_rng(random_state) if not hasattr(
        random_state, "integers"
    ) else random_state
    leaked = np.asarray(leaked_norms, dtype=float)
    n_features = leaked.shape[0]

    def mean_attacked_accuracy(pixels) -> float:
        scores = []
        for pixel in pixels:
            perturbed = inputs.copy()
            perturbed[:, pixel] += strength
            scores.append(accuracy(victim.predict(perturbed), targets))
        return float(np.mean(scores))

    top = np.argsort(leaked)[::-1][: min(_TARGET_PIXELS, n_features)]
    baseline = rng.choice(
        n_features, size=min(_BASELINE_PIXELS, n_features), replace=False
    )
    return mean_attacked_accuracy(baseline) - mean_attacked_accuracy(top)


async def _coresident_round(oracle, config, victim_inputs, probe_inputs):
    """One attack round through a service owned by this job."""
    async with QueryService(oracle, config) as service:
        trace = await run_coresident_attack(service, victim_inputs, probe_inputs)
        stats = service.stats.to_dict()
    return trace, stats


def _mount_attack(scenario: ScenarioSpec, scale: ExperimentScale, seed: int):
    """Train the victim, run one co-residency round, score the recovery.

    Returns ``(model, metrics)`` with every scalar the main experiment and
    the tenant sweeps report.  The oracle is built directly (not through the
    scenario's :class:`~repro.service.facade.BatchingOracle` wrapper)
    because the job drives the :class:`QueryService` itself — the two-tenant
    traffic pattern *is* the experiment; per-tile power is exposed whenever
    the scenario shards layers onto tile banks.
    """
    from repro.attacks.oracle import Oracle

    config = scenario.service if scenario.service is not None else ServiceConfig()
    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    model = scenario.build_victim(dataset, scale, random_state=seed)
    target = scenario.build_accelerator(model.network, random_state=seed)
    oracle = Oracle(
        target,
        expose_power=True,
        expose_per_tile_power=scenario.sharding is not None,
    )

    rng = np.random.default_rng([int(seed) & 0xFFFFFFFF, 0xC0E])
    n_features = dataset.n_features
    n_victim = min(
        n_features + _VICTIM_EXTRA_ROWS,
        _MAX_VICTIM_ROWS_PER_TRAIN * scale.n_train,
    )
    # Victim traffic: generic in-distribution rows, known to the attacker
    # under the profiling assumption.  Probes: the attacker's chosen inputs.
    victim_inputs = rng.uniform(0.0, 1.0, size=(n_victim, n_features))
    ratio = max(1, min(config.max_batch - 1, FLOOD_RATIO))
    probe_inputs = rng.uniform(0.0, 1.0, size=(ratio * n_victim, n_features))

    trace, stats = asyncio.run(
        _coresident_round(oracle, config, victim_inputs, probe_inputs)
    )
    estimate = estimate_victim_norms(trace, n_features)

    if estimate.mounted:
        leakage = leakage_correlation(
            target, model.network, leaked_norms=estimate.column_norms
        )
        advantage = _targeting_advantage(
            model.network,
            estimate.column_norms,
            dataset.test_inputs,
            dataset.test_targets,
            strength=SWEEP_ATTACK_STRENGTH,
            random_state=np.random.default_rng([int(seed) & 0xFFFFFFFF, 0xC7B]),
        )
        single_pixel = single_pixel_attack_advantage(
            model.network,
            estimate.column_norms,
            dataset.test_inputs,
            dataset.test_targets,
            strength=SWEEP_ATTACK_STRENGTH,
            random_state=np.random.default_rng([int(seed) & 0xFFFFFFFF, 0xC7A]),
        )
    else:
        # Isolation left no victim-bearing tick visible: the attacker has
        # no estimate to aim the attack with, so the channel's advantage
        # (and leakage) are exactly zero by definition.
        leakage = 0.0
        advantage = 0.0
        single_pixel = 0.0

    metrics = {
        "attack_advantage": float(advantage),
        "single_pixel_advantage": float(single_pixel),
        "leakage_correlation": float(leakage),
        "attack_mounted": float(estimate.mounted),
        "n_equations": float(estimate.n_equations),
        "n_mixed_ticks": float(estimate.n_mixed_ticks),
        "victim_rows_per_equation": float(estimate.mean_victim_rows_per_equation),
        "coalescing_factor": float(stats["coalescing_factor"]),
        "mean_tick_rows": float(stats["mean_tick_rows"]),
        "clean_test_accuracy": float(model.test_accuracy),
    }
    return model, metrics


def _run_cross_tenant_job(job: Job) -> RunResult:
    scenario = job.scenario
    _, metrics = _mount_attack(scenario, job.scale, job.seed)
    result = RunResult(
        name=f"{job.experiment}/{scenario.name}/run{job.run_index}",
        metadata={
            "dataset": scenario.dataset,
            "activation": scenario.activation,
            "placement": (
                scenario.service.placement if scenario.service else "shared"
            ),
            "noise_budget": (
                scenario.service.noise_budget if scenario.service else 0.0
            ),
        },
    )
    for key, value in metrics.items():
        result.add_metric(key, value)
    return result


def _run_tenant_sweep_job(job: Job) -> RunResult:
    """Sweep-grid variant: same attack, the metric names sweeps assemble."""
    scenario = job.scenario
    _, metrics = _mount_attack(scenario, job.scale, job.seed)
    result = RunResult(
        name=f"{job.experiment}/{scenario.name}/run{job.run_index}",
        metadata={
            "dataset": scenario.dataset,
            "activation": scenario.activation,
            "knob": job.param("knob"),
            "value": job.param("value"),
            "value_index": job.param("value_index"),
            "base": job.param("base"),
        },
    )
    result.add_metric("leakage_correlation", metrics["leakage_correlation"])
    result.add_metric("attack_advantage", metrics["attack_advantage"])
    result.add_metric("clean_test_accuracy", metrics["clean_test_accuracy"])
    result.add_metric("n_equations", metrics["n_equations"])
    return result


@register
class CrossTenantAttackExperiment(Experiment):
    """Co-resident rail attack across the tick-placement isolation ladder."""

    name = "cross-tenant-attack"
    description = (
        "Co-resident attacker recovering victim column norms from shared-tick "
        "rail power, compared across the tenant-* isolation presets"
    )

    def run(self, scale="bench", *, scenarios=None, **kwargs) -> ExperimentResult:
        """Default the selection to the ``tenant-*`` isolation presets.

        Captured before the shared template turns ``None`` into the four
        paper configurations; explicit scenarios pass through (running under
        their own service policy, or a default shared one).
        """
        if scenarios is None:
            scenarios = tuple(get_scenario(name) for name in TENANT_SCENARIO_ORDER)
        return super().run(scale, scenarios=scenarios, **kwargs)

    run_job = staticmethod(_run_cross_tenant_job)

    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        assembled = ExperimentResult(experiment=self.name, scale_name=scale.name)
        per_scenario: Dict[str, List[RunResult]] = {}
        for job, result in zip(jobs, results):
            assembled.sweep.add(result)
            if job.scenario.name not in assembled.scenarios:
                assembled.scenarios.append(job.scenario.name)
            per_scenario.setdefault(job.scenario.name, []).append(result)

        def mean(runs, metric):
            return float(np.mean([run.metrics[metric] for run in runs]))

        rows = []
        advantage_by_scenario: Dict[str, float] = {}
        for name, runs in per_scenario.items():
            advantage_by_scenario[name] = mean(runs, "attack_advantage")
            rows.append(
                {
                    "scenario": name,
                    "advantage_mean": advantage_by_scenario[name],
                    "leakage_mean": mean(runs, "leakage_correlation"),
                    "mounted": bool(
                        all(run.metrics["attack_mounted"] == 1.0 for run in runs)
                    ),
                    "n_equations_mean": mean(runs, "n_equations"),
                    "victim_rows_per_equation_mean": mean(
                        runs, "victim_rows_per_equation"
                    ),
                    "coalescing_factor_mean": mean(runs, "coalescing_factor"),
                }
            )
        assembled.summary["rows"] = rows
        assembled.summary["advantage_by_scenario"] = advantage_by_scenario
        ladder = [
            advantage_by_scenario[name]
            for name in _PLACEMENT_LADDER
            if name in advantage_by_scenario
        ]
        if len(ladder) == len(_PLACEMENT_LADDER):
            assembled.summary["isolation_ordering_ok"] = bool(
                all(a > b for a, b in zip(ladder, ladder[1:]))
            )
        assembled.summary["n_runs"] = scale.n_runs
        return assembled

    def format_result(self, result: ExperimentResult) -> str:
        lines = [
            f"{self.name} (scale={result.scale_name}, "
            f"{result.summary.get('n_runs', '?')} seeds per scenario)"
        ]
        order = {name: i for i, name in enumerate(TENANT_SCENARIO_ORDER)}
        rows = sorted(
            result.summary.get("rows", []),
            key=lambda row: order.get(row["scenario"], len(order)),
        )
        for row in rows:
            lines.append(
                f"  {row['scenario']:<24s} advantage={row['advantage_mean']:+.3f}  "
                f"leakage={row['leakage_mean']:+.3f}  "
                f"equations={row['n_equations_mean']:.0f}"
                f"@{row['victim_rows_per_equation_mean']:.1f} victim rows  "
                f"{'mounted' if row['mounted'] else 'no attack mounted'}"
            )
        if "isolation_ordering_ok" in result.summary:
            ok = result.summary["isolation_ordering_ok"]
            lines.append(
                "  isolation ladder (shared > partitioned > tile-isolated): "
                + ("holds" if ok else "VIOLATED")
            )
        return "\n".join(lines)


class CrossTenantSweepExperiment(SweepExperiment):
    """A :class:`SweepExperiment` whose measurement is the co-resident attack.

    Inherits the whole grid/executor/curve pipeline; only the per-job work
    differs, so tenant isolation knobs get the same mean±std curves as the
    hardware sweeps.
    """

    advantage_metric = "attack_advantage"
    run_job = staticmethod(_run_tenant_sweep_job)

    def _sweeps_for(self, scenarios) -> Tuple[SweepSpec, ...]:
        """Rebase the grid, grafting a coalescer onto service-less scenarios.

        The tenant knobs live under ``service.*``, but the paper presets
        carry ``service=None`` (their pipelines build a default coalescer on
        demand), so a plain rebase would fail in ``apply_knob``.  Grafting
        the sweep base's :class:`ServiceConfig` keeps the knob addressable
        while preserving the target scenario's dataset and hardware stack.
        """
        rebased = []
        for scenario in scenarios:
            scenario = get_scenario(scenario)
            if scenario.service is None:
                scenario = scenario.with_overrides(service=self.spec.base.service)
            rebased.append(self.spec.rebased(scenario))
        return tuple(rebased)


for _name, (_base, _knob, _values) in TENANT_SWEEP_GRIDS.items():
    _spec = SweepSpec(
        name=_name,
        base=get_scenario(_base),
        knob=_knob,
        values=_values,
        description=(
            f"{_knob} sweep over {len(_values)} settings "
            f"(base {_base}): co-resident attack-advantage curve"
        ),
    )
    SWEEPS[_name] = _spec
    register(CrossTenantSweepExperiment(_spec))
