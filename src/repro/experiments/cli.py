"""Command-line front end for the unified experiment API.

Run any subset of the registered experiments at any scale, under any
executor backend (in-process serial, one host's worker pool, or the
distributed work queue), optionally under non-default scenarios, and
serialise the results::

    python -m repro.experiments table1 figure4 --scale smoke
    python -m repro.experiments --list
    python -m repro.experiments table1 --scenarios noisy-device quantized-adc
    python -m repro.experiments sweep-adc-bits --scale smoke --executor process
    python -m repro.experiments figure5 --executor queue --workers 4 \
        --journal run.jsonl
    python -m repro.experiments figure5 --executor queue --resume run.jsonl \
        --journal run.jsonl                      # skip completed chunks
    python -m repro.experiments figure5 --executor queue --workers 0 \
        --serve 127.0.0.1:7070 --auth-file queue.key   # remote workers only
    python -m repro.experiments --connect 127.0.0.1:7070 --auth-file queue.key

Remote workers must hold the coordinator's shared auth key (``--auth-file``
or the ``REPRO_QUEUE_AUTH`` environment variable): every connection passes
an HMAC handshake before any frame is parsed, because the work-queue wire
carries pickles.  Keep coordinators on loopback and reach them through SSH
tunnels (``ssh -L 7070:127.0.0.1:7070 coordinator-host``); binding a
non-loopback address requires an explicit key and warns.

``--mode`` is the deprecated spelling of ``--executor``.
``scripts/run_experiments.py`` is a thin wrapper around the same entry point.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from typing import List, Optional

from repro.experiments.config import SCALES
from repro.experiments.registry import get_experiment, list_experiments, run_experiments
from repro.experiments.runner import ParallelRunner
from repro.experiments.scenario import SCENARIOS, get_scenario, list_scenarios


def build_parser() -> argparse.ArgumentParser:
    from repro.executor import EXECUTOR_NAMES
    from repro.executor.chunking import DEFAULT_CHUNK_SIZE
    from repro.executor.cli import parse_address

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiment pipelines through the unified registry.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names to run (default: all registered experiments)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=sorted(SCALES),
        help="size preset shared by all selected experiments (default: bench)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        metavar="SCENARIO",
        help="scenario preset names (default: the four paper configurations)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=EXECUTOR_NAMES,
        help="execution backend: serial (default), process/thread (one "
        "host's pool), queue (distributed work queue; see --serve/--connect)",
    )
    parser.add_argument(
        "--mode",
        default=None,
        choices=ParallelRunner.VALID_MODES,
        help="DEPRECATED alias of --executor",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "torch", "cupy", "auto"),
        help="compute backend for the crossbar kernels (overrides every "
        "selected scenario; default: keep each scenario's own setting)",
    )
    parser.add_argument(
        "--dtype",
        default=None,
        choices=("float32", "float64"),
        help="kernel dtype (float64 = bit-exact reference, float32 = fast "
        "path; overrides every selected scenario)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count: pool size for process/thread (default: CPU "
        "count / 2), spawned worker subprocesses for queue (default: 2; "
        "--workers 0 relies on externally attached workers)",
    )
    parser.add_argument(
        "--serve",
        type=parse_address,
        default=None,
        metavar="HOST:PORT",
        help="queue executor only: coordinator bind address (default "
        "127.0.0.1 on a free port) — remote workers attach with --connect; "
        "non-loopback binds require --auth-file (the wire carries pickles)",
    )
    parser.add_argument(
        "--auth-file",
        default=None,
        metavar="PATH",
        help="file holding the work-queue shared auth key, used by both "
        "--serve (coordinator) and --connect (worker); default: the "
        "REPRO_QUEUE_AUTH environment variable, or an ephemeral key for "
        "loopback-only runs",
    )
    parser.add_argument(
        "--connect",
        type=parse_address,
        default=None,
        metavar="HOST:PORT",
        help="run as a WORKER attached to the coordinator at this address "
        "(no experiments are selected; shorthand for "
        "'python -m repro.executor worker --connect')",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        metavar="N",
        help=f"queue executor only: jobs per lease (default {DEFAULT_CHUNK_SIZE})",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="queue executor only: write a resumable JSONL progress journal",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="queue executor only: replay completed chunks from a previous "
        "journal instead of re-running them (bit-identically)",
    )
    parser.add_argument("--base-seed", type=int, default=0, help="root seed (default: 0)")
    parser.add_argument(
        "--output-dir",
        default=None,
        help="serialise each ExperimentResult to <dir>/<experiment>_<scale>.json",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    parser.add_argument(
        "--list-scenarios", action="store_true", help="list scenario presets and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the formatted result tables"
    )
    return parser


def _build_executor(args):
    """Map the parsed CLI flags onto an Executor instance (or None)."""
    from repro.executor import QueueExecutor, resolve_executor

    name = args.executor
    if args.mode is not None:
        if name is not None:
            raise SystemExit("pass --executor or the deprecated --mode, not both")
        warnings.warn(
            "--mode is deprecated; use --executor", DeprecationWarning, stacklevel=2
        )
        name = args.mode
    if name in (None, "serial"):
        return None
    if name == "queue":
        from repro.executor.cli import load_auth_key

        host, port = args.serve if args.serve is not None else ("127.0.0.1", 0)
        return QueueExecutor(
            n_workers=2 if args.workers is None else args.workers,
            chunk_size=args.chunk_size,
            host=host,
            port=port,
            auth_key=load_auth_key(args.auth_file) if args.auth_file else None,
            journal=args.journal,
            resume=args.resume,
        )
    return resolve_executor(name, max_workers=args.workers)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.connect is not None:
        from repro.executor.cli import load_auth_key
        from repro.executor.worker import run_worker

        host, port = args.connect
        auth_key = load_auth_key(args.auth_file) if args.auth_file else None
        return run_worker(host, port, auth_key=auth_key)
    if args.list:
        names = list_experiments()
        width = max(len(name) for name in names)
        for name in names:
            print(f"{name:{width}s}  {get_experiment(name).description}")
        return 0
    if args.list_scenarios:
        for name in list_scenarios():
            print(f"{name:24s} {SCENARIOS[name].description}")
        return 0

    names = args.experiments or None
    if names:
        for name in names:
            get_experiment(name)  # fail fast on unknown names
    scenarios = args.scenarios
    if scenarios:
        scenarios = [get_scenario(name) for name in scenarios]
    if args.backend or args.dtype:
        overrides = {}
        if args.backend:
            overrides["backend"] = args.backend
        if args.dtype:
            overrides["dtype"] = args.dtype
        from repro.experiments.scenario import resolve_scenarios

        scenarios = [
            spec.with_overrides(**overrides)
            for spec in resolve_scenarios(scenarios)
        ]

    executor = _build_executor(args)
    executor_name = executor.name if executor is not None else "serial"

    start = time.perf_counter()
    results = run_experiments(
        names,
        args.scale,
        executor=executor,
        scenarios=scenarios,
        base_seed=args.base_seed,
        output_dir=args.output_dir,
    )
    elapsed = time.perf_counter() - start

    for name, result in results.items():
        if not args.quiet:
            print(get_experiment(name).format_result(result))
            print()
    print(
        f"ran {len(results)} experiment(s) at scale={args.scale} "
        f"in {elapsed:.1f}s ({executor_name} executor)"
    )
    if args.output_dir:
        print(f"results serialised to {args.output_dir}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
