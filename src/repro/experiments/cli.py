"""Command-line front end for the unified experiment API.

Run any subset of the registered experiments at any scale, serially or on a
process pool, optionally under non-default scenarios, and serialise the
results::

    python -m repro.experiments table1 figure4 --scale smoke
    python -m repro.experiments --list
    python -m repro.experiments table1 --scenarios noisy-device quantized-adc
    python -m repro.experiments sweep-adc-bits --scale smoke --mode process
    python -m repro.experiments --scale bench --mode process --output-dir results/

``scripts/run_experiments.py`` is a thin wrapper around the same entry point.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.config import SCALES
from repro.experiments.registry import get_experiment, list_experiments, run_experiments
from repro.experiments.runner import ParallelRunner
from repro.experiments.scenario import SCENARIOS, get_scenario, list_scenarios


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiment pipelines through the unified registry.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names to run (default: all registered experiments)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=sorted(SCALES),
        help="size preset shared by all selected experiments (default: bench)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        metavar="SCENARIO",
        help="scenario preset names (default: the four paper configurations)",
    )
    parser.add_argument(
        "--mode",
        default="serial",
        choices=ParallelRunner.VALID_MODES,
        help="job execution mode (default: serial; 'process' uses a worker pool)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "torch", "cupy", "auto"),
        help="compute backend for the crossbar kernels (overrides every "
        "selected scenario; default: keep each scenario's own setting)",
    )
    parser.add_argument(
        "--dtype",
        default=None,
        choices=("float32", "float64"),
        help="kernel dtype (float64 = bit-exact reference, float32 = fast "
        "path; overrides every selected scenario)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for process/thread modes (default: CPU count)",
    )
    parser.add_argument("--base-seed", type=int, default=0, help="root seed (default: 0)")
    parser.add_argument(
        "--output-dir",
        default=None,
        help="serialise each ExperimentResult to <dir>/<experiment>_<scale>.json",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    parser.add_argument(
        "--list-scenarios", action="store_true", help="list scenario presets and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the formatted result tables"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        names = list_experiments()
        width = max(len(name) for name in names)
        for name in names:
            print(f"{name:{width}s}  {get_experiment(name).description}")
        return 0
    if args.list_scenarios:
        for name in list_scenarios():
            print(f"{name:24s} {SCENARIOS[name].description}")
        return 0

    names = args.experiments or None
    if names:
        for name in names:
            get_experiment(name)  # fail fast on unknown names
    scenarios = args.scenarios
    if scenarios:
        scenarios = [get_scenario(name) for name in scenarios]
    if args.backend or args.dtype:
        overrides = {}
        if args.backend:
            overrides["backend"] = args.backend
        if args.dtype:
            overrides["dtype"] = args.dtype
        from repro.experiments.scenario import resolve_scenarios

        scenarios = [
            spec.with_overrides(**overrides)
            for spec in resolve_scenarios(scenarios)
        ]

    runner = None
    if args.mode != "serial":
        runner = ParallelRunner(mode=args.mode, max_workers=args.workers)

    start = time.perf_counter()
    results = run_experiments(
        names,
        args.scale,
        runner=runner,
        scenarios=scenarios,
        base_seed=args.base_seed,
        output_dir=args.output_dir,
    )
    elapsed = time.perf_counter() - start

    for name, result in results.items():
        if not args.quiet:
            print(get_experiment(name).format_result(result))
            print()
    print(
        f"ran {len(results)} experiment(s) at scale={args.scale} "
        f"in {elapsed:.1f}s ({args.mode} mode)"
    )
    if args.output_dir:
        print(f"results serialised to {args.output_dir}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
