"""Plain-text table / series formatting for experiment reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def has_non_paper_scenarios(entries: Iterable[Mapping], key: str = "scenario") -> bool:
    """True when any entry names a scenario outside the ``paper/*`` presets.

    Formatters use this to decide whether a Scenario column is needed to
    disambiguate rows (paper rows are already unique per (dataset,
    activation); variant scenarios are not).
    """
    return any(
        str(entry.get(key, "")).split("/")[0] not in ("", "paper")
        for entry in entries
    )


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    float_precision: int = 3,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    formatted_rows: List[List[str]] = []
    for row in rows:
        formatted_rows.append(
            [
                f"{value:.{float_precision}f}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [len(str(header)) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in formatted_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    title: str | None = None,
    float_precision: int = 3,
) -> str:
    """Render several y-series against a shared x axis as a table.

    This is the text equivalent of one plot panel: one column per curve.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row = [x] + [float(values[index]) for values in series.values()]
        rows.append(row)
    return format_table(headers, rows, title=title, float_precision=float_precision)


def format_curves_with_spread(
    x_label: str,
    x_values: Sequence,
    curves: Mapping[str, Sequence[Sequence[float]]],
    *,
    extra: Mapping[str, Sequence[float]] | None = None,
    title: str | None = None,
    float_precision: int = 3,
) -> str:
    """Render mean±std curves against a shared x axis as a table.

    ``curves`` maps a name to a ``(means, stds)`` pair; each contributes a
    mean column and a ``<name>±`` spread column.  ``extra`` adds plain
    single-valued columns (e.g. a clean-accuracy series).
    """
    series: Dict[str, Sequence[float]] = {}
    for name, (means, stds) in curves.items():
        series[name] = means
        series[f"{name}±"] = stds
    for name, values in (extra or {}).items():
        series[name] = values
    return format_series(
        x_label, x_values, series, title=title, float_precision=float_precision
    )


def format_mapping(values: Dict[str, float], *, title: str | None = None) -> str:
    """Render a flat ``name -> value`` mapping."""
    lines = [title] if title else []
    width = max((len(k) for k in values), default=0)
    for key, value in values.items():
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"{key.ljust(width)}  {rendered}")
    return "\n".join(lines)
