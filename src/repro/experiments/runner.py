"""Shared experiment plumbing: dataset/model preparation and multi-seed runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.datasets import Dataset, load_dataset
from repro.experiments.config import ExperimentScale
from repro.nn.network import SingleLayerNetwork
from repro.nn.trainer import Trainer, train_single_layer
from repro.utils.results import RunResult, SweepResult
from repro.utils.rng import seeds_for_runs


@dataclass
class TrainedModel:
    """A victim model together with its dataset and training diagnostics."""

    network: SingleLayerNetwork
    dataset: Dataset
    output: str
    test_accuracy: float
    train_accuracy: float

    @property
    def n_features(self) -> int:
        """Input dimensionality."""
        return self.dataset.n_features


def prepare_dataset(
    name: str,
    scale: ExperimentScale,
    *,
    random_state: int = 0,
) -> Dataset:
    """Generate one dataset at the requested scale."""
    return load_dataset(
        name, n_train=scale.n_train, n_test=scale.n_test, random_state=random_state
    )


def prepare_model(
    dataset: Dataset,
    output: str,
    scale: ExperimentScale,
    *,
    random_state: int = 0,
) -> TrainedModel:
    """Train the paper's single-layer victim model on a dataset."""
    network, trainer = train_single_layer(
        dataset,
        output=output,
        epochs=scale.train_epochs,
        random_state=random_state,
    )
    _, test_accuracy = trainer.evaluate(dataset.test_inputs, dataset.test_targets)
    _, train_accuracy = trainer.evaluate(dataset.train_inputs, dataset.train_targets)
    return TrainedModel(
        network=network,
        dataset=dataset,
        output=output,
        test_accuracy=test_accuracy,
        train_accuracy=train_accuracy,
    )


def run_multi_seed(
    name: str,
    run_fn: Callable[[int, int], RunResult],
    *,
    n_runs: int,
    base_seed: Optional[int] = 0,
) -> SweepResult:
    """Run ``run_fn(run_index, seed)`` for ``n_runs`` independent seeds.

    The derived seeds are deterministic in ``base_seed`` so the whole sweep is
    reproducible, while every run receives an independent stream.
    """
    sweep = SweepResult(name=name, metadata={"n_runs": n_runs, "base_seed": base_seed})
    seeds: List[int] = seeds_for_runs(base_seed, n_runs)
    for run_index, seed in enumerate(seeds):
        result = run_fn(run_index, seed)
        result.metadata.setdefault("seed", seed)
        result.metadata.setdefault("run_index", run_index)
        sweep.add(result)
    return sweep
