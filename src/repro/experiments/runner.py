"""Shared experiment plumbing: dataset/model preparation and multi-seed runs.

Multi-seed sweeps are embarrassingly parallel — every run receives an
independent, deterministically derived seed — so :class:`ParallelRunner` can
execute them on a :mod:`concurrent.futures` worker pool (processes by
default) without changing any result: the derived seeds, the per-run RNG
streams and the order results are assembled in are identical to the serial
path.  Figure/table sweeps therefore scale with cores simply by passing a
runner to :func:`run_multi_seed` (or to ``run_figure5``).
"""

from __future__ import annotations

import math
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.datasets import Dataset, load_dataset
from repro.experiments.config import ExperimentScale
from repro.nn.network import SingleLayerNetwork
from repro.nn.trainer import train_single_layer
from repro.utils.results import RunResult, SweepResult
from repro.utils.rng import seeds_for_runs


@dataclass
class TrainedModel:
    """A victim model together with its dataset and training diagnostics."""

    network: SingleLayerNetwork
    dataset: Dataset
    output: str
    test_accuracy: float
    train_accuracy: float

    @property
    def n_features(self) -> int:
        """Input dimensionality."""
        return self.dataset.n_features


def prepare_dataset(
    name: str,
    scale: ExperimentScale,
    *,
    random_state: int = 0,
) -> Dataset:
    """Generate one dataset at the requested scale."""
    return load_dataset(
        name, n_train=scale.n_train, n_test=scale.n_test, random_state=random_state
    )


def prepare_model(
    dataset: Dataset,
    output: str,
    scale: ExperimentScale,
    *,
    random_state: int = 0,
) -> TrainedModel:
    """Train the paper's single-layer victim model on a dataset."""
    network, trainer = train_single_layer(
        dataset,
        output=output,
        epochs=scale.train_epochs,
        random_state=random_state,
    )
    _, test_accuracy = trainer.evaluate(dataset.test_inputs, dataset.test_targets)
    _, train_accuracy = trainer.evaluate(dataset.train_inputs, dataset.train_targets)
    return TrainedModel(
        network=network,
        dataset=dataset,
        output=output,
        test_accuracy=test_accuracy,
        train_accuracy=train_accuracy,
    )


def _call_star(payload: Tuple[Callable, tuple]):
    """Top-level helper so worker invocations survive process-pool pickling."""
    fn, args = payload
    return fn(*args)


class ParallelRunner:
    """Executes independent seed-runs on a :mod:`concurrent.futures` pool.

    Parameters
    ----------
    mode:
        ``"process"`` (default) uses a :class:`ProcessPoolExecutor`,
        ``"thread"`` a :class:`ThreadPoolExecutor`, and ``"serial"`` opts out
        of parallelism entirely (useful for debugging and for callables that
        cannot be pickled).
    max_workers:
        Worker-pool size; ``None`` uses the executor default (CPU count).

    Determinism: the runner only distributes calls whose seeds were derived
    up front, and collects results in submission order, so a parallel sweep
    is bit-identical to its serial counterpart.  Process mode falls back to
    serial execution (with a warning) when the callable or a representative
    (first) argument tuple cannot be pickled — e.g. closures over local
    state.  The probe is O(1) in the sweep size, so a heterogeneous
    ``args_list`` whose *later* entries are unpicklable is the caller's
    responsibility and surfaces as an error from the pool.

    Scheduling: process mode submits jobs in **chunks** — one contiguous
    block per worker — instead of one pickled round-trip per job.  Sweep
    jobs are short (tens of milliseconds) and numerous, so per-job IPC
    dominated the pool's wall clock (measured ~1.5x *slower* than serial for
    51 short jobs on a small machine); chunking amortises the pickling and
    queue traffic over ``len(jobs) / n_workers`` calls while preserving
    result order.  The pool is also never wider than the job list.
    """

    VALID_MODES = ("process", "thread", "serial")

    def __init__(self, *, mode: str = "process", max_workers: Optional[int] = None):
        mode = str(mode).lower()
        if mode not in self.VALID_MODES:
            raise ValueError(f"mode must be one of {self.VALID_MODES}, got {mode!r}")
        self.mode = mode
        self.max_workers = max_workers

    # ------------------------------------------------------------------ api

    def map(self, fn: Callable, args_list: Sequence[tuple]) -> List:
        """Apply ``fn(*args)`` to every argument tuple, preserving order."""
        args_list = [tuple(args) for args in args_list]
        mode = self.mode
        if mode == "process" and not self._picklable(fn, args_list):
            warnings.warn(
                "ParallelRunner: callable or arguments are not picklable; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            mode = "serial"
        if mode == "serial" or len(args_list) <= 1:
            return [fn(*args) for args in args_list]
        executor_cls = (
            ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
        )
        workers = self.resolve_workers(len(args_list))
        payloads = [(fn, args) for args in args_list]
        map_kwargs = {}
        if mode == "process":
            map_kwargs["chunksize"] = self.chunksize(len(args_list))
        with executor_cls(max_workers=workers) as executor:
            return list(executor.map(_call_star, payloads, **map_kwargs))

    def resolve_workers(self, n_jobs: int) -> int:
        """The actual pool width for ``n_jobs`` (never wider than the jobs)."""
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, min(workers, n_jobs))

    def chunksize(self, n_jobs: int) -> int:
        """Process-mode chunk size: one contiguous block per worker."""
        return max(1, math.ceil(n_jobs / self.resolve_workers(n_jobs)))

    def run_multi_seed(
        self,
        name: str,
        run_fn: Callable[[int, int], RunResult],
        *,
        n_runs: int,
        base_seed: Optional[int] = 0,
    ) -> SweepResult:
        """Parallel drop-in for :func:`run_multi_seed` (same results, ordered)."""
        return run_multi_seed(
            name, run_fn, n_runs=n_runs, base_seed=base_seed, runner=self
        )

    @staticmethod
    def _picklable(fn: Callable, args_list: Sequence[tuple]) -> bool:
        """Probe process-pool compatibility cheaply.

        Only ``fn`` and a single representative argument tuple are pickled —
        serialising the whole ``args_list`` would cost O(total payload) per
        sweep just to answer a yes/no question, and every job of a sweep
        shares the same callable and argument types.
        """
        sample = args_list[0] if args_list else ()
        try:
            pickle.dumps((fn, sample))
        except Exception:
            return False
        return True


def run_multi_seed(
    name: str,
    run_fn: Callable[[int, int], RunResult],
    *,
    n_runs: int,
    base_seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> SweepResult:
    """Run ``run_fn(run_index, seed)`` for ``n_runs`` independent seeds.

    The derived seeds are deterministic in ``base_seed`` so the whole sweep is
    reproducible, while every run receives an independent stream.  Passing a
    :class:`ParallelRunner` executes the runs on a worker pool; results are
    assembled in run order either way, so the sweep is identical to a serial
    one.
    """
    sweep = SweepResult(name=name, metadata={"n_runs": n_runs, "base_seed": base_seed})
    seeds: List[int] = seeds_for_runs(base_seed, n_runs)
    if runner is None:
        results = [run_fn(run_index, seed) for run_index, seed in enumerate(seeds)]
    else:
        results = runner.map(run_fn, list(enumerate(seeds)))
    for run_index, (seed, result) in enumerate(zip(seeds, results)):
        result.metadata.setdefault("seed", seed)
        result.metadata.setdefault("run_index", run_index)
        sweep.add(result)
    return sweep
